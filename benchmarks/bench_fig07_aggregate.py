"""Figure 7: spatial aggregate queries — Greedy (Algorithm 1) vs Baseline.

The paper's findings: Algorithm 1 "not only always significantly
outperforms the baseline, but also can answer queries even when the budget
is small" — joint selection affords sensors no single query can.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig7, format_figure


def test_fig7_aggregate_queries(benchmark, scale):
    result = run_once(benchmark, fig7, scale)
    print()
    print(format_figure(result))

    assert result.dominates("Greedy", "Baseline", "avg_utility", slack=1e-9)
    greedy = result.metric("Greedy", "avg_utility")
    baseline = result.metric("Baseline", "avg_utility")
    # At the smallest budget factor the baseline is (near-)dead while the
    # greedy still answers through sharing.
    assert greedy[0] > 2.0 * max(baseline[0], 1e-9) or baseline[0] < 1.0
    assert greedy == sorted(greedy)  # utility grows with the budget factor
