"""Batch-gain protocol parity: ``gain_many`` vs scalar ``gain``, and the
vectorized greedy vs the scalar reference path.

Tolerances follow the documented numerics: aggregate/trajectory batch
states replicate the scalar operation sequence exactly (bit-equal), while
point-flavoured states go through ``np.hypot`` where the scalar path uses
``math.hypot`` — documented to differ only in the final ulp, asserted here
at 1e-12 relative.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_point_query, make_snapshot
from repro.core import (
    GreedyAllocator,
    ValuationKernel,
    location_monitoring_engine,
    one_shot_engine,
    region_monitoring_engine,
)
from repro.core.engine import mix_engine
from repro.datasets import (
    build_intel_scenario,
    build_ozone_dataset,
    build_rwm_scenario,
)
from repro.queries import (
    AggregateQueryWorkload,
    EventSlotQuery,
    LocationMonitoringWorkload,
    MultiSensorPointQuery,
    PointQuery,
    PointQueryWorkload,
    RegionMonitoringWorkload,
    SensorRoster,
    SpatialAggregateQuery,
    TrajectoryQuery,
)
from repro.spatial import Location, Region, Trajectory

ULP_TOLERANCE = dict(rel=1e-12, abs=1e-12)


def random_sensors(rng, n=25, side=20.0):
    return [
        make_snapshot(
            i,
            x=float(rng.uniform(0, side)),
            y=float(rng.uniform(0, side)),
            cost=float(rng.uniform(1, 10)),
            inaccuracy=float(rng.uniform(0, 0.2)),
            trust=float(rng.uniform(0.5, 1.0)),
        )
        for i in range(n)
    ]


def queries_of_every_type(rng):
    region = Region.from_origin(20, 20)
    sub = Region.random_subregion(region, rng, min_side=5, max_side=12)
    trajectory = Trajectory([Location(2, 2), Location(10, 12), Location(18, 6)])
    return [
        PointQuery(Location(5, 5), budget=15.0, dmax=8.0),
        MultiSensorPointQuery(Location(12, 9), budget=25.0, n_readings=3, dmax=9.0),
        SpatialAggregateQuery(
            sub, budget=40.0, sensing_range=6.0, coverage_radius=3.0
        ),
        TrajectoryQuery(trajectory, budget=35.0, sensing_range=4.0),
        EventSlotQuery(
            Location(8, 14), budget=20.0, required_confidence=0.9,
            theta_min=0.1, dmax=7.0, parent_id="ev-parent",
        ),
    ]


class TestPerPairGainParity:
    """``gain_many`` must agree with scalar ``gain`` for every pair."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("query_index", range(5))
    def test_gain_many_matches_scalar(self, seed, query_index):
        rng = np.random.default_rng(seed)
        sensors = random_sensors(rng)
        query = queries_of_every_type(rng)[query_index]
        roster = SensorRoster(sensors)
        state = query.new_state()
        # Compare on the empty state and as the selected set grows.
        commit_order = rng.permutation(len(sensors))[:3]
        for step in range(len(commit_order) + 1):
            batch = state.batch(roster)
            got = batch.gain_many(roster.all_indices)
            want = np.array([state.gain(s) for s in sensors])
            assert got == pytest.approx(want, **ULP_TOLERANCE)
            if step < len(commit_order):
                state.add(sensors[commit_order[step]])

    @pytest.mark.parametrize("seed", range(4))
    def test_gain_many_respects_arbitrary_index_subsets(self, seed):
        rng = np.random.default_rng(100 + seed)
        sensors = random_sensors(rng)
        roster = SensorRoster(sensors)
        for query in queries_of_every_type(rng):
            state = query.new_state()
            state.add(sensors[0])
            batch = state.batch(roster)
            subset = np.asarray(sorted(rng.permutation(len(sensors))[:7]), dtype=np.intp)
            got = batch.gain_many(subset)
            want = np.array([state.gain(sensors[j]) for j in subset])
            assert got == pytest.approx(want, **ULP_TOLERANCE)

    def test_point_rows_from_kernel_block_match(self):
        """The precomputed ``single_values`` block equals the self-derived row."""
        rng = np.random.default_rng(7)
        sensors = random_sensors(rng)
        queries = [
            make_point_query(
                x=float(rng.uniform(0, 20)), y=float(rng.uniform(0, 20)),
                budget=15.0, dmax=8.0,
            )
            for _ in range(6)
        ]
        kernel = ValuationKernel.from_sensors(sensors)
        block = kernel.single_values(queries)
        roster = kernel.roster()
        for i, query in enumerate(queries):
            state = query.new_state()
            plain = state.batch(roster).gain_many(roster.all_indices)
            roster.value_rows[query.query_id] = block[i]
            primed = state.batch(roster).gain_many(roster.all_indices)
            assert np.array_equal(plain, primed)


def exact_allocation_parity(queries, sensors, kernel=None):
    vectorized = GreedyAllocator().allocate(queries, sensors, kernel=kernel)
    scalar = GreedyAllocator(vectorized=False).allocate(queries, sensors, kernel=kernel)
    assert vectorized.assignments == scalar.assignments
    assert set(vectorized.selected) == set(scalar.selected)
    assert vectorized.values.keys() == scalar.values.keys()
    for qid, value in scalar.values.items():
        assert vectorized.values[qid] == pytest.approx(value, **ULP_TOLERANCE)
    assert vectorized.payments.keys() == scalar.payments.keys()
    for key, payment in scalar.payments.items():
        assert vectorized.payments[key] == pytest.approx(payment, **ULP_TOLERANCE)
    return vectorized


class TestAllocatorParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_mixed_instances(self, seed):
        rng = np.random.default_rng(1000 + seed)
        sensors = random_sensors(rng, n=30)
        queries = [
            make_point_query(
                x=float(rng.uniform(0, 20)), y=float(rng.uniform(0, 20)),
                budget=float(rng.uniform(5, 25)), dmax=6.0,
            )
            for _ in range(8)
        ] + queries_of_every_type(rng)
        exact_allocation_parity(queries, sensors)

    @pytest.mark.parametrize("seed", range(4))
    def test_with_prebuilt_kernel(self, seed):
        rng = np.random.default_rng(2000 + seed)
        sensors = random_sensors(rng, n=30)
        kernel = ValuationKernel.from_sensors(sensors)
        queries = [
            make_point_query(
                x=float(rng.uniform(0, 20)), y=float(rng.uniform(0, 20)),
                budget=float(rng.uniform(5, 25)), dmax=6.0,
            )
            for _ in range(10)
        ]
        exact_allocation_parity(queries, sensors, kernel)

    def test_reused_kernel_takes_costs_from_current_announcements(self):
        """A kernel reused across re-pricing must not leak stale costs."""
        queries = [make_point_query(x=0, y=0, budget=20.0, theta_min=0.0)]
        original = [make_snapshot(0, x=0, y=0, cost=5.0)]
        kernel = ValuationKernel.from_sensors(original)
        repriced = [make_snapshot(0, x=0, y=0, cost=1.0)]
        assert kernel.matches(repriced)
        result = GreedyAllocator().allocate(queries, repriced, kernel=kernel)
        assert result.selected[0].cost == 1.0
        assert result.sensor_income(0) == pytest.approx(1.0)


def summaries_equal(a, b):
    assert a.n_slots == b.n_slots
    for got, want in zip(a.slots, b.slots):
        assert got.slot == want.slot
        assert got.issued == want.issued
        assert got.answered == want.answered
        assert got.value == pytest.approx(want.value, **ULP_TOLERANCE)
        assert got.cost == pytest.approx(want.cost, **ULP_TOLERANCE)
        assert got.qualities == pytest.approx(want.qualities, **ULP_TOLERANCE)
    assert set(a.quality_stats) == set(b.quality_stats)
    for label, stat in b.quality_stats.items():
        assert a.quality_stats[label].count == stat.count
        assert a.quality_stats[label].total == pytest.approx(stat.total, **ULP_TOLERANCE)
    assert a.total_queries == b.total_queries
    assert a.positive_utility_queries == b.positive_utility_queries


class TestEndToEndFigureFamilies:
    """Vectorized vs scalar greedy through all four figure families."""

    SEED = 321
    N_SLOTS = 5

    def _engines(self, family):
        scenario = build_rwm_scenario(self.SEED, n_sensors=60, n_slots=10)
        engines = []
        for vectorized in (True, False):
            allocator = GreedyAllocator(vectorized=vectorized)
            rng = np.random.default_rng(self.SEED)
            if family == "point":
                workload = PointQueryWorkload(
                    scenario.working_region, n_queries=30, budget=15.0,
                    dmax=scenario.dmax,
                )
                engines.append(
                    one_shot_engine(scenario.make_fleet(), workload, allocator, rng)
                )
            elif family == "aggregate":
                workload = AggregateQueryWorkload(
                    scenario.working_region, budget_factor=15.0, mean_queries=4,
                    count_spread=2, sensing_range=scenario.dmax,
                )
                engines.append(
                    one_shot_engine(scenario.make_fleet(), workload, allocator, rng)
                )
            elif family == "location_monitoring":
                ozone = build_ozone_dataset(self.SEED)
                workload = LocationMonitoringWorkload(
                    scenario.working_region, ozone.values, ozone.model(),
                    budget_factor=15.0, max_live=6, arrivals_per_slot=2,
                    duration_range=(2, 5), dmax=scenario.dmax,
                )
                engines.append(
                    location_monitoring_engine(
                        scenario.make_fleet(), workload, allocator, rng
                    )
                )
            else:  # region_monitoring
                world = build_intel_scenario(self.SEED, n_sensors=40, n_slots=10)
                workload = RegionMonitoringWorkload(
                    world.scenario.working_region, world.gp, budget_factor=15.0,
                    duration_range=(2, 4), sensing_radius=world.scenario.dmax,
                )
                engines.append(
                    region_monitoring_engine(
                        world.scenario.make_fleet(), workload, allocator, rng
                    )
                )
        return engines

    @pytest.mark.parametrize(
        "family", ["point", "aggregate", "location_monitoring", "region_monitoring"]
    )
    def test_family_parity(self, family):
        vectorized_engine, scalar_engine = self._engines(family)
        summaries_equal(
            vectorized_engine.run(self.N_SLOTS), scalar_engine.run(self.N_SLOTS)
        )

    def test_mix_family_parity(self):
        """Algorithm 5's joint mix slot, vectorized vs scalar greedy."""
        scenario = build_rwm_scenario(self.SEED, n_sensors=50, n_slots=10)
        ozone = build_ozone_dataset(self.SEED)
        summaries = []
        for vectorized in (True, False):
            point_wl = PointQueryWorkload(
                scenario.working_region, n_queries=20, budget=15.0,
                dmax=scenario.dmax,
            )
            agg_wl = AggregateQueryWorkload(
                scenario.working_region, budget_factor=15.0, mean_queries=3,
                count_spread=1, sensing_range=scenario.dmax,
            )
            lm_wl = LocationMonitoringWorkload(
                scenario.working_region, ozone.values, ozone.model(),
                budget_factor=15.0, max_live=5, arrivals_per_slot=2,
                duration_range=(2, 4), dmax=scenario.dmax,
            )
            engine = mix_engine(
                scenario.make_fleet(), point_wl, agg_wl, lm_wl,
                np.random.default_rng(self.SEED),
                joint=GreedyAllocator(vectorized=vectorized),
            )
            summaries.append(engine.run(self.N_SLOTS))
        summaries_equal(summaries[0], summaries[1])

    def test_sequential_buffered_stage2_sees_zero_costs(self):
        """The buffered baseline re-announces stage-1 sensors at zero cost;
        the vectorized greedy must honor the re-priced snapshots even
        though the slot kernel was built from the originally priced ones."""
        scenario = build_rwm_scenario(self.SEED, n_sensors=50, n_slots=10)
        ozone = build_ozone_dataset(self.SEED)
        summaries = []
        for vectorized in (True, False):
            point_wl = PointQueryWorkload(
                scenario.working_region, n_queries=20, budget=15.0,
                dmax=scenario.dmax,
            )
            agg_wl = AggregateQueryWorkload(
                scenario.working_region, budget_factor=15.0, mean_queries=3,
                count_spread=1, sensing_range=scenario.dmax,
            )
            lm_wl = LocationMonitoringWorkload(
                scenario.working_region, ozone.values, ozone.model(),
                budget_factor=15.0, max_live=5, arrivals_per_slot=2,
                duration_range=(2, 4), dmax=scenario.dmax,
            )
            engine = mix_engine(
                scenario.make_fleet(), point_wl, agg_wl, lm_wl,
                np.random.default_rng(self.SEED),
                sequential=True,
                stage1_allocator=GreedyAllocator(vectorized=vectorized),
                stage2_allocator=GreedyAllocator(vectorized=vectorized),
            )
            summaries.append(engine.run(self.N_SLOTS))
        summaries_equal(summaries[0], summaries[1])
