"""BENCH: ValuationKernel matrix construction at paper scale.

The per-slot value matrix (hundreds of queries x hundreds of sensors) is
the hot path of every allocator; the seed built it with a per-location
Python loop inside ``PointProblem.build``.  This bench times the
broadcasted kernel against a frozen copy of that loop at Section 4 sizes
(RNC: 635 sensors; 300 point queries per slot, plus a 2x sweep) and
asserts the kernel is (a) numerically identical and (b) measurably faster.

Run:  pytest benchmarks/bench_valuation_kernel.py --benchmark-only -s
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import PointProblem, ValuationKernel
from repro.queries import PointQuery
from repro.sensors import SensorSnapshot
from repro.spatial import Region


def legacy_build_values(queries, sensors):
    """The seed ``PointProblem.build`` inner loop, frozen for comparison."""
    n = len(sensors)
    sensor_xy = np.asarray([(s.location.x, s.location.y) for s in sensors], dtype=float)
    gamma = np.asarray([s.inaccuracy for s in sensors], dtype=float)
    trust = np.asarray([s.trust for s in sensors], dtype=float)
    groups: dict[tuple[float, float], list[PointQuery]] = {}
    for query in queries:
        groups.setdefault((query.location.x, query.location.y), []).append(query)
    values = np.zeros((len(groups), n))
    query_values: dict[str, np.ndarray] = {}
    for row, ((x, y), grouped) in enumerate(zip(groups, groups.values())):
        diff = sensor_xy - np.array([x, y])
        dist = np.sqrt((diff**2).sum(axis=1))
        for query in grouped:
            quality = (1.0 - gamma) * trust * (1.0 - dist / query.dmax)
            quality[dist > query.dmax] = 0.0
            quality[quality < query.theta_min] = 0.0
            row_values = query.budget * quality
            query_values[query.query_id] = row_values
            values[row] += row_values
    return values, query_values


def make_instance(seed: int, n_queries: int, n_sensors: int):
    rng = np.random.default_rng(seed)
    region = Region.from_origin(100.0, 100.0)
    sensors = [
        SensorSnapshot(
            i,
            region.sample_location(rng),
            float(rng.uniform(5.0, 15.0)),
            float(rng.uniform(0.0, 0.2)),
            float(rng.uniform(0.5, 1.0)),
        )
        for i in range(n_sensors)
    ]
    queries = [
        PointQuery(
            region.sample_location(rng),
            budget=float(rng.uniform(7.0, 35.0)),
            theta_min=0.2,
            dmax=10.0,
        )
        for _ in range(n_queries)
    ]
    return queries, sensors


PAPER_SIZES = [(300, 635), (600, 635)]


@pytest.mark.parametrize("n_queries,n_sensors", PAPER_SIZES)
def test_kernel_matches_legacy_loop(n_queries, n_sensors):
    queries, sensors = make_instance(1, n_queries, n_sensors)
    want_values, want_query_values = legacy_build_values(queries, sensors)
    problem = PointProblem.build(queries, sensors)
    assert np.array_equal(problem.values, want_values)
    for qid, row in want_query_values.items():
        assert np.array_equal(problem.query_values[qid], row)


@pytest.mark.parametrize("n_queries,n_sensors", PAPER_SIZES)
def test_bench_kernel_build(benchmark, n_queries, n_sensors):
    queries, sensors = make_instance(2, n_queries, n_sensors)
    problem = benchmark(PointProblem.build, queries, sensors)
    assert problem.values.shape[1] == n_sensors


@pytest.mark.parametrize("n_queries,n_sensors", PAPER_SIZES)
def test_bench_legacy_location_loop(benchmark, n_queries, n_sensors):
    queries, sensors = make_instance(2, n_queries, n_sensors)
    values, _ = benchmark(legacy_build_values, queries, sensors)
    assert values.shape[1] == n_sensors


def test_bench_shared_kernel_reuse(benchmark):
    """A prebuilt slot kernel makes repeat allocator builds nearly free."""
    queries, sensors = make_instance(3, 300, 635)
    kernel = ValuationKernel.from_sensors(sensors)
    problem = benchmark(PointProblem.build, queries, sensors, kernel)
    assert problem.values.shape == (300, 635)


def test_kernel_speedup_at_paper_scale():
    """Hard floor: the broadcasted pass must beat the per-location loop."""
    queries, sensors = make_instance(4, 300, 635)

    def timed(fn, *args, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return best

    legacy = timed(legacy_build_values, queries, sensors)
    kernel = timed(PointProblem.build, queries, sensors)
    speedup = legacy / kernel
    print(f"\nvalue-matrix build 300x635: legacy {legacy*1e3:.2f} ms, "
          f"kernel {kernel*1e3:.2f} ms, speedup {speedup:.1f}x")
    assert speedup > 1.2, (
        f"kernel ({kernel*1e3:.2f} ms) should clearly beat the per-location "
        f"loop ({legacy*1e3:.2f} ms)"
    )
