"""Tests for repro.spatial.coverage, including submodularity properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import (
    AreaCoverage,
    Location,
    Region,
    Trajectory,
    TrajectoryCoverage,
    WeightedCoverage,
)

REGION = Region.from_origin(10, 10)

locations = st.builds(
    Location,
    st.floats(0, 10, allow_nan=False),
    st.floats(0, 10, allow_nan=False),
)


class TestAreaCoverage:
    def test_empty_set_has_zero_coverage(self):
        cov = AreaCoverage(REGION, sensing_range=3.0)
        assert cov([]) == 0.0

    def test_full_coverage_with_central_big_disk(self):
        cov = AreaCoverage(REGION, sensing_range=50.0)
        assert cov([Location(5, 5)]) == pytest.approx(1.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            AreaCoverage(REGION, sensing_range=0.0)

    def test_coverage_in_unit_interval(self):
        cov = AreaCoverage(REGION, sensing_range=2.0)
        value = cov([Location(5, 5), Location(0, 0)])
        assert 0.0 < value < 1.0

    def test_mask_for_matches_call(self):
        cov = AreaCoverage(REGION, sensing_range=3.0)
        loc = Location(4, 4)
        assert cov.mask_for(loc).sum() == cov.covered_cells([loc])

    def test_cell_count(self):
        cov = AreaCoverage(REGION, sensing_range=3.0)
        assert cov.cell_count == 100

    @given(st.lists(locations, min_size=0, max_size=6), locations)
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, base, extra):
        cov = AreaCoverage(REGION, sensing_range=2.5)
        assert cov(base + [extra]) >= cov(base) - 1e-12

    @given(
        st.lists(locations, min_size=0, max_size=4),
        st.lists(locations, min_size=0, max_size=4),
        locations,
    )
    @settings(max_examples=40, deadline=None)
    def test_submodular(self, small, more, extra):
        """Diminishing returns: gain at A <= gain at A's superset is false;
        gain at superset <= gain at subset."""
        cov = AreaCoverage(REGION, sensing_range=2.5)
        big = small + more
        gain_small = cov(small + [extra]) - cov(small)
        gain_big = cov(big + [extra]) - cov(big)
        assert gain_big <= gain_small + 1e-9


class TestWeightedCoverage:
    def test_uniform_weights_match_area_coverage(self):
        area = AreaCoverage(REGION, sensing_range=3.0)
        weighted = WeightedCoverage(REGION, 3.0, weight_fn=lambda loc: 1.0)
        sensors = [Location(2, 2), Location(8, 8)]
        assert weighted(sensors) == pytest.approx(area(sensors))

    def test_importance_shifts_coverage(self):
        # All importance on the left half: a right-half sensor scores ~0.
        weighted = WeightedCoverage(
            REGION, 2.0, weight_fn=lambda loc: 1.0 if loc.x < 5 else 0.0
        )
        assert weighted([Location(8, 5)]) == pytest.approx(0.0)
        assert weighted([Location(1, 5)]) > 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedCoverage(REGION, 2.0, weight_fn=lambda loc: -1.0)

    def test_zero_total_weight(self):
        weighted = WeightedCoverage(REGION, 2.0, weight_fn=lambda loc: 0.0)
        assert weighted([Location(5, 5)]) == 0.0


class TestTrajectoryCoverage:
    def test_full_corridor_coverage(self):
        t = Trajectory.from_points([Location(0, 0), Location(4, 0)])
        cov = TrajectoryCoverage(t, sensing_range=10.0, spacing=1.0)
        assert cov([Location(2, 0)]) == pytest.approx(1.0)

    def test_partial_coverage(self):
        t = Trajectory.from_points([Location(0, 0), Location(10, 0)])
        cov = TrajectoryCoverage(t, sensing_range=1.5, spacing=1.0)
        value = cov([Location(0, 0)])
        assert 0.0 < value < 0.5

    def test_mask_for_consistency(self):
        t = Trajectory.from_points([Location(0, 0), Location(10, 0)])
        cov = TrajectoryCoverage(t, sensing_range=2.0, spacing=1.0)
        mask = cov.mask_for(Location(5, 0))
        assert mask.sum() / cov.n_points == pytest.approx(cov([Location(5, 0)]))

    @given(st.lists(locations, min_size=0, max_size=5), locations)
    @settings(max_examples=30, deadline=None)
    def test_monotone(self, base, extra):
        t = Trajectory.from_points([Location(0, 0), Location(10, 10)])
        cov = TrajectoryCoverage(t, sensing_range=2.0, spacing=1.0)
        assert cov(base + [extra]) >= cov(base) - 1e-12
