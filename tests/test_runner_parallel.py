"""The parallel sweep executor: process fan-out must be a pure speedup —
results identical to the serial loop, order preserved."""

from __future__ import annotations

import pytest

from repro.datasets import ScenarioSpec, StreamSpec
from repro.experiments import (
    CI,
    compare_scenarios,
    fig2,
    parallel_map,
    replicate,
    run_specs_parallel,
)
from repro.experiments.runner import _run_spec_payload


def _square(x):
    return x * x


def _fail_on(x):
    if x == 3:
        raise ValueError("boom")
    return x


TINY_SPECS = [
    ScenarioSpec(
        name=f"tiny-{seed}", dataset="rwm", seed=seed, n_sensors=30, n_slots=3,
        streams=(StreamSpec("point", params={"n_queries": 10, "budget": 15.0}),),
    )
    for seed in (11, 12, 13)
]


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, [(i,) for i in range(6)]) == [
            0, 1, 4, 9, 16, 25
        ]

    def test_parallel_results_match_serial(self):
        serial = parallel_map(_square, [(i,) for i in range(6)])
        parallel = parallel_map(_square, [(i,) for i in range(6)], max_workers=2)
        assert parallel == serial

    def test_single_task_stays_inline(self):
        # one task → no pool, even with workers requested
        assert parallel_map(_square, [(7,)], max_workers=8) == [49]

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_fail_on, [(i,) for i in range(5)], max_workers=2)


class TestSpecExecution:
    def test_worker_payload_roundtrip(self):
        """The spawn payload (spec dict) rebuilds to an identical run."""
        spec = TINY_SPECS[0]
        direct = spec.run()
        rebuilt = _run_spec_payload(spec.to_dict(), None)
        assert rebuilt.average_utility == direct.average_utility
        assert rebuilt.satisfaction_ratio == direct.satisfaction_ratio
        assert rebuilt.total_queries == direct.total_queries

    def test_parallel_specs_match_serial(self):
        serial = run_specs_parallel(TINY_SPECS)
        parallel = run_specs_parallel(TINY_SPECS, max_workers=2)
        for a, b in zip(serial, parallel):
            assert a.average_utility == b.average_utility
            assert a.satisfaction_ratio == b.satisfaction_ratio
            assert a.total_queries == b.total_queries
            assert [r.value for r in a.slots] == [r.value for r in b.slots]

    def test_compare_scenarios_parallel_matches_serial(self):
        serial = compare_scenarios(TINY_SPECS)
        parallel = compare_scenarios(TINY_SPECS, max_workers=2)
        assert serial.series == parallel.series


class TestFigureSweeps:
    def test_fig2_parallel_matches_serial(self):
        serial = fig2(CI)
        parallel = fig2(CI, max_workers=2)
        assert serial.x_values == parallel.x_values
        assert serial.series == parallel.series

    def test_replicate_parallel_matches_serial(self):
        seeds = (7, 8)
        serial = replicate(fig2, CI, seeds)
        parallel = replicate(fig2, CI, seeds, max_workers=2)
        assert serial.x_values == parallel.x_values
        for algorithm, metrics in serial.series.items():
            for metric, (mean, std) in metrics.items():
                got_mean, got_std = parallel.series[algorithm][metric]
                assert (mean == got_mean).all()
                assert (std == got_std).all()
