"""Smoke tests: every example script runs to completion and prints output."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def _env_with_src():
    """Subprocesses don't inherit pytest's ``pythonpath`` ini — add src/."""
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the repository promises at least three examples"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
        env=_env_with_src(),
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{path.name} produced no output"
