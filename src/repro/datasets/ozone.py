"""The ozone-trace scenario substitute (Section 4.5).

The paper drives location-monitoring sampling-time selection with an ozone
trace from the OpenSense Zürich deployment and a linear regression model.
We synthesize a daily-periodic series of the same character and expose it
with its fitted model family.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..phenomena import HarmonicRegressionModel, OzoneTraceSynthesizer

__all__ = ["OzoneDataset", "build_ozone_dataset"]


@dataclass(frozen=True)
class OzoneDataset:
    """Historical series + the regression model family used on it."""

    series: tuple[float, ...]
    period: int
    n_harmonics: int

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self.series, dtype=float)

    def model(self) -> HarmonicRegressionModel:
        return HarmonicRegressionModel(self.period, self.n_harmonics)


@lru_cache(maxsize=8)
def build_ozone_dataset(
    seed: int = 2013,
    n_slots: int = 50,
    period: int = 50,
    n_harmonics: int = 1,
) -> OzoneDataset:
    """One simulated day of ozone history (paper: 50 slots)."""
    rng = np.random.default_rng(seed)
    series = OzoneTraceSynthesizer(period=period).generate(n_slots, rng)
    return OzoneDataset(
        series=tuple(float(v) for v in series),
        period=period,
        n_harmonics=n_harmonics,
    )
