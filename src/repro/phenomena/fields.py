"""Spatially correlated scalar fields — the Intel-Lab-deployment substitute.

Section 4.2 of the paper replays the Intel Lab dataset over a 20x15 grid:
readings from the stationary motes are "assigned to the grids in which they
are located" and mobile imaginary sensors report the value of the cell they
stand on.  We cannot ship that dataset, so :class:`CorrelatedField` produces
the drop-in equivalent: one GP-sampled realization per grid cell, optionally
evolving slot-to-slot with an AR(1) drift so that monitoring over time stays
non-trivial.

The substitution is behaviour-preserving because the region-monitoring code
path needs only (a) a spatially correlated training set to learn GP
hyper-parameters from and (b) a per-cell ground truth for mobile sensors to
report (see DESIGN.md).
"""

from __future__ import annotations


import numpy as np

from ..spatial import Grid, Location, Region
from .gaussian_process import GaussianProcessField, RBFKernel

__all__ = ["CorrelatedField", "INTEL_LAB_REGION"]

#: The Intel-Lab replay region of the paper: a 20x15 grid.
INTEL_LAB_REGION = Region(0.0, 0.0, 20.0, 15.0)


class CorrelatedField:
    """A per-cell scalar field sampled from a GP, with optional AR(1) drift.

    Args:
        region: the field's extent (defaults match the paper's 20x15 grid).
        rng: randomness source.
        kernel: spatial covariance of the generating GP.
        mean: field mean (e.g. 20 "degrees").
        temporal_rho: AR(1) coefficient for slot-to-slot evolution; 1.0
            freezes the field (stationary, like a single Intel-Lab snapshot).
        innovation_scale: standard deviation of the AR(1) innovations,
            relative to the kernel's marginal standard deviation.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        region: Region = INTEL_LAB_REGION,
        kernel: RBFKernel | None = None,
        mean: float = 20.0,
        temporal_rho: float = 1.0,
        innovation_scale: float = 0.1,
        cell_size: float = 1.0,
    ) -> None:
        if not (0.0 < temporal_rho <= 1.0):
            raise ValueError("temporal_rho must be in (0, 1]")
        if innovation_scale < 0:
            raise ValueError("innovation_scale must be non-negative")
        self.region = region
        # Unit-ish marginal variance keeps eq. 7's unnormalized F in the
        # magnitude band of the paper's Figure 9 (see EXPERIMENTS.md).
        self.kernel = kernel if kernel is not None else RBFKernel(variance=1.0, length_scale=2.0)
        self.mean = mean
        self._rho = temporal_rho
        self._innovation = innovation_scale * np.sqrt(self.kernel.variance)
        self._rng = rng
        self._grid = Grid(region, cell_size)
        self._centers = list(self._grid.centers())
        gp = GaussianProcessField(self.kernel, noise=1e-3)
        self._values = gp.sample(self._centers, rng)

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def cell_centers(self) -> list[Location]:
        return list(self._centers)

    def cell_values(self) -> np.ndarray:
        """Current latent value of every cell (mean included)."""
        return self._values + self.mean

    def value_at(self, location: Location) -> float:
        """Ground-truth value of the cell containing ``location``.

        This is exactly the paper's trick: "the sensor reading which is
        assigned to a grid is reported as the data for the imaginary sensor
        that is located in that grid".
        """
        col, row = self._grid.cell_of(location)
        index = col * self._grid.n_rows + row
        return float(self._values[index] + self.mean)

    def reading(self, location: Location, inaccuracy: float, rng: np.random.Generator) -> float:
        """A noisy sensor reading: truth + gaussian error scaled by gamma.

        ``inaccuracy`` is the sensor's gamma in "percentage of the value
        range" (Section 2.2.1); the value range proxy is 4 marginal standard
        deviations of the field.
        """
        value_range = 4.0 * np.sqrt(self.kernel.variance)
        return self.value_at(location) + rng.normal(0.0, inaccuracy * value_range / 2.0)

    # ------------------------------------------------------------------
    # temporal evolution
    # ------------------------------------------------------------------
    def advance(self) -> None:
        """AR(1) step: ``x <- rho x + innovations`` (no-op when rho = 1)."""
        if self._rho >= 1.0:
            return
        noise = self._rng.standard_normal(len(self._values)) * self._innovation
        self._values = self._rho * self._values + noise

    # ------------------------------------------------------------------
    # training data for hyper-parameter learning
    # ------------------------------------------------------------------
    def training_sample(
        self, fraction: float, rng: np.random.Generator
    ) -> tuple[list[Location], np.ndarray]:
        """A random fraction of (cell centre, value) pairs.

        Mirrors "the parameters of the Gaussian model are learned from a
        fraction of sensor readings" (Section 4.6).
        """
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        n = len(self._centers)
        count = max(3, int(round(fraction * n)))
        chosen = rng.choice(n, size=min(count, n), replace=False)
        locations = [self._centers[i] for i in chosen]
        values = self._values[chosen] + self.mean
        return locations, values


def stationary_deployment(
    field: CorrelatedField, stride: int = 2
) -> tuple[list[Location], np.ndarray]:
    """A mote-like stationary deployment: every ``stride``-th cell centre.

    Provides the Intel-Lab-style "real deployment" view of the field —
    useful for examples and for GP-fit validation tests.
    """
    centers = field.cell_centers
    chosen = centers[::stride]
    values = np.asarray([field.value_at(c) for c in chosen])
    return chosen, values
