"""Trace-driven mobility: replay a recorded (or synthesized) position log.

The RNC experiments of the paper replay a real campaign trace.  Our
substitute synthesizer (:mod:`repro.mobility.nokia`) produces a
:class:`MobilityTrace` which this model replays deterministically, so every
algorithm sees identical sensor positions across compared runs — exactly
what the paper's methodology requires for a fair algorithm comparison.
"""

from __future__ import annotations

import json
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..spatial import Location, Region
from .base import MobilityModel

__all__ = ["MobilityTrace", "TraceMobility"]


class _LazyLocationFrames(SequenceABC):
    """Per-slot ``Location`` tuples materialized on demand from xy arrays.

    Array-native producers (:meth:`MobilityModel.run_xy`) record stacked
    ``(n, 2)`` frames; this sequence presents them through the historical
    ``frames[t][i] -> Location`` interface, building (and caching) a
    frame's tuple only when some legacy consumer actually indexes it.  The
    replay hot path (:meth:`MobilityTrace.frame_xy` →
    ``FleetState.set_positions``) reads the arrays directly and never
    triggers materialization.  Lazy-to-lazy equality compares the xy
    arrays; comparing against an eager tuple — or hashing — must
    materialize every frame to stay consistent with the eager form's
    tuple semantics, so treat ``hash(trace)`` / tuple comparisons of a
    metro-scale lazy trace as O(n_slots × n_sensors) operations (nothing
    in the slot path does either).
    """

    __slots__ = ("_xy", "_frames")

    def __init__(self, xy_frames: Sequence[np.ndarray]) -> None:
        self._xy = list(xy_frames)
        self._frames: list[tuple[Location, ...] | None] = [None] * len(self._xy)

    def xy(self, t: int) -> np.ndarray:
        return self._xy[t]

    def __len__(self) -> int:
        return len(self._xy)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return tuple(self[t] for t in range(*item.indices(len(self))))
        t = item.__index__()
        if t < 0:
            t += len(self)
        if not (0 <= t < len(self)):
            raise IndexError("trace frame index out of range")
        frame = self._frames[t]
        if frame is None:
            frame = tuple(Location(float(x), float(y)) for x, y in self._xy[t])
            self._frames[t] = frame
        return frame

    def _as_tuple(self) -> tuple:
        return tuple(self[t] for t in range(len(self)))

    def __eq__(self, other) -> bool:
        if isinstance(other, _LazyLocationFrames):
            if len(self) != len(other):
                return False
            return all(
                np.array_equal(self._xy[t], other._xy[t]) for t in range(len(self))
            )
        if isinstance(other, tuple):
            return self._as_tuple() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._as_tuple())


@dataclass(frozen=True)
class MobilityTrace:
    """A per-slot log of every sensor's position.

    ``frames[t][i]`` is the location of sensor ``i`` at slot ``t``.  All
    frames must cover the same population.
    """

    region: Region
    frames: tuple[tuple[Location, ...], ...]
    #: lazily built per-frame ``(n, 2)`` arrays (see :meth:`frame_xy`).
    _xy_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not len(self.frames):
            raise ValueError("a trace needs at least one frame")
        if isinstance(self.frames, _LazyLocationFrames):
            widths = [len(xy) for xy in self.frames._xy]
        else:
            widths = [len(frame) for frame in self.frames]
        if widths[0] == 0:
            raise ValueError("a trace needs at least one sensor")
        if any(w != widths[0] for w in widths):
            raise ValueError("all frames must have the same number of sensors")

    @property
    def n_slots(self) -> int:
        return len(self.frames)

    @property
    def n_sensors(self) -> int:
        if isinstance(self.frames, _LazyLocationFrames):
            return len(self.frames.xy(0))
        return len(self.frames[0])

    @classmethod
    def from_frames(cls, region: Region, frames: Sequence[Sequence[Location]]) -> "MobilityTrace":
        return cls(region, tuple(tuple(frame) for frame in frames))

    @classmethod
    def from_xy(cls, region: Region, xy_frames: Sequence[np.ndarray]) -> "MobilityTrace":
        """Array-native constructor: per-slot ``(n, 2)`` position frames.

        The trace adopts the arrays as its primary storage; ``Location``
        frames exist only as a lazy view for legacy consumers (see
        :class:`_LazyLocationFrames`), so building — and replaying — a
        10^5-sensor trace allocates no per-sensor objects.
        """
        stacked = [np.ascontiguousarray(f, dtype=float) for f in xy_frames]
        for f in stacked:
            if f.ndim != 2 or (f.size and f.shape[1] != 2):
                raise ValueError(f"xy frames must have shape (n, 2), got {f.shape}")
        return cls(region, _LazyLocationFrames(stacked))

    def frame_xy(self, t: int) -> np.ndarray:
        """Frame ``t`` as an ``(n, 2)`` float array (built once, cached).

        The array-backed fleet replays traces through this accessor so the
        slot path never loops over :class:`Location` objects; repeated
        replays of the same trace share the stacked frames.  Array-native
        traces (:meth:`from_xy`) serve their frames directly.
        """
        frames = self.frames
        if isinstance(frames, _LazyLocationFrames):
            return frames.xy(t)
        xy = self._xy_cache.get(t)
        if xy is None:
            xy = np.asarray([(loc.x, loc.y) for loc in frames[t]], dtype=float)
            self._xy_cache[t] = xy
        return xy

    # ------------------------------------------------------------------
    # (de)serialization — traces are plain JSON so users can bring their own
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace as JSON (region + frames of [x, y] pairs)."""
        if isinstance(self.frames, _LazyLocationFrames):
            frames_payload = [self.frames.xy(t).tolist() for t in range(self.n_slots)]
        else:
            frames_payload = [[[loc.x, loc.y] for loc in frame] for frame in self.frames]
        payload = {
            "region": [self.region.x_min, self.region.y_min, self.region.x_max, self.region.y_max],
            "frames": frames_payload,
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "MobilityTrace":
        """Read a trace previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        region = Region(*payload["region"])
        frames = tuple(
            tuple(Location(float(x), float(y)) for x, y in frame)
            for frame in payload["frames"]
        )
        return cls(region, frames)

    def mean_presence(self, subregion: Region) -> float:
        """Average number of sensors inside ``subregion`` per slot.

        Used to validate the RNC substitute against the paper's reported
        "~120 sensors in the working subregion on average".  Vectorized
        over the stacked frames (identical closed-rectangle comparisons to
        the scalar ``contains`` walk).
        """
        total = 0
        for t in range(self.n_slots):
            total += int(subregion.contains_many(self.frame_xy(t)).sum())
        return total / self.n_slots


class TraceMobility(MobilityModel):
    """Replay a :class:`MobilityTrace` slot by slot.

    Replays hold the final frame when advanced past the end of the trace, so
    simulations slightly longer than the trace do not crash; sensors simply
    stop moving (documented behaviour, exercised in tests).
    """

    def __init__(self, trace: MobilityTrace) -> None:
        self._trace = trace
        self._cursor = 0

    @property
    def n_sensors(self) -> int:
        return self._trace.n_sensors

    @property
    def region(self) -> Region:
        return self._trace.region

    @property
    def cursor(self) -> int:
        """Index of the frame currently being served."""
        return self._cursor

    def locations(self) -> Sequence[Location]:
        return self._trace.frames[self._cursor]

    def locations_xy(self) -> np.ndarray:
        return self._trace.frame_xy(self._cursor)

    def advance(self) -> None:
        if self._cursor < self._trace.n_slots - 1:
            self._cursor += 1

    def reset(self) -> None:
        """Rewind to the first frame (reused across algorithm comparisons)."""
        self._cursor = 0
