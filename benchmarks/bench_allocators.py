"""Micro-benchmarks: per-slot allocation cost of each scheduling algorithm.

These are classic pytest-benchmark timings (many rounds) on one frozen
paper-scale slot: 200 sensors, 300 point queries.  They track the
complexity claims of Section 3 — the BILP stays tractable thanks to the
sparse formulation, local search and greedy are a few tens of milliseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BaselineAllocator,
    GreedyAllocator,
    LocalSearchPointAllocator,
    OptimalPointAllocator,
)
from repro.queries import PointQueryWorkload
from repro.sensors import SensorSnapshot
from repro.spatial import Region


@pytest.fixture(scope="module")
def slot():
    rng = np.random.default_rng(2013)
    region = Region.from_origin(50, 50)
    sensors = [
        SensorSnapshot(
            i,
            region.sample_location(rng),
            10.0,
            float(rng.uniform(0, 0.2)),
            1.0,
        )
        for i in range(200)
    ]
    queries = PointQueryWorkload(region, n_queries=300, budget=15.0, dmax=5.0).generate(
        0, rng
    )
    return queries, sensors


@pytest.mark.parametrize(
    "allocator",
    [
        OptimalPointAllocator(),
        LocalSearchPointAllocator(),
        GreedyAllocator(),
        BaselineAllocator(),
    ],
    ids=["optimal", "local_search", "greedy", "baseline"],
)
def test_allocator_slot_cost(benchmark, slot, allocator):
    queries, sensors = slot
    result = benchmark(allocator.allocate, queries, sensors)
    assert result.total_utility >= 0.0
