"""Figure 2: single-sensor point queries on RWM.

Regenerates avg utility per slot and satisfaction ratio vs query budget for
Optimal / LocalSearch / Baseline, and asserts the paper's qualitative
shapes: the sharing algorithms dominate the baseline, the baseline answers
nothing at the smallest budgets, and everyone converges as budgets grow.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig2, format_figure


def test_fig2_point_queries_rwm(benchmark, scale):
    result = run_once(benchmark, fig2, scale)
    print()
    print(format_figure(result))

    assert result.dominates("Optimal", "Baseline", "avg_utility", slack=1e-9)
    assert result.dominates("LocalSearch", "Baseline", "avg_utility", slack=1e-9)
    assert result.dominates("Optimal", "LocalSearch", "avg_utility", slack=1e-6)
    # Baseline collapses at the smallest budget; Optimal keeps answering.
    assert result.metric("Baseline", "satisfaction_ratio")[0] == 0.0
    assert result.metric("Optimal", "satisfaction_ratio")[0] > 0.0
    # Utility grows with budget.
    optimal = result.metric("Optimal", "avg_utility")
    assert optimal[-1] > optimal[0]
    # Convergence: the relative gap at the largest budget is small.
    gap = optimal[-1] - result.metric("Baseline", "avg_utility")[-1]
    assert gap <= 0.25 * optimal[-1]
