"""Tests for repro.spatial.grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial import Grid, GridIndex, Location, Region


class TestGrid:
    def test_dimensions(self):
        grid = Grid(Region.from_origin(20, 15), cell_size=1.0)
        assert grid.n_cols == 20
        assert grid.n_rows == 15
        assert grid.n_cells == 300

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            Grid(Region.from_origin(5, 5), cell_size=0.0)

    def test_cell_of_and_center_roundtrip(self):
        grid = Grid(Region.from_origin(10, 10), cell_size=2.0)
        cell = grid.cell_of(Location(3.5, 7.9))
        assert cell == (1, 3)
        center = grid.center_of(cell)
        assert center == Location(3.0, 7.0)
        assert grid.cell_of(center) == cell

    def test_cell_of_clamps_outside_points(self):
        grid = Grid(Region.from_origin(10, 10))
        assert grid.cell_of(Location(-4, 100)) == (0, 9)

    def test_center_of_invalid_cell_raises(self):
        grid = Grid(Region.from_origin(4, 4))
        with pytest.raises(ValueError):
            grid.center_of((10, 0))

    def test_cells_enumeration(self):
        grid = Grid(Region.from_origin(3, 2))
        cells = list(grid.cells())
        assert len(cells) == 6
        assert (0, 0) in cells and (2, 1) in cells

    def test_centers_inside_region(self):
        grid = Grid(Region(5, 5, 9, 8))
        for c in grid.centers():
            assert grid.region.contains(c)


class TestGridIndex:
    def test_within_finds_only_in_radius(self):
        index = GridIndex(cell_size=5.0)
        index.insert(Location(0, 0), "a")
        index.insert(Location(3, 4), "b")  # distance 5
        index.insert(Location(10, 0), "c")
        hits = {item for _, item in index.within(Location(0, 0), 5.0)}
        assert hits == {"a", "b"}

    def test_within_zero_radius_matches_exact(self):
        index = GridIndex()
        index.insert(Location(2, 2), "x")
        assert [i for _, i in index.within(Location(2, 2), 0.0)] == ["x"]

    def test_negative_radius_raises(self):
        index = GridIndex()
        with pytest.raises(ValueError):
            index.within(Location(0, 0), -1.0)

    def test_extend_and_len(self):
        index = GridIndex()
        index.extend([(Location(i, i), i) for i in range(10)])
        assert len(index) == 10

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        points = [Location(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(200)]
        index = GridIndex(cell_size=7.0)
        index.extend([(p, i) for i, p in enumerate(points)])
        for _ in range(20):
            center = Location(rng.uniform(0, 50), rng.uniform(0, 50))
            radius = rng.uniform(1, 15)
            expected = {i for i, p in enumerate(points) if center.distance_to(p) <= radius}
            got = {item for _, item in index.within(center, radius)}
            assert got == expected
