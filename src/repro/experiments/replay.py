"""Adaptation replay: full-rebuild vs incremental engines, slot by slot.

The incremental slot-state path (``incremental="auto"``) promises two
things: per-slot work proportional to churn, and *bit-identical*
allocations and payments.  This harness checks both at once.  It builds
two engines from the same :class:`~repro.datasets.ScenarioSpec` — one
rebuilding announcements/kernels/rasters from scratch every slot, one
patching them from the per-slot :class:`~repro.sensors.SlotDelta` — and
steps them in lockstep.  Every slot it

* compares the two :class:`~repro.core.AllocationResult` outcomes with
  exact ``==`` (selected sensors, per-query assignments, values, and the
  individual cost shares);
* records both engines' per-phase wall-times (announce / kernel build /
  allocation / settlement, :data:`~repro.core.engine.PHASES`);
* records the slot's churn fraction from the delta (fresh announcement
  columns over batch size).

``repro replay spec.json --csv out.csv`` runs it from the command line on
any ``examples/specs/*.json``; the parity suite runs it across fleets ×
kernels in CI.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field, replace
from pathlib import Path

from ..core.allocation import AllocationResult
from ..core.engine import PHASES

__all__ = ["ReplaySlot", "ReplayReport", "allocation_signature", "replay_spec"]


def _id_rank(query_id: str):
    """Sort key recovering a query's generation order from its id.

    :func:`~repro.queries.base.new_query_id` produces ``<prefix><n>`` with
    ``n`` drawn from one process-global counter, so within a single
    engine's slot the numeric suffix orders queries by generation.  Two
    engines interleave on that counter and therefore disagree on the
    absolute numbers — but not on the relative order, which is all the
    canonical relabeling below needs.
    """
    digits = ""
    for ch in reversed(query_id):
        if ch.isdigit():
            digits = ch + digits
        else:
            break
    return (query_id[: len(query_id) - len(digits)], int(digits) if digits else -1)


def allocation_signature(result: AllocationResult | None):
    """The exact-equality key of one slot's allocation outcome.

    Sensor snapshots compare by identity and query ids are process-unique
    (two engines generating the *same* queries label them differently), so
    the signature reduces ``selected`` to its sorted ids and relabels
    query ids canonically by generation order before keeping the
    assignment / value / payment mappings — plain dicts of ints, floats
    and tuples, comparable with ``==`` at full float precision (the
    incremental contract is bit-identical, not approximately-equal).
    """
    if result is None:
        return None
    qids = set(result.assignments) | set(result.values)
    qids.update(qid for qid, _ in result.payments)
    ordered = sorted(qids, key=_id_rank)
    canon = {qid: f"Q{i}" for i, qid in enumerate(ordered)}
    return (
        tuple(sorted(result.selected)),
        {canon[qid]: sensors for qid, sensors in result.assignments.items()},
        {canon[qid]: value for qid, value in result.values.items()},
        {
            (canon[qid], sid): payment
            for (qid, sid), payment in result.payments.items()
        },
    )


@dataclass(frozen=True)
class ReplaySlot:
    """One lockstep slot: parity flag, churn, and both engines' timings.

    Under ``replay_spec(..., profile=True)`` the ``*_allocs`` dicts hold
    each engine's per-phase ``(allocations, bytes)`` from the
    allocation-metering backend; otherwise they stay empty.
    """

    t: int
    parity: bool
    churn_fraction: float
    full_timings: dict[str, float]
    incremental_timings: dict[str, float]
    full_allocs: dict[str, tuple[int, int]] = field(default_factory=dict)
    incremental_allocs: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def full_total(self) -> float:
        return float(sum(self.full_timings.values()))

    @property
    def incremental_total(self) -> float:
        return float(sum(self.incremental_timings.values()))


@dataclass(frozen=True)
class ReplayReport:
    """The whole replay: per-slot rows plus run-level summaries."""

    name: str
    n_slots: int
    slots: tuple[ReplaySlot, ...]

    @property
    def parity(self) -> bool:
        """Whether every slot's allocation and payments matched exactly."""
        return all(s.parity for s in self.slots)

    @property
    def mean_churn(self) -> float:
        if not self.slots:
            return 0.0
        return float(sum(s.churn_fraction for s in self.slots) / len(self.slots))

    def phase_totals(self) -> dict[str, tuple[float, float]]:
        """Per phase: (full seconds, incremental seconds) over the run."""
        out: dict[str, tuple[float, float]] = {}
        for phase in PHASES:
            full = sum(s.full_timings.get(phase, 0.0) for s in self.slots)
            inc = sum(s.incremental_timings.get(phase, 0.0) for s in self.slots)
            out[phase] = (float(full), float(inc))
        return out

    @property
    def metered(self) -> bool:
        """Whether any slot carries allocation-metering counters."""
        return any(s.full_allocs or s.incremental_allocs for s in self.slots)

    def alloc_totals(self) -> dict[str, tuple[int, int, int, int]]:
        """Per phase: (full count, full bytes, incremental count,
        incremental bytes) summed over the run; empty when not metered."""
        if not self.metered:
            return {}
        out: dict[str, tuple[int, int, int, int]] = {}
        for phase in PHASES:
            fc = sum(s.full_allocs.get(phase, (0, 0))[0] for s in self.slots)
            fb = sum(s.full_allocs.get(phase, (0, 0))[1] for s in self.slots)
            ic = sum(
                s.incremental_allocs.get(phase, (0, 0))[0] for s in self.slots
            )
            ib = sum(
                s.incremental_allocs.get(phase, (0, 0))[1] for s in self.slots
            )
            out[phase] = (int(fc), int(fb), int(ic), int(ib))
        return out

    def format(self) -> str:
        lines = [
            f"{self.name}: {self.n_slots} slots, "
            f"mean churn {self.mean_churn:.3%}, "
            f"parity {'OK' if self.parity else 'BROKEN'}"
        ]
        for phase, (full, inc) in self.phase_totals().items():
            ratio = full / inc if inc > 0 else float("inf")
            lines.append(
                f"  {phase:<9} full={full * 1e3:9.2f}ms "
                f"incremental={inc * 1e3:9.2f}ms  ({ratio:5.2f}x)"
            )
        for phase, (fc, fb, ic, ib) in self.alloc_totals().items():
            lines.append(
                f"  {phase:<9} allocs full={fc:8d} ({fb:12d} B) "
                f"incremental={ic:8d} ({ib:12d} B)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def write_csv(self, path: str | Path) -> None:
        """Per-slot CSV: latency per phase for both engines, churn, parity."""
        path = Path(path)
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            header = (
                ["slot", "churn_fraction", "parity"]
                + [f"t_{p}_full" for p in PHASES]
                + [f"t_{p}_incremental" for p in PHASES]
            )
            if self.metered:
                for side in ("full", "incremental"):
                    for p in PHASES:
                        header += [
                            f"alloc_{p}_count_{side}",
                            f"alloc_{p}_bytes_{side}",
                        ]
            writer.writerow(header)
            for s in self.slots:
                row = (
                    [s.t, f"{s.churn_fraction:.6f}", int(s.parity)]
                    + [f"{s.full_timings.get(p, 0.0):.9f}" for p in PHASES]
                    + [
                        f"{s.incremental_timings.get(p, 0.0):.9f}"
                        for p in PHASES
                    ]
                )
                if self.metered:
                    for allocs in (s.full_allocs, s.incremental_allocs):
                        for p in PHASES:
                            count, nbytes = allocs.get(p, (0, 0))
                            row += [int(count), int(nbytes)]
                writer.writerow(row)


def replay_spec(
    spec, n_slots: int | None = None, *, profile: bool = False
) -> ReplayReport:
    """Replay ``spec`` against full-rebuild and incremental engines.

    Both engines are compiled from the same spec (identical world seed,
    fleet seed and workload seed), differing only in the ``incremental``
    knob, and stepped in lockstep for ``n_slots`` slots (default: the
    spec's).  Per-slot allocation parity is checked with
    :func:`allocation_signature` equality — exact, not approximate.

    ``profile=True`` runs both engines on the allocation-metering backend
    (numpy-identical results) and fills each slot's per-phase
    ``(allocations, bytes)`` counters.
    """
    from ..core.metrics import SimulationSummary

    n = n_slots if n_slots is not None else spec.n_slots
    if profile:
        spec = replace(spec, backend="instrumented")
    full_engine = replace(spec, incremental=False).build()
    inc_engine = replace(spec, incremental="auto").build()
    full_summary = SimulationSummary()
    inc_summary = SimulationSummary()

    slots: list[ReplaySlot] = []
    for t in range(n):
        full_engine.step(full_summary)
        inc_engine.step(inc_summary)
        delta = inc_engine.last_delta
        churn = float(delta.churn_fraction) if delta is not None else 1.0
        slots.append(
            ReplaySlot(
                t=t,
                parity=(
                    allocation_signature(full_engine.last_result)
                    == allocation_signature(inc_engine.last_result)
                ),
                churn_fraction=churn,
                full_timings=dict(full_engine.last_timings),
                incremental_timings=dict(inc_engine.last_timings),
                full_allocs=dict(full_engine.last_allocs),
                incremental_allocs=dict(inc_engine.last_allocs),
            )
        )

    return ReplayReport(name=spec.name, n_slots=n, slots=tuple(slots))
