"""Accounting for the paper's evaluation metrics (Section 4).

Three quantities appear in every figure:

* **average utility per time slot** — the slot's social welfare
  ``sum_q v_q - sum_s c_s``, averaged over the simulation;
* **query satisfaction ratio** — the fraction of issued point queries that
  were answered (Figures 2-6);
* **average quality of results** — per answered query, the achieved
  valuation over the maximum of its valuation function (Figures 7-10);
  for region monitoring the reference is the *planned* valuation, which is
  how the paper's Figure 9(b) exceeds 1.

Quality samples are aggregated **online** (count / running sum / Welford
M2 per label, :class:`RunningStat`), so quality accounting holds a
constant-size aggregate per label no matter how many queries a month-long
scenario answers — the summary's remaining growth is one
:class:`SlotRecord` per slot.  The running sum accumulates in arrival
order, which makes :meth:`SimulationSummary.average_quality` bit-identical
to the historical ``sum(samples) / len(samples)`` over raw lists.  Figure
scripts that need full distributions (histograms, percentile bands) opt
back into raw retention with ``SimulationSummary(keep_samples=True)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["SlotRecord", "RunningStat", "SimulationSummary"]


@dataclass
class SlotRecord:
    """Per-slot accounting."""

    slot: int
    value: float = 0.0
    cost: float = 0.0
    issued: int = 0
    answered: int = 0
    qualities: list[float] = field(default_factory=list)
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def utility(self) -> float:
        return self.value - self.cost


@dataclass
class RunningStat:
    """Online count / sum / M2 aggregation (Welford) of one sample stream.

    ``mean`` divides the running sum — equal to summing the raw samples
    left-to-right — so it reproduces a raw-list mean bit-for-bit.  ``m2``
    carries Welford's sum of squared deviations for O(1)-memory variance.
    """

    count: int = 0
    total: float = 0.0
    m2: float = 0.0
    _welford_mean: float = field(default=0.0, repr=False)

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x
        delta = x - self._welford_mean
        self._welford_mean += delta / self.count
        self.m2 += delta * (x - self._welford_mean)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the samples seen so far."""
        return self.m2 / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> None:
        """Fold another stream's aggregate in (parallel sweep reduction)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.m2 = other.m2
            self._welford_mean = other._welford_mean
            return
        combined = self.count + other.count
        delta = other._welford_mean - self._welford_mean
        self.m2 += other.m2 + delta * delta * self.count * other.count / combined
        self.total += other.total
        self._welford_mean += delta * other.count / combined
        self.count = combined


@dataclass
class SimulationSummary:
    """Aggregated outcome of one simulation run.

    Args:
        keep_samples: additionally retain every raw quality sample in
            :attr:`quality_samples` (opt-in; the streaming aggregates in
            :attr:`quality_stats` are always maintained and serve every
            accessor, so the default runs in constant memory).
    """

    slots: list[SlotRecord] = field(default_factory=list)
    #: raw quality-of-results samples per query-type label — populated only
    #: when ``keep_samples`` is set; use :attr:`quality_stats` otherwise.
    quality_samples: dict[str, list[float]] = field(default_factory=dict)
    #: streaming per-label aggregates (count / mean / M2); always current.
    quality_stats: dict[str, RunningStat] = field(default_factory=dict)
    #: count of queries whose net utility was positive — the egalitarian
    #: objective the paper mentions as an alternative (Section 2).
    positive_utility_queries: int = 0
    total_queries: int = 0
    keep_samples: bool = False

    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return len(self.slots)

    @property
    def total_utility(self) -> float:
        return float(sum(r.utility for r in self.slots))

    @property
    def average_utility(self) -> float:
        """Average utility per time slot — the y-axis of every (a) figure."""
        if not self.slots:
            return 0.0
        return self.total_utility / len(self.slots)

    @property
    def satisfaction_ratio(self) -> float:
        """Answered / issued over the whole run (Figures 2-6 (b))."""
        issued = sum(r.issued for r in self.slots)
        if issued == 0:
            return 0.0
        return sum(r.answered for r in self.slots) / issued

    def quality_labels(self) -> list[str]:
        """Labels that received at least one quality sample, in order."""
        return list(self.quality_stats)

    def quality_count(self, label: str) -> int:
        stat = self.quality_stats.get(label)
        return stat.count if stat else 0

    def average_quality(self, label: str) -> float:
        """Mean quality of results for one query type (Figures 7-10 (b-d))."""
        stat = self.quality_stats.get(label)
        if stat is None or stat.count == 0:
            return 0.0
        return float(stat.mean)

    def quality_stdev(self, label: str) -> float:
        """Streaming standard deviation of one label's quality samples."""
        stat = self.quality_stats.get(label)
        return float(stat.stdev) if stat else 0.0

    def add_quality(self, label: str, quality: float) -> None:
        stat = self.quality_stats.get(label)
        if stat is None:
            stat = self.quality_stats.setdefault(label, RunningStat())
        stat.add(quality)
        if self.keep_samples:
            self.quality_samples.setdefault(label, []).append(quality)

    def record_query_outcome(self, utility: float) -> None:
        self.total_queries += 1
        if utility > 0:
            self.positive_utility_queries += 1

    @property
    def egalitarian_ratio(self) -> float:
        """Fraction of queries ending with strictly positive utility."""
        if self.total_queries == 0:
            return 0.0
        return self.positive_utility_queries / self.total_queries
