"""Trace-driven mobility: replay a recorded (or synthesized) position log.

The RNC experiments of the paper replay a real campaign trace.  Our
substitute synthesizer (:mod:`repro.mobility.nokia`) produces a
:class:`MobilityTrace` which this model replays deterministically, so every
algorithm sees identical sensor positions across compared runs — exactly
what the paper's methodology requires for a fair algorithm comparison.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..spatial import Location, Region
from .base import MobilityModel

__all__ = ["MobilityTrace", "TraceMobility"]


@dataclass(frozen=True)
class MobilityTrace:
    """A per-slot log of every sensor's position.

    ``frames[t][i]`` is the location of sensor ``i`` at slot ``t``.  All
    frames must cover the same population.
    """

    region: Region
    frames: tuple[tuple[Location, ...], ...]
    #: lazily built per-frame ``(n, 2)`` arrays (see :meth:`frame_xy`).
    _xy_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("a trace needs at least one frame")
        width = len(self.frames[0])
        if width == 0:
            raise ValueError("a trace needs at least one sensor")
        if any(len(frame) != width for frame in self.frames):
            raise ValueError("all frames must have the same number of sensors")

    @property
    def n_slots(self) -> int:
        return len(self.frames)

    @property
    def n_sensors(self) -> int:
        return len(self.frames[0])

    @classmethod
    def from_frames(cls, region: Region, frames: Sequence[Sequence[Location]]) -> "MobilityTrace":
        return cls(region, tuple(tuple(frame) for frame in frames))

    def frame_xy(self, t: int) -> np.ndarray:
        """Frame ``t`` as an ``(n, 2)`` float array (built once, cached).

        The array-backed fleet replays traces through this accessor so the
        slot path never loops over :class:`Location` objects; repeated
        replays of the same trace share the stacked frames.
        """
        xy = self._xy_cache.get(t)
        if xy is None:
            xy = np.asarray([(loc.x, loc.y) for loc in self.frames[t]], dtype=float)
            self._xy_cache[t] = xy
        return xy

    # ------------------------------------------------------------------
    # (de)serialization — traces are plain JSON so users can bring their own
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace as JSON (region + frames of [x, y] pairs)."""
        payload = {
            "region": [self.region.x_min, self.region.y_min, self.region.x_max, self.region.y_max],
            "frames": [[[loc.x, loc.y] for loc in frame] for frame in self.frames],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "MobilityTrace":
        """Read a trace previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        region = Region(*payload["region"])
        frames = tuple(
            tuple(Location(float(x), float(y)) for x, y in frame)
            for frame in payload["frames"]
        )
        return cls(region, frames)

    def mean_presence(self, subregion: Region) -> float:
        """Average number of sensors inside ``subregion`` per slot.

        Used to validate the RNC substitute against the paper's reported
        "~120 sensors in the working subregion on average".
        """
        total = 0
        for frame in self.frames:
            total += sum(1 for loc in frame if subregion.contains(loc))
        return total / self.n_slots


class TraceMobility(MobilityModel):
    """Replay a :class:`MobilityTrace` slot by slot.

    Replays hold the final frame when advanced past the end of the trace, so
    simulations slightly longer than the trace do not crash; sensors simply
    stop moving (documented behaviour, exercised in tests).
    """

    def __init__(self, trace: MobilityTrace) -> None:
        self._trace = trace
        self._cursor = 0

    @property
    def n_sensors(self) -> int:
        return self._trace.n_sensors

    @property
    def region(self) -> Region:
        return self._trace.region

    @property
    def cursor(self) -> int:
        """Index of the frame currently being served."""
        return self._cursor

    def locations(self) -> Sequence[Location]:
        return self._trace.frames[self._cursor]

    def locations_xy(self) -> np.ndarray:
        return self._trace.frame_xy(self._cursor)

    def advance(self) -> None:
        if self._cursor < self._trace.n_slots - 1:
            self._cursor += 1

    def reset(self) -> None:
        """Rewind to the first frame (reused across algorithm comparisons)."""
        self._cursor = 0
