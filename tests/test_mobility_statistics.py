"""Tests for trace statistics (substitute validation tooling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import (
    MobilityTrace,
    NokiaCampaignSynthesizer,
    compute_statistics,
)
from repro.spatial import Location, Region

REGION = Region.from_origin(10, 10)
WORK = Region(0, 0, 5, 10)  # left half


def trace_from(rows):
    frames = [[Location(float(x), 5.0) for x in row] for row in rows]
    return MobilityTrace.from_frames(REGION, frames)


class TestComputeStatistics:
    def test_presence(self):
        # Sensor 0 always inside, sensor 1 never, sensor 2 alternates.
        trace = trace_from([[1, 8, 1], [1, 8, 8], [1, 8, 1]])
        stats = compute_statistics(trace, WORK)
        assert stats.mean_presence == pytest.approx((2 + 1 + 2) / 3)
        assert stats.min_presence == 1
        assert stats.max_presence == 2

    def test_churn(self):
        trace = trace_from([[1, 8, 1], [1, 8, 8], [1, 8, 1]])
        stats = compute_statistics(trace, WORK)
        # Sensor 2 exits between slot 0->1 and re-enters between 1->2.
        assert stats.mean_exits_per_slot == pytest.approx(0.5)
        assert stats.mean_entries_per_slot == pytest.approx(0.5)

    def test_dwell(self):
        trace = trace_from([[1, 8, 1], [1, 8, 8], [1, 8, 1]])
        stats = compute_statistics(trace, WORK)
        # Dwell runs: sensor0 -> 3; sensor2 -> 1 and 1.
        assert stats.mean_dwell == pytest.approx((3 + 1 + 1) / 3)

    def test_steps(self):
        trace = trace_from([[0, 0, 0], [3, 0, 4]])
        stats = compute_statistics(trace, WORK)
        assert stats.median_step == pytest.approx(3.0)
        assert stats.p90_step >= 3.0

    def test_single_slot_trace(self):
        trace = trace_from([[1, 8]])
        stats = compute_statistics(trace, WORK)
        assert stats.mean_entries_per_slot == 0.0
        assert stats.median_step == 0.0
        assert stats.mean_dwell == pytest.approx(1.0)

    def test_format_mentions_key_numbers(self):
        trace = trace_from([[1, 8, 1], [1, 8, 8]])
        text = compute_statistics(trace, WORK).format()
        assert "presence" in text and "churn" in text and "dwell" in text


class TestSubstituteValidation:
    def test_rnc_substitute_statistics_sane(self):
        """The substitute must show presence near target AND nonzero churn
        (sensors moving in and out of the hotspot — the availability
        obstacle the paper's algorithms are designed around)."""
        model = NokiaCampaignSynthesizer.calibrated(
            np.random.default_rng(3),
            n_sensors=200,
            target_presence=40.0,
            pilot_slots=30,
        )
        trace = model.synthesize(30, warmup=15)
        stats = compute_statistics(trace, model.working_region)
        assert 0.5 * 40 <= stats.mean_presence <= 1.6 * 40
        assert stats.mean_entries_per_slot > 0.0
        assert stats.mean_exits_per_slot > 0.0
        assert stats.mean_dwell >= 1.0
