"""The Intel-Lab scenario substitute (Section 4.2 / 4.6).

The paper replays Intel Lab readings over a 20x15 grid and moves 30
imaginary sensors through it with a random waypoint model; each imaginary
sensor reports the reading of the cell it stands on.  We synthesize the
field (:class:`repro.phenomena.CorrelatedField`), learn GP hyper-parameters
from a fraction of its cells exactly as the paper learns from a fraction of
the readings, and build the same 30-sensor mobile fleet on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..mobility import MobilityTrace, RandomWaypointMobility
from ..phenomena import (
    INTEL_LAB_REGION,
    CorrelatedField,
    GaussianProcessField,
    fit_hyperparameters,
)
from ..sensors import FleetConfig
from .scenario import Scenario

__all__ = ["IntelScenario", "build_intel_scenario"]


@dataclass(frozen=True)
class IntelScenario:
    """A region-monitoring world: mobility scenario + field + learned GP."""

    scenario: Scenario
    field: CorrelatedField
    gp: GaussianProcessField


@lru_cache(maxsize=8)
def _cached_world(
    seed: int, n_sensors: int, n_slots: int, training_fraction: float
) -> tuple[MobilityTrace, CorrelatedField, GaussianProcessField]:
    field_rng = np.random.default_rng(seed)
    field = CorrelatedField(field_rng, region=INTEL_LAB_REGION)
    locations, values = field.training_sample(training_fraction, field_rng)
    hyper = fit_hyperparameters(locations, values)
    gp = GaussianProcessField(hyper.kernel(), noise=hyper.noise)
    mob_rng = np.random.default_rng(seed + 7)
    mobility = RandomWaypointMobility(
        INTEL_LAB_REGION, n_sensors, mob_rng, max_speed_choices=(2.0, 3.0)
    )
    trace = MobilityTrace.from_frames(INTEL_LAB_REGION, mobility.run(n_slots))
    return trace, field, gp


def build_intel_scenario(
    seed: int = 2013,
    n_sensors: int = 30,
    n_slots: int = 50,
    training_fraction: float = 0.5,
    fleet_config: FleetConfig | None = None,
) -> IntelScenario:
    """Paper defaults: 30 imaginary mobile sensors over the 20x15 field."""
    trace, field, gp = _cached_world(seed, n_sensors, n_slots, training_fraction)
    scenario = Scenario(
        name="INTEL",
        trace=trace,
        working_region=INTEL_LAB_REGION,
        fleet_config=fleet_config if fleet_config is not None else FleetConfig(),
        fleet_seed=seed + 1,
        dmax=2.0,
    )
    return IntelScenario(scenario=scenario, field=field, gp=gp)
