"""The streaming marketplace: an async service facade over ``SlotEngine``.

The paper's marketplace is online — queries arrive continuously and are
matched to sensor announcements slot by slot — but every engine in this
repo so far ran closed batch simulations.  :class:`MarketplaceService`
runs the same :class:`~repro.core.engine.SlotEngine` as a long-running
service:

* clients :meth:`~MarketplaceService.submit` queries **between** ticks;
  submissions pass admission control (bounded queue depth) and either
  get a :class:`Ticket` or a reject-with-reason;
* a slot ticker (fixed ``tick_interval`` or run-to-completion) drains up
  to ``max_admitted_per_tick`` queued queries into the next slot through
  the :class:`AdmissionStream` adapter, steps the engine once — which
  also applies fleet churn via the existing incremental announce path —
  and folds the outcome into :class:`~.metrics.ServiceMetrics`;
* the excess stays queued (backpressure), and a full queue rejects new
  submissions instead of growing without bound.

The contract that keeps the service honest is **scheduling, never
semantics**: every admission is recorded in an :class:`AdmissionTrace`,
and :func:`replay_admission_trace` re-runs the same per-slot query
sequence through an offline batch engine built from the same spec.  The
per-slot allocations must compare equal under
:func:`~repro.experiments.replay.allocation_signature` — the same
canonical query-id relabeling discipline as ``repro replay`` — which
``tests/test_service_parity.py`` pins across dense/sharded ×
fused/incremental engines.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..core.engine import OneShotStream, SlotEngine
from ..core.metrics import SimulationSummary, SlotRecord
from ..queries import Query
from .metrics import ServiceMetrics

__all__ = [
    "REJECT_QUEUE_FULL",
    "REJECT_NOT_ACCEPTING",
    "Ticket",
    "ServiceConfig",
    "AdmissionStream",
    "RecordedAdmissionStream",
    "AdmittedSlot",
    "AdmissionTrace",
    "MarketplaceService",
    "service_engine",
    "replay_admission_trace",
]

#: Rejection reasons surfaced on :class:`Ticket` and counted per-reason
#: in :class:`~.metrics.ServiceMetrics`.
REJECT_QUEUE_FULL = "queue_full"
REJECT_NOT_ACCEPTING = "not_accepting"

_ARRIVAL_KEYS = {"profile", "rate", "burst_rate", "period", "burst_length", "seed"}


@dataclass(frozen=True)
class Ticket:
    """Outcome of one submission: admitted to the queue, or rejected.

    ``seq`` is the service-wide arrival sequence number, assigned in
    submission order to *every* arrival (rejected ones included, so the
    recorded seqs index a regenerated arrival schedule even under load
    shedding); ``tick`` is the tick during which the query was
    submitted.  Rejected tickets additionally carry the ``reason``.
    """

    accepted: bool
    tick: int
    seq: int | None = None
    reason: str | None = None


@dataclass(frozen=True)
class ServiceConfig:
    """Ticker + admission-control parameters of one service.

    Attributes:
        tick_interval: seconds between tick starts; ``0`` runs slots
            back-to-back (run-to-completion ticker).
        max_queue_depth: admission-queue bound — submissions beyond it
            are rejected with :data:`REJECT_QUEUE_FULL` (backpressure
            instead of unbounded growth).
        max_admitted_per_tick: per-tick admission cap; queued queries
            beyond it wait for later ticks.
        arrivals: optional load-generator profile (consumed by
            :class:`~.loadgen.LoadGenerator`, validated here):
            ``{"profile": "poisson"|"bursty", "rate": ..., ...}``.
    """

    tick_interval: float = 0.0
    max_queue_depth: int = 1024
    max_admitted_per_tick: int = 256
    arrivals: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.tick_interval < 0:
            raise ValueError("tick_interval must be >= 0")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_admitted_per_tick < 1:
            raise ValueError("max_admitted_per_tick must be >= 1")
        if self.arrivals is not None:
            extra = set(self.arrivals) - _ARRIVAL_KEYS
            if extra:
                raise ValueError(f"unknown arrivals fields: {sorted(extra)}")
            profile = self.arrivals.get("profile", "poisson")
            if profile not in ("poisson", "bursty"):
                raise ValueError(
                    f"unknown arrival profile {profile!r}; "
                    "choose 'poisson' or 'bursty'"
                )

    @classmethod
    def from_payload(cls, payload: dict[str, Any] | None) -> "ServiceConfig":
        """Build (and validate) from a spec's JSON ``service`` block."""
        if payload is None:
            return cls()
        known = {"tick_interval", "max_queue_depth", "max_admitted_per_tick",
                 "arrivals"}
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown service fields: {sorted(extra)}")
        kwargs = dict(payload)
        # Coerce JSON scalars so a mistyped spec fails as ValueError here
        # rather than a TypeError deep in a comparison.
        try:
            if "tick_interval" in kwargs:
                kwargs["tick_interval"] = float(kwargs["tick_interval"])
            for key in ("max_queue_depth", "max_admitted_per_tick"):
                if key in kwargs:
                    kwargs[key] = int(kwargs[key])
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad service field value: {exc}") from exc
        if "arrivals" in kwargs and kwargs["arrivals"] is not None:
            kwargs["arrivals"] = dict(kwargs["arrivals"])
        return cls(**kwargs)


# ----------------------------------------------------------------------
# the adapter streams
# ----------------------------------------------------------------------
class AdmissionStream(OneShotStream):
    """The adapter between the admission queue and the slot engine.

    A :class:`~repro.core.engine.OneShotStream` whose "workload" is the
    batch the service loaded for the next tick: :meth:`load` stages the
    admitted queries, ``begin_slot`` drains them into the slot (in FIFO
    admission order — the order the greedy settlement depends on), and
    settlement reuses the one-shot accounting unchanged.  A tick with no
    admissions is a zero-query slot, which every engine phase must (and
    does) settle cleanly.
    """

    def __init__(self) -> None:
        super().__init__(
            workload=self, kind="admitted", record_slot_qualities=False
        )
        self._staged: list[Query] = []

    def load(self, queries: Sequence[Query]) -> None:
        self._staged.extend(queries)

    def generate(self, t: int, rng) -> list[Query]:
        staged, self._staged = self._staged, []
        return staged


class RecordedAdmissionStream(OneShotStream):
    """Replays a recorded per-slot admission sequence through an engine.

    The offline half of the parity contract: slot ``i`` of the batch
    engine emits exactly the queries slot ``i`` of the service admitted,
    in the same order.  Runs past the recording emit nothing.
    """

    def __init__(self, per_slot: Sequence[Sequence[Query]]) -> None:
        super().__init__(
            workload=self, kind="admitted", record_slot_qualities=False
        )
        self._per_slot = [list(queries) for queries in per_slot]
        self._cursor = 0

    def generate(self, t: int, rng) -> list[Query]:
        if self._cursor >= len(self._per_slot):
            return []
        queries = self._per_slot[self._cursor]
        self._cursor += 1
        return list(queries)


# ----------------------------------------------------------------------
# the admission trace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmittedSlot:
    """One tick's admissions: slot index, arrival seqs, query objects."""

    t: int
    seqs: tuple[int, ...]
    queries: tuple[Query, ...]


@dataclass
class AdmissionTrace:
    """The recorded admission schedule of one service run.

    Enough to replay the run offline two ways: by re-submitting the
    recorded query objects, or — the stronger contract — by regenerating
    the arrival stream from its seed and indexing it with the recorded
    ``seqs`` (:meth:`per_slot_queries` with ``queries_by_seq``).
    """

    slots: list[AdmittedSlot] = field(default_factory=list)

    def record(self, t: int, seqs: Sequence[int], queries: Sequence[Query]) -> None:
        self.slots.append(AdmittedSlot(t, tuple(seqs), tuple(queries)))

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    @property
    def total_admitted(self) -> int:
        return sum(len(s.seqs) for s in self.slots)

    def per_slot_queries(
        self, queries_by_seq: Sequence[Query] | None = None
    ) -> list[list[Query]]:
        """The per-slot query lists to feed an offline replay engine.

        With ``queries_by_seq`` (an independently regenerated arrival
        stream indexed by arrival sequence number), the recorded seqs
        select from it — fresh query objects with fresh ids, which is
        exactly what the relabeling parity discipline absorbs.  Without
        it, the recorded objects themselves are replayed.
        """
        if queries_by_seq is None:
            return [list(s.queries) for s in self.slots]
        return [[queries_by_seq[seq] for seq in s.seqs] for s in self.slots]


# ----------------------------------------------------------------------
# the service
# ----------------------------------------------------------------------
def service_engine(spec) -> tuple[SlotEngine, AdmissionStream, list]:
    """Compile a spec into a service-ready engine.

    Reuses the spec's whole compilation path (world, fleet, knobs:
    sharding / fused / incremental), then swaps the declared one-shot
    streams for a single :class:`AdmissionStream` — their workloads are
    returned as the arrival templates the load generator draws queries
    from.  Monitoring/event streams own live cross-slot query state the
    admission queue cannot schedule, so specs declaring them are
    rejected here.
    """
    engine = spec.build()
    workloads = []
    for stream in engine.streams:
        if type(stream) is not OneShotStream:
            raise ValueError(
                "the marketplace service admits one-shot queries only; "
                f"drop the {stream.kind!r} stream from the spec"
            )
        workloads.append((stream.kind, stream.workload))
    admission = AdmissionStream()
    engine.streams = [admission]
    return engine, admission, workloads


@dataclass
class _Pending:
    seq: int
    query: Query
    submitted_tick: int


class MarketplaceService:
    """A long-running marketplace over one :class:`SlotEngine`.

    The synchronous core is :meth:`tick_once` (drain admissions → step
    the engine → observe metrics/trace); :meth:`serve` wraps it in an
    asyncio ticker that paces ticks at ``config.tick_interval`` and
    yields to the event loop between them so submitters interleave.
    Parity artifacts are kept as they accrue: :attr:`trace` records
    every admission, :attr:`slot_signatures` every slot's canonical
    allocation signature.
    """

    def __init__(self, engine: SlotEngine, admission: AdmissionStream,
                 config: ServiceConfig | None = None, *,
                 workloads: list | None = None) -> None:
        from ..experiments.replay import allocation_signature

        self.engine = engine
        self.admission = admission
        self.config = config if config is not None else ServiceConfig()
        self.workloads = list(workloads or [])
        self.metrics = ServiceMetrics()
        self.summary = SimulationSummary()
        self.trace = AdmissionTrace()
        self.slot_signatures: list = []
        self._signature = allocation_signature
        self._queue: list[_Pending] = []
        self._next_seq = 0
        self._accepting = True
        self.ticks = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec, **overrides) -> "MarketplaceService":
        """Build from a :class:`~repro.datasets.ScenarioSpec`.

        The spec's ``service`` block provides the config; keyword
        overrides (``tick_interval``, ``max_queue_depth``,
        ``max_admitted_per_tick``) replace individual fields.
        """
        import dataclasses

        config = ServiceConfig.from_payload(getattr(spec, "service", None))
        if overrides:
            config = dataclasses.replace(config, **overrides)
        engine, admission, workloads = service_engine(spec)
        return cls(engine, admission, config, workloads=workloads)

    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """The engine's slot clock (the tick submissions are stamped with)."""
        return self.engine.fleet.clock

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def accepting(self) -> bool:
        return self._accepting

    def submit(self, query: Query) -> Ticket:
        """Admission control: queue the query for a future tick, or reject.

        Queue-full and shutdown rejections return immediately with a
        reason (and are counted per reason) — backpressure is explicit,
        never an unbounded queue.
        """
        # Every arrival consumes a sequence number, rejected or not —
        # ``seq`` is the position in the arrival stream, which is what
        # lets an offline replay index a regenerated schedule even when
        # the live run shed load.
        seq = self._next_seq
        self._next_seq += 1
        if not self._accepting:
            self.metrics.observe_submit(False, REJECT_NOT_ACCEPTING)
            return Ticket(False, self.tick, seq=seq, reason=REJECT_NOT_ACCEPTING)
        if len(self._queue) >= self.config.max_queue_depth:
            self.metrics.observe_submit(False, REJECT_QUEUE_FULL)
            return Ticket(False, self.tick, seq=seq, reason=REJECT_QUEUE_FULL)
        self._queue.append(_Pending(seq, query, self.tick))
        self.metrics.observe_submit(True)
        return Ticket(True, self.tick, seq=seq)

    # ------------------------------------------------------------------
    def tick_once(self) -> SlotRecord:
        """Run one slot: drain admissions, step the engine, observe.

        The per-tick admission cap bounds slot size; everything else
        stays queued.  Fleet churn advances inside the engine step
        (through the incremental announce path when the spec enables
        it), and the slot's allocation signature + admission record are
        appended to the parity artifacts.
        """
        t = self.tick
        cap = self.config.max_admitted_per_tick
        drained, self._queue = self._queue[:cap], self._queue[cap:]
        rejected_before = self.metrics.rejected_total
        self.admission.load([p.query for p in drained])
        self.metrics.observe_admission([t - p.submitted_tick for p in drained])
        self.trace.record(t, [p.seq for p in drained], [p.query for p in drained])

        record = self.engine.step(self.summary)
        self.slot_signatures.append(self._signature(self.engine.last_result))
        self.ticks += 1
        self.metrics.observe_slot(
            t,
            admitted=len(drained),
            rejected=self.metrics.rejected_total - rejected_before,
            queue_depth=len(self._queue),
            record=record,
            timings=self.engine.last_timings,
            allocs=self.engine.last_allocs,
        )
        return record

    async def serve(self, n_slots: int | None = None) -> None:
        """The asyncio ticker: pace :meth:`tick_once` until done/stopped.

        A fixed ``tick_interval`` sleeps off the remainder of each tick
        (a slow slot just starts the next tick immediately — latency
        shows in the histograms, the ticker never queues ticks); an
        interval of 0 runs slots back-to-back, still yielding to the
        loop between ticks so submitters get scheduled.
        """
        done = 0
        while self._accepting and (n_slots is None or done < n_slots):
            started = time.perf_counter()
            self.tick_once()
            done += 1
            remaining = self.config.tick_interval - (time.perf_counter() - started)
            await asyncio.sleep(remaining if remaining > 0 else 0)

    def stop(self) -> None:
        """Stop accepting: in-flight queue drains on subsequent ticks."""
        self._accepting = False


# ----------------------------------------------------------------------
# the offline half of the parity contract
# ----------------------------------------------------------------------
def replay_admission_trace(
    spec,
    trace: AdmissionTrace,
    queries_by_seq: Sequence[Query] | None = None,
) -> list:
    """Batch-replay a recorded admission trace; return per-slot signatures.

    Builds a fresh engine from the same spec (identical world, fleet
    seed and knobs), feeds it the trace's per-slot query sequence
    through a :class:`RecordedAdmissionStream`, and returns each slot's
    :func:`~repro.experiments.replay.allocation_signature`.  The service
    is a scheduling/transport layer exactly when these compare ``==`` to
    the service's own :attr:`MarketplaceService.slot_signatures`.
    """
    from ..experiments.replay import allocation_signature

    engine = spec.build()
    engine.streams = [
        RecordedAdmissionStream(trace.per_slot_queries(queries_by_seq))
    ]
    summary = SimulationSummary()
    signatures = []
    for _ in range(trace.n_slots):
        engine.step(summary)
        signatures.append(allocation_signature(engine.last_result))
    return signatures
