#!/usr/bin/env python
"""City air-quality platform: the full query mix of Section 3.4.

The motivating scenario of the paper's introduction: one participatory-
sensing platform serving many concurrent applications —

* citizens asking "what is the CO2 level right here?" (point queries),
* a newspaper mapping averages per neighbourhood (spatial aggregates),
* an environmental agency monitoring fixed addresses over hours
  (location-monitoring queries with OptiMoS-style sampling schedules).

Algorithm 5 shares sensors (and their costs) across all of them; the
sequential baseline runs every application separately.  Watch the utility
gap — that gap is the platform's sustainability margin.

Run:  python examples/city_air_quality.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AggregateQueryWorkload,
    BaselineMixAllocator,
    LocationMonitoringWorkload,
    MixAllocator,
    MixSimulation,
    PointQueryWorkload,
)
from repro.datasets import build_ozone_dataset, build_rnc_scenario

N_SLOTS = 12
BUDGET_FACTOR = 15.0


def build_simulation(mix, seed: int = 2013) -> MixSimulation:
    # A down-scaled Lausanne: 200 participants, ~40 in the downtown hotspot.
    scenario = build_rnc_scenario(
        seed=seed, n_sensors=200, target_presence=40.0, n_slots=N_SLOTS
    )
    ozone = build_ozone_dataset(seed=seed)
    citizens = PointQueryWorkload(
        scenario.working_region, n_queries=60, budget=BUDGET_FACTOR, dmax=scenario.dmax
    )
    newspaper = AggregateQueryWorkload(
        scenario.working_region,
        budget_factor=BUDGET_FACTOR,
        mean_queries=8,
        count_spread=3,
        sensing_range=scenario.dmax,
    )
    agency = LocationMonitoringWorkload(
        scenario.working_region,
        ozone.values,
        ozone.model(),
        budget_factor=BUDGET_FACTOR,
        max_live=20,
        arrivals_per_slot=4,
        dmax=scenario.dmax,
    )
    return MixSimulation(
        scenario.make_fleet(), citizens, newspaper, agency, mix, np.random.default_rng(5)
    )


def main() -> None:
    print(f"Query mix on the RNC-substitute city, {N_SLOTS} slots\n")
    results = {}
    for name, mix in [("Algorithm 5", MixAllocator()), ("Baseline", BaselineMixAllocator())]:
        summary = build_simulation(mix).run(N_SLOTS)
        results[name] = summary
        print(f"--- {name}")
        print(f"  avg utility / slot      : {summary.average_utility:9.1f}")
        print(f"  point satisfaction      : {summary.satisfaction_ratio:9.1%}")
        print(f"  point quality           : {summary.average_quality('point'):9.3f}")
        print(f"  aggregate quality       : {summary.average_quality('aggregate'):9.3f}")
        print(
            "  monitoring quality      : "
            f"{summary.average_quality('location_monitoring'):9.3f}"
        )
        print(f"  queries with net benefit: {summary.egalitarian_ratio:9.1%}\n")

    advantage = (
        results["Algorithm 5"].average_utility - results["Baseline"].average_utility
    )
    print(f"Sensor sharing is worth {advantage:.1f} utility per slot to this city.")


if __name__ == "__main__":
    main()
