"""Tests for Algorithm 5 (query mix) and the sequential mix baseline."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_snapshot
from repro.core import BaselineMixAllocator, GreedyAllocator, MixAllocator
from repro.phenomena import (
    GaussianProcessField,
    HarmonicRegressionModel,
    OzoneTraceSynthesizer,
    RBFKernel,
    schedule_for_window,
)
from repro.queries import (
    LocationMonitoringQuery,
    PointQuery,
    RegionMonitoringQuery,
    SpatialAggregateQuery,
)
from repro.spatial import Region

SERIES = OzoneTraceSynthesizer().generate(50, np.random.default_rng(5))
MODEL = HarmonicRegressionModel(50, 1)
GP = GaussianProcessField(RBFKernel(1.0, 2.0), noise=0.2)
REGION = Region.from_origin(30, 30)


def build_slot(seed=0, n_sensors=20):
    rng = np.random.default_rng(seed)
    sensors = [
        make_snapshot(
            i, x=float(rng.uniform(0, 30)), y=float(rng.uniform(0, 30)),
            cost=10.0, inaccuracy=float(rng.uniform(0, 0.2)),
        )
        for i in range(n_sensors)
    ]
    points = [
        PointQuery(REGION.sample_location(rng), budget=15.0, theta_min=0.0, dmax=6.0)
        for _ in range(8)
    ]
    aggregates = [
        SpatialAggregateQuery(
            Region.random_subregion(REGION, rng, min_side=5, max_side=12),
            budget=40.0, sensing_range=6.0, coverage_radius=3.0,
        )
        for _ in range(3)
    ]
    desired = schedule_for_window(SERIES, 0, 10, 3, MODEL)
    lm = [
        LocationMonitoringQuery(
            REGION.sample_location(rng), 0, 9, desired, budget=100.0,
            series=SERIES, model=MODEL, theta_min=0.0, dmax=6.0,
        )
        for _ in range(3)
    ]
    rm = [RegionMonitoringQuery(Region(5, 5, 15, 13), 0, 9, budget=60.0, gp=GP)]
    return points, aggregates, lm, rm, sensors


class TestMixAllocator:
    def test_joint_allocation_covers_all_types(self):
        points, aggregates, lm, rm, sensors = build_slot()
        outcome = MixAllocator().allocate_slot(0, points, aggregates, lm, rm, sensors)
        result = outcome.result
        answered_types = set()
        for qid in result.assignments:
            if any(q.query_id == qid for q in points):
                answered_types.add("point")
            if any(q.query_id == qid for q in aggregates):
                answered_types.add("aggregate")
        assert "point" in answered_types
        assert "aggregate" in answered_types

    def test_payment_invariants_after_adjustment(self):
        points, aggregates, lm, rm, sensors = build_slot(seed=1)
        outcome = MixAllocator().allocate_slot(0, points, aggregates, lm, rm, sensors)
        outcome.result.verify()  # raises on violation

    def test_lm_state_updated(self):
        points, aggregates, lm, rm, sensors = build_slot(seed=2)
        outcome = MixAllocator().allocate_slot(0, points, aggregates, lm, rm, sensors)
        total_samples = sum(len(q.sampled_times) for q in lm)
        assert total_samples == outcome.lm_samples

    def test_rm_slot_recorded(self):
        points, aggregates, lm, rm, sensors = build_slot(seed=3)
        MixAllocator().allocate_slot(0, points, aggregates, lm, rm, sensors)
        assert len(rm[0].slot_values) == 1

    def test_total_utility_consistent(self):
        points, aggregates, lm, rm, sensors = build_slot(seed=4)
        outcome = MixAllocator().allocate_slot(0, points, aggregates, lm, rm, sensors)
        child_ids = outcome.child_ids
        one_shot = sum(
            v for qid, v in outcome.result.values.items() if qid not in child_ids
        )
        expected = (
            one_shot
            + outcome.lm_value_delta
            + sum(o.achieved_value for o in outcome.rm_outcomes)
            - outcome.result.total_cost
        )
        assert outcome.total_utility == pytest.approx(expected)

    def test_empty_slot(self):
        outcome = MixAllocator().allocate_slot(0, [], [], [], [], [])
        assert outcome.total_utility == 0.0

    def test_custom_joint_allocator(self):
        points, aggregates, lm, rm, sensors = build_slot(seed=5)
        joint = GreedyAllocator(min_gain=1e-6)
        outcome = MixAllocator(joint=joint).allocate_slot(
            0, points, aggregates, lm, rm, sensors
        )
        assert outcome.result is not None


class TestBaselineMix:
    def test_runs_and_verifies(self):
        points, aggregates, lm, rm, sensors = build_slot(seed=6)
        outcome = BaselineMixAllocator().allocate_slot(
            0, points, aggregates, lm, rm, sensors
        )
        outcome.result.verify()

    def test_aggregate_sensors_free_for_point_stage(self):
        """A sensor bought by the aggregate stage costs the point stage
        nothing; total sensor income still equals its cost."""
        points, aggregates, lm, rm, sensors = build_slot(seed=7)
        outcome = BaselineMixAllocator().allocate_slot(
            0, points, aggregates, lm, rm, sensors
        )
        result = outcome.result
        for sid, snap in result.selected.items():
            assert result.sensor_income(sid) == pytest.approx(snap.cost, abs=1e-9)

    def test_mix_beats_baseline_on_average(self):
        """The headline Figure 10 relationship on a handful of slots."""
        alg5_total, base_total = 0.0, 0.0
        for seed in range(5):
            points, aggregates, lm, rm, sensors = build_slot(seed=seed)
            alg5 = MixAllocator().allocate_slot(0, points, aggregates, lm, rm, sensors)
            alg5_total += alg5.total_utility
            points, aggregates, lm, rm, sensors = build_slot(seed=seed)
            base = BaselineMixAllocator().allocate_slot(
                0, points, aggregates, lm, rm, sensors
            )
            base_total += base.total_utility
        assert alg5_total > base_total

    def test_lm_children_only_at_desired_times(self):
        points, aggregates, lm, rm, sensors = build_slot(seed=8)
        baseline = BaselineMixAllocator()
        t = 1
        if any(t in q.desired_times for q in lm):
            t = max(max(q.desired_times) for q in lm) + 1
        outcome = baseline.allocate_slot(t, [], [], lm, [], sensors)
        assert outcome.lm_children == []
