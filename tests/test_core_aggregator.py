"""Tests for the Aggregator service API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Aggregator, AllocationError, BaselineMixAllocator
from repro.datasets import build_ozone_dataset, build_rwm_scenario
from repro.phenomena import schedule_for_window
from repro.queries import (
    EventDetectionQuery,
    LocationMonitoringQuery,
    PointQuery,
    SpatialAggregateQuery,
)
from repro.spatial import Region

SCENARIO = build_rwm_scenario(seed=21, n_sensors=80, n_slots=10)
OZONE = build_ozone_dataset(seed=21)


def make_aggregator(**kwargs) -> Aggregator:
    return Aggregator(SCENARIO.make_fleet(), **kwargs)


def point(budget=20.0, rng_seed=0) -> PointQuery:
    rng = np.random.default_rng(rng_seed)
    return PointQuery(
        SCENARIO.working_region.sample_location(rng), budget=budget,
        theta_min=0.0, dmax=SCENARIO.dmax,
    )


class TestSubmission:
    def test_submit_creates_receipt_and_account(self):
        agg = make_aggregator()
        receipt = agg.submit(point(), user_id="alice")
        assert receipt.user_id == "alice"
        assert receipt.query_type == "point"
        assert "alice" in agg.accounts

    def test_double_submit_rejected(self):
        agg = make_aggregator()
        q = point()
        agg.submit(q)
        with pytest.raises(AllocationError):
            agg.submit(q)

    def test_duplicate_account_rejected(self):
        agg = make_aggregator()
        agg.open_account("bob")
        with pytest.raises(AllocationError):
            agg.open_account("bob")

    def test_unsupported_object_rejected(self):
        agg = make_aggregator()
        with pytest.raises(AllocationError):
            agg.submit("not a query")

    def test_all_query_kinds_routed(self):
        agg = make_aggregator()
        rng = np.random.default_rng(0)
        region = SCENARIO.working_region
        desired = schedule_for_window(OZONE.values, 0, 6, 2, OZONE.model())
        kinds = {
            "point": point(),
            "aggregate": SpatialAggregateQuery(
                Region.centered_in(region, 10, 10), budget=50.0,
                sensing_range=SCENARIO.dmax, coverage_radius=3.0,
            ),
            "location_monitoring": LocationMonitoringQuery(
                region.sample_location(rng), 0, 5, desired, budget=90.0,
                series=OZONE.values, model=OZONE.model(), theta_min=0.0,
                dmax=SCENARIO.dmax,
            ),
            "event": EventDetectionQuery(
                region.sample_location(rng), 0, 5, threshold=10.0,
                confidence=0.8, budget=60.0, theta_min=0.0, dmax=SCENARIO.dmax,
            ),
        }
        for expected, query in kinds.items():
            receipt = agg.submit(query)
            assert receipt.query_type == expected
        assert agg.live_query_count() == 2  # lm + event


class TestSlotExecution:
    def test_one_shot_answered_and_charged(self):
        agg = make_aggregator()
        receipt = agg.submit(point(budget=25.0), user_id="alice")
        digest = agg.run_slot()
        assert digest.slot == 0
        assert receipt.completed_at == 0
        if receipt.answered:
            assert receipt.value > 0
            assert receipt.utility >= -1e-9
            account = agg.accounts["alice"]
            assert account.spent == pytest.approx(receipt.paid)

    def test_continuous_query_spans_slots(self):
        agg = make_aggregator()
        rng = np.random.default_rng(1)
        desired = schedule_for_window(OZONE.values, 0, 5, 2, OZONE.model())
        lm = LocationMonitoringQuery(
            SCENARIO.working_region.sample_location(rng), 0, 4, desired,
            budget=75.0, series=OZONE.values, model=OZONE.model(),
            theta_min=0.0, dmax=SCENARIO.dmax,
        )
        receipt = agg.submit(lm, user_id="agency")
        agg.run(6)
        assert receipt.completed_at is not None
        assert agg.live_query_count() == 0
        assert agg.accounts["agency"].spent == pytest.approx(lm.spent)

    def test_budget_gate_requeues_queries(self):
        agg = make_aggregator()
        agg.open_account("cheap", budget=0.0)
        receipt = agg.submit(point(budget=25.0), user_id="cheap")
        agg.run_slot()
        # Never admitted: no spending, not answered.
        assert not receipt.answered
        assert agg.accounts["cheap"].spent == 0.0

    def test_digests_accumulate(self):
        agg = make_aggregator()
        for seed in range(3):
            agg.submit(point(rng_seed=seed))
        digests = agg.run(3)
        assert [d.slot for d in digests] == [0, 1, 2]
        assert agg.total_utility() == pytest.approx(sum(d.utility for d in digests))

    def test_baseline_policy_pluggable(self):
        agg = make_aggregator(mix=BaselineMixAllocator())
        agg.submit(point(budget=25.0))
        digest = agg.run_slot()
        assert digest.slot == 0

    def test_event_fires_with_ground_truth(self):
        agg = make_aggregator(ground_truth=lambda loc: 100.0)
        rng = np.random.default_rng(2)
        event = EventDetectionQuery(
            SCENARIO.working_region.sample_location(rng), 0, 4,
            threshold=50.0, confidence=0.2, budget=100.0,
            theta_min=0.0, dmax=SCENARIO.dmax,
        )
        agg.submit(event)
        fired = sum(d.events_fired for d in agg.run(5))
        assert fired == len(event.detections)

    def test_events_never_fire_without_ground_truth(self):
        agg = make_aggregator()
        rng = np.random.default_rng(2)
        event = EventDetectionQuery(
            SCENARIO.working_region.sample_location(rng), 0, 4,
            threshold=50.0, confidence=0.2, budget=100.0,
            theta_min=0.0, dmax=SCENARIO.dmax,
        )
        agg.submit(event)
        assert sum(d.events_fired for d in agg.run(5)) == 0


class TestAccounting:
    def test_account_utilities_consistent_with_receipts(self):
        agg = make_aggregator()
        for seed in range(5):
            agg.submit(point(budget=25.0, rng_seed=seed), user_id="alice")
        agg.run(2)
        account = agg.accounts["alice"]
        receipts = [agg.receipts[qid] for qid in account.queries]
        assert account.spent == pytest.approx(sum(r.paid for r in receipts))
        assert account.value_received == pytest.approx(sum(r.value for r in receipts))
        assert account.utility == pytest.approx(sum(r.utility for r in receipts))
