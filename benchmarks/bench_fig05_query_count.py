"""Figure 5: utility and satisfaction vs the number of point queries.

The paper's finding: more queries mean more sharing opportunities — utility
grows with query count and satisfaction creeps up, while the baseline
scales far less favourably.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig5, format_figure


def test_fig5_query_count_sweep(benchmark, scale):
    result = run_once(benchmark, fig5, scale)
    print()
    print(format_figure(result))

    optimal = result.metric("Optimal", "avg_utility")
    baseline = result.metric("Baseline", "avg_utility")
    assert optimal == sorted(optimal)  # monotone in query count
    assert result.dominates("Optimal", "Baseline", "avg_utility", slack=1e-9)
    # Sharing advantage: Optimal's absolute lead grows with the load.
    leads = [o - b for o, b in zip(optimal, baseline)]
    assert leads[-1] >= leads[0]
