"""Ablation: the eq. 18 cost-sharing weight w(k) for region monitoring.

The weight discounts a sensor's cost inside Algorithm 4 proportionally to
how many monitored regions contain it, "increasing the selection chance of
a sensor which can be shared".  Disabling it (w = 1) is exactly what the
Figure 9 baseline does besides dropping shared sensors; here we isolate
the weighting alone.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.core import (
    OptimalPointAllocator,
    RegionMonitoringController,
    RegionMonitoringSimulation,
    paper_weight_function,
)
from repro.datasets import build_intel_scenario
from repro.queries import RegionMonitoringWorkload


def run_variant(scale, weighted: bool):
    world = build_intel_scenario(2013, scale.intel_sensors, scale.n_slots)
    workload = RegionMonitoringWorkload(
        world.scenario.working_region,
        world.gp,
        budget_factor=15.0,
        sensing_radius=world.scenario.dmax,
        queries_per_slot=2,  # overlap needed for w(k) to matter
    )
    controller = RegionMonitoringController(
        weight_fn=paper_weight_function if weighted else (lambda k: 1.0),
    )
    sim = RegionMonitoringSimulation(
        world.scenario.make_fleet(),
        workload,
        OptimalPointAllocator(),
        np.random.default_rng(2013),
        controller=controller,
    )
    summary = sim.run(scale.n_slots)
    return summary.average_utility, summary.average_quality("region_monitoring")


def sweep(scale):
    return {
        "weighted": run_variant(scale, weighted=True),
        "unweighted": run_variant(scale, weighted=False),
    }


def test_weighting_ablation(benchmark, scale):
    rows = run_once(benchmark, sweep, scale)
    print("\nvariant     avg_utility  avg_quality")
    for name, (utility, quality) in rows.items():
        print(f"{name:10s}  {utility:11.2f}  {quality:11.3f}")
    # The discount can only enlarge the sampling plans; it must not collapse
    # utility (>= 60% of the unweighted variant at any scale).
    assert rows["weighted"][0] >= 0.6 * rows["unweighted"][0]
