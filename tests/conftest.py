"""Shared fixtures for the test suite.

Plain (non-fixture) helpers live in :mod:`helpers` — import them with
``from helpers import ...`` so they cannot be shadowed by another
directory's ``conftest.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.spatial import Region


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def unit_region() -> Region:
    return Region.from_origin(10.0, 10.0)
