"""Gaussian-process modeling of spatial phenomena (Section 2.3.1).

Region monitoring queries value sensor sets by the *expected reduction in
variance* at unobserved locations (eq. 6)::

    F(A) = Var(X_V) - E_{x_A}[ Var(X_V | X_A = x_A) ]

For a Gaussian process the posterior covariance does not depend on the
observed values, so the expectation collapses and F has the closed form::

    F(A) = tr( K_VA (K_AA + sigma^2 I)^{-1} K_AV )

which :meth:`GaussianProcessField.variance_reduction` computes via a
Cholesky solve.  Hyper-parameters are learned from data by marginal-
likelihood maximization (:func:`fit_hyperparameters`), mirroring the paper's
"parameters of the Gaussian model are learned from a fraction of sensor
readings in the Intel Lab dataset" (Section 4.6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.optimize import minimize

from ..spatial import Location, pairwise_distances

__all__ = [
    "RBFKernel",
    "MaternKernel",
    "GaussianProcessField",
    "GPHyperParameters",
    "VarianceReductionState",
    "fit_hyperparameters",
]


@dataclass(frozen=True)
class RBFKernel:
    """Squared-exponential covariance ``k(a,b) = v * exp(-d^2 / (2 l^2))``."""

    variance: float = 1.0
    length_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.variance <= 0:
            raise ValueError("variance must be positive")
        if self.length_scale <= 0:
            raise ValueError("length_scale must be positive")

    def matrix(self, a: Sequence[Location], b: Sequence[Location] | None = None) -> np.ndarray:
        """Dense covariance matrix between two location sets."""
        dist = pairwise_distances(a, b)
        return self.variance * np.exp(-(dist**2) / (2.0 * self.length_scale**2))


@dataclass(frozen=True)
class MaternKernel:
    """Matérn covariance with smoothness nu in {1/2, 3/2, 5/2}.

    The RBF kernel assumes an infinitely smooth phenomenon; urban air
    quality and temperature fields are usually rougher, and the Matérn
    family is the standard alternative.  Only the three closed-form
    smoothness values are supported (they cover practice).
    """

    variance: float = 1.0
    length_scale: float = 1.0
    nu: float = 1.5

    def __post_init__(self) -> None:
        if self.variance <= 0:
            raise ValueError("variance must be positive")
        if self.length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if self.nu not in (0.5, 1.5, 2.5):
            raise ValueError("nu must be one of 0.5, 1.5, 2.5")

    def matrix(self, a: Sequence[Location], b: Sequence[Location] | None = None) -> np.ndarray:
        dist = pairwise_distances(a, b)
        scaled = dist / self.length_scale
        if self.nu == 0.5:
            shape = np.exp(-scaled)
        elif self.nu == 1.5:
            # reprolint: disable=ulp-mixed-math(seed-pinned Matern constant; bit-parity with the frozen reference)
            z = math.sqrt(3.0) * scaled
            shape = (1.0 + z) * np.exp(-z)
        else:  # nu == 2.5
            # reprolint: disable=ulp-mixed-math(seed-pinned Matern constant; bit-parity with the frozen reference)
            z = math.sqrt(5.0) * scaled
            shape = (1.0 + z + z**2 / 3.0) * np.exp(-z)
        return self.variance * shape


@dataclass(frozen=True)
class GPHyperParameters:
    """Learned GP hyper-parameters (kernel + observation noise)."""

    variance: float
    length_scale: float
    noise: float

    def kernel(self) -> RBFKernel:
        return RBFKernel(self.variance, self.length_scale)


class GaussianProcessField:
    """A zero-mean GP over the plane, queried at finite location sets.

    ``kernel`` is any object exposing ``variance`` and
    ``matrix(a, b) -> ndarray`` — :class:`RBFKernel` (the default family)
    or :class:`MaternKernel`.
    """

    def __init__(self, kernel: RBFKernel | MaternKernel, noise: float = 0.1) -> None:
        if noise <= 0:
            raise ValueError("observation noise must be positive")
        self.kernel = kernel
        self.noise = noise

    # ------------------------------------------------------------------
    # eq. (6): expected variance reduction
    # ------------------------------------------------------------------
    def prior_variance(self, targets: Sequence[Location]) -> float:
        """``Var(X_V)`` — the summed prior variance at the target locations."""
        return self.kernel.variance * len(targets)

    def posterior_variance(
        self, targets: Sequence[Location], observed: Sequence[Location]
    ) -> float:
        """Summed posterior variance at ``targets`` given ``observed``."""
        return self.prior_variance(targets) - self.variance_reduction(observed, targets)

    def variance_reduction(
        self, observed: Sequence[Location], targets: Sequence[Location]
    ) -> float:
        """``F(A)`` of eq. (6): total variance removed at ``targets``.

        Returns 0 when either set is empty.  Always non-negative and never
        more than the prior variance (up to numerical jitter) — properties
        the test suite asserts.
        """
        if not observed or not targets:
            return 0.0
        k_aa = self.kernel.matrix(observed)
        # The tiny relative jitter keeps the solve stable when two sensors
        # stand on (numerically) the same spot.
        k_aa[np.diag_indices_from(k_aa)] += self.noise**2 + 1e-9 * self.kernel.variance
        k_av = self.kernel.matrix(observed, targets)
        factor = cho_factor(k_aa, lower=True)
        solved = cho_solve(factor, k_av)
        return float(np.einsum("ij,ij->", k_av, solved))

    # ------------------------------------------------------------------
    # posterior mean prediction (used by examples and event detection)
    # ------------------------------------------------------------------
    def predict(
        self,
        observed: Sequence[Location],
        values: np.ndarray,
        targets: Sequence[Location],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and per-point variance at ``targets``.

        Args:
            observed: measurement locations.
            values: measured values (same length as ``observed``).
            targets: prediction locations.

        Returns:
            ``(mean, variance)`` arrays of length ``len(targets)``.
        """
        values = np.asarray(values, dtype=float)
        if len(observed) != len(values):
            raise ValueError("observed locations and values must align")
        if not observed:
            prior = np.full(len(targets), self.kernel.variance)
            return np.zeros(len(targets)), prior
        k_aa = self.kernel.matrix(observed)
        k_aa[np.diag_indices_from(k_aa)] += self.noise**2
        k_av = self.kernel.matrix(observed, targets)
        factor = cho_factor(k_aa, lower=True)
        mean = k_av.T @ cho_solve(factor, values)
        reduction = np.einsum("ij,ij->j", k_av, cho_solve(factor, k_av))
        variance = np.maximum(self.kernel.variance - reduction, 0.0)
        return mean, variance

    def sample(self, locations: Sequence[Location], rng: np.random.Generator) -> np.ndarray:
        """Draw one realization of the field at ``locations``."""
        cov = self.kernel.matrix(locations)
        cov[np.diag_indices_from(cov)] += 1e-9 * self.kernel.variance
        chol = np.linalg.cholesky(cov)
        return chol @ rng.standard_normal(len(locations))


class VarianceReductionState:
    """Incrementally growing ``F(A)`` evaluation for greedy selection.

    Algorithm 4 of the paper greedily adds sampling locations, evaluating
    ``F(A + s) - F(A)`` for every candidate at every step.  Recomputing the
    Cholesky factor per candidate would cost O(|A|^3 + |A|^2 |V|); this
    state maintains the factor of ``K_AA + sigma^2 I`` and the whitened
    cross-covariance ``W = L^{-1} K_AV`` so a marginal gain costs
    O(|A|^2 + |A| |V|) — microseconds at the paper's scales.

    The algebra: with ``L`` the lower Cholesky factor, ``F(A) = ||W||_F^2``.
    Appending location ``s`` extends ``L`` by the row ``(w_s, d)`` where
    ``w_s = L^{-1} k_As`` and ``d = sqrt(k_ss + sigma^2 - ||w_s||^2)``, and
    extends ``W`` by the row ``(k_sV - w_s^T W) / d`` whose squared norm is
    exactly the marginal gain.
    """

    def __init__(self, field: "GaussianProcessField", targets: Sequence[Location]) -> None:
        self.field = field
        self.targets = list(targets)
        self.observed: list[Location] = []
        self._chol_rows: list[np.ndarray] = []  # lower-triangular rows of L
        self._w_rows: list[np.ndarray] = []  # rows of W = L^{-1} K_AV
        self.reduction = 0.0

    def _new_rows(self, location: Location) -> tuple[np.ndarray, float, np.ndarray] | None:
        kernel = self.field.kernel
        k_ss = kernel.variance + self.field.noise**2
        k_sA = kernel.matrix([location], self.observed)[0] if self.observed else np.zeros(0)
        # Forward-substitute w_s = L^{-1} k_As using the stored rows of L.
        w_s = np.zeros(len(self.observed))
        for i, row in enumerate(self._chol_rows):
            w_s[i] = (k_sA[i] - row[:i] @ w_s[:i]) / row[i]
        d_sq = k_ss - float(w_s @ w_s)
        if d_sq <= 1e-12:  # numerically duplicate location: no new information
            return None
        # reprolint: disable=ulp-mixed-math(scalar Cholesky update pinned bit-identical to the frozen GP reference)
        d = math.sqrt(d_sq)
        k_sV = kernel.matrix([location], self.targets)[0] if self.targets else np.zeros(0)
        if self._w_rows:
            w_matrix = np.asarray(self._w_rows)
            new_w_row = (k_sV - w_s @ w_matrix) / d
        else:
            new_w_row = k_sV / d
        return w_s, d, new_w_row

    def gain(self, location: Location) -> float:
        """``F(A + s) - F(A)`` without mutating the state."""
        rows = self._new_rows(location)
        if rows is None:
            return 0.0
        _, _, new_w_row = rows
        return float(new_w_row @ new_w_row)

    def add(self, location: Location) -> float:
        """Commit ``location`` to the observed set; returns the gain."""
        rows = self._new_rows(location)
        if rows is None:
            self.observed.append(location)
            return 0.0
        w_s, d, new_w_row = rows
        n = len(self.observed)
        chol_row = np.zeros(n + 1)
        chol_row[:n] = w_s
        chol_row[n] = d
        self._chol_rows.append(chol_row)
        # Pad earlier rows implicitly: row i only uses its first i+1 entries.
        self._w_rows.append(new_w_row)
        self.observed.append(location)
        gain = float(new_w_row @ new_w_row)
        self.reduction += gain
        return gain


def _negative_log_marginal_likelihood(
    log_params: np.ndarray, dist_sq: np.ndarray, values: np.ndarray
) -> float:
    variance, length_scale, noise = np.exp(log_params)
    n = len(values)
    cov = variance * np.exp(-dist_sq / (2.0 * length_scale**2))
    cov[np.diag_indices_from(cov)] += noise**2
    try:
        factor = cho_factor(cov, lower=True)
    except np.linalg.LinAlgError:
        return 1e12
    alpha = cho_solve(factor, values)
    log_det = 2.0 * np.log(np.diag(factor[0])).sum()
    # reprolint: disable=ulp-mixed-math(scalar likelihood constant pinned bit-identical to the frozen GP reference)
    return float(0.5 * values @ alpha + 0.5 * log_det + 0.5 * n * math.log(2.0 * math.pi))


def fit_hyperparameters(
    locations: Sequence[Location],
    values: np.ndarray,
    initial: GPHyperParameters | None = None,
) -> GPHyperParameters:
    """Learn (variance, length_scale, noise) by maximum marginal likelihood.

    The values are centred first (the field model is zero-mean).  Uses
    L-BFGS-B on log-parameters, which keeps everything positive without
    explicit constraints.
    """
    values = np.asarray(values, dtype=float)
    if len(locations) != len(values):
        raise ValueError("locations and values must align")
    if len(values) < 3:
        raise ValueError("need at least 3 observations to fit hyper-parameters")
    centred = values - values.mean()
    dist_sq = pairwise_distances(locations) ** 2
    if initial is None:
        # reprolint: disable=ulp-mixed-math(scalar hyper-parameter seed pinned bit-identical to the frozen GP reference)
        spread = math.sqrt(float(dist_sq.max())) if dist_sq.size else 1.0
        initial = GPHyperParameters(
            variance=max(float(centred.var()), 1e-3),
            length_scale=max(spread / 4.0, 1e-2),
            noise=max(float(centred.std()) * 0.1, 1e-3),
        )
    x0 = np.log([initial.variance, initial.length_scale, initial.noise])
    result = minimize(
        _negative_log_marginal_likelihood,
        x0,
        args=(dist_sq, centred),
        method="L-BFGS-B",
        options={"maxiter": 200},
    )
    variance, length_scale, noise = np.exp(result.x)
    # Floor the noise: on noiseless training data the MLE drives it to ~0,
    # which makes downstream K_AA + noise^2 I solves singular for
    # (near-)duplicate sensor locations.
    noise = max(float(noise), 0.05 * float(np.sqrt(variance)))
    return GPHyperParameters(float(variance), float(length_scale), float(noise))
