#!/usr/bin/env python
"""Run every figure reproduction at paper scale and record the series.

Writes one JSON file per figure plus a human-readable report, updating
incrementally so a long run can be inspected (or interrupted) midway.

Usage::

    python scripts/run_paper_experiments.py [--scale paper|ci] [--out DIR]
                                            [--figures fig2,fig3,...]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import time
from pathlib import Path

from repro.experiments import ALL_FIGURES, format_figure, get_scale


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper", choices=["paper", "ci"])
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--figures",
        default=",".join(ALL_FIGURES),
        help="comma-separated figure ids (default: all)",
    )
    parser.add_argument("--seed", type=int, default=2013)
    args = parser.parse_args()

    scale = get_scale(args.scale)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    report_path = out_dir / f"report_{scale.name}.txt"
    wanted = [f.strip() for f in args.figures.split(",") if f.strip()]

    with report_path.open("w") as report:
        report.write(f"# scale={scale.name} seed={args.seed}\n\n")
    for name in wanted:
        if name not in ALL_FIGURES:
            raise SystemExit(f"unknown figure {name!r}; choose from {sorted(ALL_FIGURES)}")
        start = time.perf_counter()
        print(f"[{time.strftime('%H:%M:%S')}] running {name} ...", flush=True)
        result = ALL_FIGURES[name](scale, seed=args.seed)
        elapsed = time.perf_counter() - start
        payload = dataclasses.asdict(result)
        (out_dir / f"{name}_{scale.name}.json").write_text(json.dumps(payload, indent=2))
        text = format_figure(result)
        with report_path.open("a") as report:
            report.write(text + "\n\n")
        print(text, flush=True)
        print(f"[{time.strftime('%H:%M:%S')}] {name} done in {elapsed:.1f}s\n", flush=True)


if __name__ == "__main__":
    main()
