"""Shared test helpers, imported explicitly (``from helpers import ...``).

Kept out of ``conftest.py`` on purpose: ``from conftest import ...`` binds
to whichever conftest pytest put on ``sys.path`` first, so a run that also
collects ``benchmarks/`` resolves it to ``benchmarks/conftest.py`` and the
whole suite fails to collect.  A plainly-named module has no such double.
"""

from __future__ import annotations

import numpy as np

from repro.queries import PointQuery
from repro.sensors import SensorSnapshot
from repro.spatial import Location, Region

__all__ = ["make_snapshot", "make_point_query", "random_instance"]


def make_snapshot(
    sensor_id: int = 0,
    x: float = 0.0,
    y: float = 0.0,
    cost: float = 10.0,
    inaccuracy: float = 0.0,
    trust: float = 1.0,
) -> SensorSnapshot:
    """Terse snapshot builder used throughout the suite."""
    return SensorSnapshot(
        sensor_id=sensor_id,
        location=Location(x, y),
        cost=cost,
        inaccuracy=inaccuracy,
        trust=trust,
    )


def make_point_query(
    x: float = 0.0,
    y: float = 0.0,
    budget: float = 15.0,
    theta_min: float = 0.2,
    dmax: float = 5.0,
    query_id: str | None = None,
) -> PointQuery:
    return PointQuery(
        location=Location(x, y),
        budget=budget,
        theta_min=theta_min,
        dmax=dmax,
        query_id=query_id,
    )


def random_instance(seed: int, n_sensors: int = 8, n_queries: int = 10, side: float = 20.0):
    """A random point-query instance (sensors, queries) for solver tests."""
    trng = np.random.default_rng(seed)
    region = Region.from_origin(side, side)
    sensors = [
        SensorSnapshot(
            i,
            region.sample_location(trng),
            float(trng.uniform(2.0, 12.0)),
            float(trng.uniform(0.0, 0.2)),
            float(trng.uniform(0.5, 1.0)),
        )
        for i in range(n_sensors)
    ]
    queries = [
        PointQuery(
            region.sample_location(trng),
            budget=float(trng.uniform(5.0, 25.0)),
            theta_min=0.2,
            dmax=6.0,
        )
        for _ in range(n_queries)
    ]
    return queries, sensors
