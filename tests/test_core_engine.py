"""Unit tests for the unified SlotEngine, its streams and strategies."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_point_query, make_snapshot
from repro.core import (
    BaselineAllocator,
    GreedyAllocator,
    JointSlotAllocation,
    LocalSearchPointAllocator,
    LocationMonitoringStream,
    OneShotStream,
    SequentialBufferedAllocation,
    SlotEngine,
    ValuationKernel,
    mix_engine,
    one_shot_engine,
)
from repro.core.engine import call_allocator, quality_of
from repro.datasets import ScenarioSpec, StreamSpec, build_ozone_dataset, build_rwm_scenario
from repro.queries import (
    AggregateQueryWorkload,
    LocationMonitoringWorkload,
    PointQueryWorkload,
)

SCENARIO = build_rwm_scenario(seed=55, n_sensors=40, n_slots=8)
OZONE = build_ozone_dataset(seed=55)


def _point_workload(n=15):
    return PointQueryWorkload(
        SCENARIO.working_region, n_queries=n, budget=15.0, dmax=SCENARIO.dmax
    )


class TestEngineBasics:
    def test_requires_streams(self):
        with pytest.raises(ValueError):
            SlotEngine(SCENARIO.make_fleet(), [], GreedyAllocator(), np.random.default_rng(0))

    def test_plain_allocator_is_wrapped(self):
        engine = SlotEngine(
            SCENARIO.make_fleet(),
            [OneShotStream(_point_workload())],
            LocalSearchPointAllocator(),
            np.random.default_rng(0),
        )
        assert isinstance(engine.allocation, JointSlotAllocation)
        summary = engine.run(3)
        assert summary.n_slots == 3

    def test_stream_lookup(self):
        engine = one_shot_engine(
            SCENARIO.make_fleet(), _point_workload(), LocalSearchPointAllocator(),
            np.random.default_rng(0),
        )
        assert engine.stream("one_shot") is engine.streams[0]
        with pytest.raises(KeyError):
            engine.stream("region_monitoring")

    def test_step_advances_fleet_clock(self):
        from repro.core import SimulationSummary

        engine = one_shot_engine(
            SCENARIO.make_fleet(), _point_workload(), LocalSearchPointAllocator(),
            np.random.default_rng(0),
        )
        summary = SimulationSummary()
        record = engine.step(summary)
        assert record.slot == 0
        assert engine.fleet.clock == 1
        record = engine.step(summary)
        assert record.slot == 1
        assert summary.n_slots == 2

    def test_quality_of_zero_max_value(self):
        query = make_point_query(budget=0.0)
        assert quality_of(query, 0.0) == 0.0


class TestKernelPlumbing:
    def test_call_allocator_forwards_kernel(self):
        calls = {}

        class Spy:
            supports_kernel = True

            def allocate(self, queries, sensors, kernel=None):
                calls["kernel"] = kernel
                from repro.core import AllocationResult

                return AllocationResult()

        sensors = [make_snapshot(0)]
        kernel = ValuationKernel.from_sensors(sensors)
        call_allocator(Spy(), [], sensors, kernel)
        assert calls["kernel"] is kernel

    def test_call_allocator_skips_unsupporting(self):
        class Plain:
            def allocate(self, queries, sensors):
                from repro.core import AllocationResult

                return AllocationResult()

        sensors = [make_snapshot(0)]
        kernel = ValuationKernel.from_sensors(sensors)
        call_allocator(Plain(), [], sensors, kernel)  # must not raise

    def test_engine_runs_with_kernel_disabled(self):
        def run(use_kernel):
            engine = SlotEngine(
                SCENARIO.make_fleet(),
                [OneShotStream(_point_workload())],
                LocalSearchPointAllocator(),
                np.random.default_rng(4),
                use_kernel=use_kernel,
            )
            return engine.run(3)

        with_kernel = run(True)
        without = run(False)
        assert with_kernel.total_utility == pytest.approx(without.total_utility)
        assert with_kernel.satisfaction_ratio == without.satisfaction_ratio


class TestSequentialBufferedAllocation:
    def _streams(self):
        return [
            OneShotStream(
                _point_workload(8), kind="point", allocation_rank=1,
                record_slot_qualities=False, quality_label="point",
            ),
            OneShotStream(
                AggregateQueryWorkload(
                    SCENARIO.working_region, budget_factor=15.0, mean_queries=3,
                    count_spread=1, sensing_range=SCENARIO.dmax,
                ),
                kind="aggregate", allocation_rank=0,
                record_slot_qualities=False, quality_label="aggregate",
            ),
        ]

    def test_sequential_ledger_passes_invariants(self):
        engine = SlotEngine(
            SCENARIO.make_fleet(),
            self._streams(),
            SequentialBufferedAllocation(BaselineAllocator(), BaselineAllocator()),
            np.random.default_rng(6),
            verify_each_slot=True,
        )
        summary = engine.run(4)
        assert summary.n_slots == 4
        assert summary.total_queries > 0

    def test_stage1_kinds_filter(self):
        strategy = SequentialBufferedAllocation(
            BaselineAllocator(), BaselineAllocator(), stage1_kinds=("aggregate",)
        )
        streams = self._streams()
        sensors = SCENARIO.make_fleet().announcements()
        rng = np.random.default_rng(1)
        from repro.core import SimulationSummary

        summary = SimulationSummary()
        for stream in streams:
            stream.begin_slot(0, rng, summary)
        kernel = ValuationKernel.from_sensors(sensors)
        result = strategy.run(0, streams, sensors, kernel)
        result.verify()


class TestMixWrapperGuards:
    def test_custom_allocate_slot_is_refused(self):
        from repro.core import MixAllocator, MixSimulation

        class Custom(MixAllocator):
            def allocate_slot(self, *args, **kwargs):  # pragma: no cover
                raise AssertionError("never dispatched by the wrapper")

        with pytest.raises(TypeError, match="SlotEngine"):
            MixSimulation(
                SCENARIO.make_fleet(), _point_workload(5), None, None,
                Custom(), np.random.default_rng(0),
            )

    def test_duck_typed_mix_is_refused(self):
        from repro.core import MixSimulation

        class Duck:
            def allocate_slot(self, *args, **kwargs):  # pragma: no cover
                raise AssertionError

        with pytest.raises(TypeError, match="SlotEngine"):
            MixSimulation(
                SCENARIO.make_fleet(), _point_workload(5), None, None,
                Duck(), np.random.default_rng(0),
            )

    def test_subclass_without_override_is_accepted(self):
        from repro.core import GreedyAllocator, MixAllocator, MixSimulation

        class Tweaked(MixAllocator):
            def __init__(self):
                super().__init__(joint=GreedyAllocator(min_gain=1e-8))

        sim = MixSimulation(
            SCENARIO.make_fleet(),
            _point_workload(5),
            AggregateQueryWorkload(
                SCENARIO.working_region, budget_factor=15.0, mean_queries=2,
                count_spread=1, sensing_range=SCENARIO.dmax,
            ),
            LocationMonitoringWorkload(
                SCENARIO.working_region, OZONE.values, OZONE.model(),
                budget_factor=15.0, max_live=4, arrivals_per_slot=2,
                duration_range=(2, 3), dmax=SCENARIO.dmax,
            ),
            Tweaked(),
            np.random.default_rng(2),
        )
        assert sim.run(2).n_slots == 2


class TestMixEngineComposition:
    def _lm_workload(self):
        return LocationMonitoringWorkload(
            SCENARIO.working_region, OZONE.values, OZONE.model(),
            budget_factor=15.0, max_live=6, arrivals_per_slot=2,
            duration_range=(2, 4), dmax=SCENARIO.dmax,
        )

    def test_joint_mix_runs_and_accounts_per_type(self):
        engine = mix_engine(
            SCENARIO.make_fleet(),
            _point_workload(8),
            AggregateQueryWorkload(
                SCENARIO.working_region, budget_factor=15.0, mean_queries=3,
                count_spread=1, sensing_range=SCENARIO.dmax,
            ),
            self._lm_workload(),
            np.random.default_rng(3),
        )
        summary = engine.run(4)
        assert summary.n_slots == 4
        assert "location_monitoring" in summary.quality_stats
        assert all("lm_samples" in r.extras for r in summary.slots)
        # only the point stream counts towards issued
        assert all(r.issued <= 8 for r in summary.slots)

    def test_monitoring_settles_before_one_shots(self):
        engine = mix_engine(
            SCENARIO.make_fleet(),
            _point_workload(8),
            AggregateQueryWorkload(
                SCENARIO.working_region, budget_factor=15.0, mean_queries=3,
                count_spread=1, sensing_range=SCENARIO.dmax,
            ),
            self._lm_workload(),
            np.random.default_rng(3),
        )
        order = [s.settle_rank for s in sorted(engine.streams, key=lambda s: s.settle_rank)]
        assert order == sorted(order)
        assert engine.stream("location_monitoring").settle_rank < 0


class TestLocationMonitoringStream:
    def test_flush_retires_everything(self):
        stream = LocationMonitoringStream(
            LocationMonitoringWorkload(
                SCENARIO.working_region, OZONE.values, OZONE.model(),
                budget_factor=15.0, max_live=5, arrivals_per_slot=2,
                duration_range=(2, 3), dmax=SCENARIO.dmax,
            )
        )
        engine = SlotEngine(
            SCENARIO.make_fleet(), [stream], LocalSearchPointAllocator(),
            np.random.default_rng(8),
        )
        summary = engine.run(4)
        assert stream.live == []
        assert summary.total_queries > 0


class TestScenarioSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", dataset="mars")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", allocator="quantum")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", allocation="psychic")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", streams=())
        with pytest.raises(ValueError):
            StreamSpec(kind="telepathy")

    def test_point_only_allocator_rejects_aggregate_stream(self):
        with pytest.raises(ValueError, match="point queries only"):
            ScenarioSpec(
                name="x", allocator="optimal",
                streams=(StreamSpec("aggregate"),),
            )
        # monitoring streams emit derived point queries — allowed
        ScenarioSpec(
            name="x", allocator="optimal",
            streams=(StreamSpec("location_monitoring"),),
        )

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict({"name": "x", "wat": 1})
        with pytest.raises(ValueError):
            StreamSpec.from_dict({"kind": "point", "wat": 1})

    def test_round_trip(self):
        spec = ScenarioSpec.example()
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec

    def test_json_round_trip(self, tmp_path):
        import json

        spec = ScenarioSpec.example()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_json(path) == spec

    def test_region_monitoring_requires_intel(self):
        spec = ScenarioSpec(
            name="bad", dataset="rwm",
            streams=(StreamSpec("region_monitoring"),),
        )
        with pytest.raises(ValueError, match="intel"):
            spec.build()

    def test_point_spec_matches_one_shot_engine(self):
        spec = ScenarioSpec(
            name="points", dataset="rwm", seed=55, n_sensors=40, n_slots=4,
            workload_seed=99, allocator="local_search",
            streams=(StreamSpec("point", params={"n_queries": 15, "budget": 15.0}),),
        )
        got = spec.run()
        want = one_shot_engine(
            SCENARIO.make_fleet(),
            _point_workload(15),
            LocalSearchPointAllocator(),
            np.random.default_rng(99),
        ).run(4)
        assert got.total_utility == pytest.approx(want.total_utility)
        assert got.satisfaction_ratio == want.satisfaction_ratio

    def test_intel_region_spec_runs(self):
        spec = ScenarioSpec(
            name="regions", dataset="intel", seed=41, n_sensors=12, n_slots=3,
            allocator="optimal",
            streams=(
                StreamSpec(
                    "region_monitoring",
                    params={"duration_range": [2, 3], "budget_factor": 10.0},
                    controller={"use_shared_sensors": False, "paper_weighting": False},
                ),
            ),
        )
        summary = spec.run()
        assert summary.n_slots == 3

    def test_sequential_mixed_spec_runs(self):
        spec = ScenarioSpec(
            name="seq-mix", dataset="rwm", seed=55, n_sensors=40, n_slots=3,
            allocator="baseline", allocation="sequential",
            streams=(
                StreamSpec("aggregate", params={"mean_queries": 3, "count_spread": 1}),
                StreamSpec("point", params={"n_queries": 10}),
                StreamSpec(
                    "location_monitoring",
                    params={"max_live": 5, "arrivals_per_slot": 2,
                            "duration_range": [2, 3]},
                    controller={"opportunistic": False, "scheduled_only": True},
                ),
            ),
        )
        summary = spec.run()
        assert summary.n_slots == 3
