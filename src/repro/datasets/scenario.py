"""Scenarios: reproducible worlds, and the declarative spec layer.

The paper compares algorithms on *identical* inputs — same mobility, same
sensor attributes, same query stream.  A :class:`Scenario` freezes the
mobility into a replayable trace and pins the fleet seed, so
:meth:`Scenario.make_fleet` hands every algorithm an indistinguishable
fresh copy of the world.

:class:`ScenarioSpec` sits on top: a JSON-serializable declaration of an
arbitrary experiment — which dataset/world, which query streams (any mix
of point, aggregate, location-monitoring and region-monitoring workloads),
which allocator and slot-allocation strategy — that compiles to a
:class:`~repro.core.engine.SlotEngine`.  The paper's four fixed figure
families become four entries in this space; the CLI (``repro scenario``)
runs any of them from a file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any

import numpy as np

from ..mobility import MobilityTrace, TraceMobility
from ..sensors import (
    BetaTrust,
    FleetConfig,
    FullTrust,
    SensorFleet,
    TieredTrust,
    UniformTrust,
)
from ..spatial import Region

__all__ = ["Scenario", "StreamSpec", "ScenarioSpec"]


@dataclass(frozen=True)
class Scenario:
    """A frozen world: trace + working region + fleet parameters.

    Attributes:
        name: dataset label ("RWM", "RNC", "INTEL").
        trace: the recorded per-slot sensor positions.
        working_region: the aggregator's hotspot.
        fleet_config: population-level sensor parameters (Section 4.1).
        fleet_seed: seed for per-sensor attribute draws — fixed, so every
            :meth:`make_fleet` call yields identical sensors.
        dmax: the eq. 4 distance cutoff used by this dataset's experiments
            (paper: 5 for RWM, 10 for RNC).
    """

    name: str
    trace: MobilityTrace
    working_region: Region
    fleet_config: FleetConfig
    fleet_seed: int
    dmax: float

    @property
    def n_slots(self) -> int:
        return self.trace.n_slots

    @property
    def n_sensors(self) -> int:
        return self.trace.n_sensors

    def make_fleet(self) -> SensorFleet:
        """A fresh fleet replaying the trace from slot 0."""
        rng = np.random.default_rng(self.fleet_seed)
        return SensorFleet(
            TraceMobility(self.trace), self.working_region, self.fleet_config, rng
        )

    def with_config(self, fleet_config: FleetConfig) -> "Scenario":
        """Same world, different sensor economics (Figure 6 variations)."""
        return replace(self, fleet_config=fleet_config)


# ----------------------------------------------------------------------
# declarative scenario specs
# ----------------------------------------------------------------------
#: stream kind -> allocation rank reproducing Algorithm 5's input order
#: (aggregates, then points, then monitoring-derived children).
_STREAM_RANKS = {
    "aggregate": 0,
    "point": 1,
    "location_monitoring": 2,
    "region_monitoring": 3,
    "event": 4,
}

_ALLOCATORS = ("optimal", "local_search", "randomized_local_search", "greedy", "baseline")

#: JSON-declarable trust models for the ``fleet.trust_model`` override.
_TRUST_MODELS = {
    "full": FullTrust,
    "uniform": UniformTrust,
    "beta": BetaTrust,
    "tiered": TieredTrust,
}


def _trust_model_from_payload(payload):
    """Build a trust model from its JSON form: a kind string, or a dict
    ``{"kind": ..., **params}`` (list params become tuples)."""
    if isinstance(payload, str):
        payload = {"kind": payload}
    payload = dict(payload)
    kind = payload.pop("kind", None)
    if kind not in _TRUST_MODELS:
        raise ValueError(
            f"unknown trust model {kind!r}; choose from {sorted(_TRUST_MODELS)}"
        )
    for key, value in payload.items():
        if isinstance(value, list):
            payload[key] = tuple(value)
    return _TRUST_MODELS[kind](**payload)


@dataclass(frozen=True)
class StreamSpec:
    """One query stream of a scenario.

    Attributes:
        kind: ``point`` | ``aggregate`` | ``location_monitoring`` |
            ``region_monitoring`` | ``event``.
        params: workload constructor overrides (e.g. ``n_queries``,
            ``budget``, ``budget_factor``, ``arrivals_per_slot``); the
            world's region and ``dmax`` are filled in automatically.
        controller: monitoring-controller overrides (e.g. ``alpha``,
            ``opportunistic``, ``scheduled_only``, ``use_shared_sensors``,
            ``paper_weighting``); ignored for one-shot kinds.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)
    controller: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _STREAM_RANKS:
            raise ValueError(
                f"unknown stream kind {self.kind!r}; choose from "
                f"{sorted(_STREAM_RANKS)}"
            )

    @classmethod
    def from_dict(cls, payload: dict[str, Any] | str) -> "StreamSpec":
        if isinstance(payload, str):
            return cls(kind=payload)
        extra = set(payload) - {"kind", "params", "controller"}
        if extra:
            raise ValueError(f"unknown StreamSpec fields: {sorted(extra)}")
        return cls(
            kind=payload["kind"],
            params=dict(payload.get("params", {})),
            controller=dict(payload.get("controller", {})),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind}
        if self.params:
            out["params"] = dict(self.params)
        if self.controller:
            out["controller"] = dict(self.controller)
        return out


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarable experiment: world + streams + allocation.

    Compiles to a :class:`~repro.core.engine.SlotEngine` via :meth:`build`;
    :meth:`run` builds and runs it.  Everything is JSON round-trippable
    (:meth:`from_json` / :meth:`to_dict`), which is what the
    ``repro scenario`` CLI consumes.

    Attributes:
        name: free-form label.
        dataset: ``rwm`` | ``rnc`` | ``intel`` (region-monitoring streams
            need ``intel`` — the only world with a learned GP field).
        seed: world seed (trace + fleet attributes).
        workload_seed: seed of the shared workload rng (defaults to
            ``seed + 17`` at build time when left ``None``).
        n_sensors / n_slots / rnc_presence: world sizing.
        allocator: ``optimal`` | ``local_search`` |
            ``randomized_local_search`` | ``greedy`` | ``baseline``.
        allocation: ``joint`` (one allocator call over every emitted query)
            or ``sequential`` (the Section 4.7 buffered baseline).
        streams: the query streams; order fixes workload rng consumption.
        fleet: :class:`~repro.sensors.FleetConfig` overrides (JSON-able
            fields only, e.g. ``lifetime``, ``linear_energy``; a
            ``trust_model`` entry declares one of the
            :mod:`repro.sensors.trust` models, e.g.
            ``{"kind": "tiered", "levels": [...], "weights": [...]}``).
        sharding: spatial sharding of the slot kernel — ``None`` dense,
            ``true``/``"auto"`` the density-heuristic cell size, a number
            the shard cell side (see
            :class:`~repro.core.sharding.ShardedKernel`; allocations are
            bit-identical either way).
        fused: fused gain-block pipeline override — ``None`` leaves the
            allocators at their own default (``"auto"``), ``true``/
            ``"auto"`` forces type-blocked fused refreshes, ``false``
            forces the per-row batch path (see
            :func:`~repro.core.greedy.normalize_fused`; allocations are
            bit-identical either way).
        incremental: differential slot state — ``None``/``false`` rebuilds
            announcement batches, kernels and rasters from scratch every
            slot (the historical behavior); ``true``/``"auto"`` patches
            them from the per-slot :class:`~repro.sensors.SlotDelta`
            instead (see :func:`~repro.core.engine.normalize_incremental`;
            allocations and payments are bit-identical either way).
        backend: array backend for the slot loop — ``None``/``"numpy"``
            the shared default numpy backend, ``"instrumented"``
            the allocation-metering numpy backend (fills
            :attr:`~repro.core.engine.SlotEngine.last_allocs`),
            ``"cupy"``/``"jax"`` the optional GPU backends when their
            packages are importable (see :mod:`repro.backend`;
            numpy-family backends are bit-identical).
        workspace: preallocated slot workspaces — ``None`` leaves the
            allocators at their own default (``"auto"``, workspaces on),
            ``true``/``"auto"`` reuses per-slot scratch arenas across
            warm greedy rounds, ``false`` allocates scratch fresh every
            round (see :class:`~repro.backend.SlotWorkspace`; allocations
            and payments are bit-identical either way).
        mobility: optional mobility override for the world.  ``None``
            keeps the dataset's native trace;
            ``{"kind": "churn", "fraction": 0.01}`` replaces it with a
            :class:`~repro.mobility.ChurnMobility` recording — a
            near-stationary fleet where that fraction of sensors relocates
            per slot — recorded into a replayable
            :class:`~repro.mobility.MobilityTrace` (seeded from the world
            seed, so it is as reproducible as the native trace).
        service: optional streaming-service block consumed by
            ``repro serve`` / ``repro loadgen``
            (:class:`~repro.service.ServiceConfig`): ticker pacing
            (``tick_interval``), admission control (``max_queue_depth``,
            ``max_admitted_per_tick``) and an optional open-loop
            ``arrivals`` profile (``{"profile": "poisson"|"bursty",
            "rate": ..., "seed": ...}``).  Ignored by batch runs — the
            declared streams double as the service's arrival templates.
    """

    name: str
    dataset: str = "rwm"
    seed: int = 2013
    workload_seed: int | None = None
    n_sensors: int = 100
    n_slots: int = 10
    rnc_presence: float = 30.0
    allocator: str = "greedy"
    allocation: str = "joint"
    streams: tuple[StreamSpec, ...] = (StreamSpec("point"),)
    fleet: dict[str, Any] = field(default_factory=dict)
    sharding: float | bool | str | None = None
    fused: bool | str | None = None
    incremental: bool | str | None = None
    backend: str | None = None
    workspace: bool | str | None = None
    mobility: dict[str, Any] | None = None
    service: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.dataset not in ("rwm", "rnc", "intel"):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if self.allocator not in _ALLOCATORS:
            raise ValueError(
                f"unknown allocator {self.allocator!r}; choose from {_ALLOCATORS}"
            )
        if self.allocation not in ("joint", "sequential"):
            raise ValueError(f"unknown allocation {self.allocation!r}")
        if not self.streams:
            raise ValueError("a scenario needs at least one stream")
        if self.n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        from ..backend import normalize_backend, normalize_workspace
        from ..core.engine import normalize_incremental
        from ..core.greedy import normalize_fused
        from ..core.sharding import normalize_sharding

        normalize_sharding(self.sharding)  # validation only; raises on junk
        if self.fused is not None:
            normalize_fused(self.fused)  # validation only; raises on junk
        if self.incremental is not None:
            normalize_incremental(self.incremental)  # validation only
        if self.backend is not None:
            normalize_backend(self.backend)  # validation only; raises on junk
        if self.workspace is not None:
            normalize_workspace(self.workspace)  # validation only
        if self.mobility is not None:
            kind = self.mobility.get("kind")
            if kind != "churn":
                raise ValueError(f"unknown mobility override kind {kind!r}")
            fraction = self.mobility.get("fraction", 0.01)
            if not 0.0 <= float(fraction) <= 1.0:
                raise ValueError(f"churn fraction must be in [0, 1], got {fraction}")
            extra = set(self.mobility) - {"kind", "fraction"}
            if extra:
                raise ValueError(f"unknown mobility fields: {sorted(extra)}")
        if self.service is not None:
            from ..service.marketplace import ServiceConfig

            ServiceConfig.from_payload(self.service)  # validation only
        # Cross-field: the BILP/local-search allocators schedule single-sensor
        # point queries only (monitoring streams qualify — they emit derived
        # point queries; event streams emit EventSlotQuery sets); reject
        # incompatible combinations at declaration time instead of deep
        # inside the first slot.
        point_only = ("optimal", "local_search", "randomized_local_search")
        if self.allocator in point_only and any(
            s.kind in ("aggregate", "event") for s in self.streams
        ):
            raise ValueError(
                f"allocator {self.allocator!r} handles point queries only; "
                f"aggregate/event streams need 'greedy' or 'baseline'"
            )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ScenarioSpec":
        payload = dict(payload)
        streams = tuple(
            StreamSpec.from_dict(s) for s in payload.pop("streams", [{"kind": "point"}])
        )
        known = {
            "name", "dataset", "seed", "workload_seed", "n_sensors", "n_slots",
            "rnc_presence", "allocator", "allocation", "fleet", "sharding",
            "fused", "incremental", "backend", "workspace", "mobility", "service",
        }
        extra = set(payload) - known
        if extra:
            raise ValueError(f"unknown ScenarioSpec fields: {sorted(extra)}")
        return cls(streams=streams, **payload)

    @classmethod
    def from_json(cls, path: str | Path) -> "ScenarioSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "dataset": self.dataset,
            "seed": self.seed,
            "n_sensors": self.n_sensors,
            "n_slots": self.n_slots,
            "allocator": self.allocator,
            "allocation": self.allocation,
            "streams": [s.to_dict() for s in self.streams],
        }
        if self.workload_seed is not None:
            out["workload_seed"] = self.workload_seed
        if self.dataset == "rnc":
            out["rnc_presence"] = self.rnc_presence
        if self.fleet:
            out["fleet"] = dict(self.fleet)
        if self.sharding is not None:
            out["sharding"] = self.sharding
        if self.fused is not None:
            out["fused"] = self.fused
        if self.incremental is not None:
            out["incremental"] = self.incremental
        if self.backend is not None:
            out["backend"] = self.backend
        if self.workspace is not None:
            out["workspace"] = self.workspace
        if self.mobility is not None:
            out["mobility"] = dict(self.mobility)
        if self.service is not None:
            out["service"] = dict(self.service)
        return out

    @classmethod
    def example(cls) -> "ScenarioSpec":
        """A ready-to-run mixed-workload demo (also shown by the CLI)."""
        return cls(
            name="mixed-city-demo",
            dataset="rwm",
            seed=2013,
            n_sensors=80,
            n_slots=8,
            allocator="greedy",
            streams=(
                StreamSpec("point", params={"n_queries": 40, "budget": 15.0}),
                StreamSpec("aggregate", params={"mean_queries": 5, "count_spread": 2}),
                StreamSpec(
                    "location_monitoring",
                    params={"max_live": 10, "arrivals_per_slot": 3},
                ),
            ),
        )

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def build(self):
        """Compile the spec into a ready-to-run ``SlotEngine``."""
        from ..core import engine as _engine
        from ..core.baselines import BaselineAllocator
        from ..core.greedy import GreedyAllocator
        from ..core.local_search import (
            LocalSearchPointAllocator,
            RandomizedLocalSearchAllocator,
        )
        from ..core.monitoring import (
            LocationMonitoringController,
            RegionMonitoringController,
        )
        from ..core.optimal import OptimalPointAllocator
        from ..core.sampling import paper_weight_function
        from ..queries import (
            AggregateQueryWorkload,
            EventDetectionWorkload,
            LocationMonitoringWorkload,
            PointQueryWorkload,
            RegionMonitoringWorkload,
        )
        from .intel import build_intel_scenario
        from .ozone import build_ozone_dataset
        from .rnc import build_rnc_scenario
        from .rwm import build_rwm_scenario

        fleet_overrides = dict(self.fleet)
        if "trust_model" in fleet_overrides:
            fleet_overrides["trust_model"] = _trust_model_from_payload(
                fleet_overrides["trust_model"]
            )
        for key, value in fleet_overrides.items():
            if isinstance(value, list):  # JSON ranges -> tuples
                fleet_overrides[key] = tuple(value)
        fleet_config = FleetConfig(**fleet_overrides) if fleet_overrides else None
        gp = None
        if self.dataset == "rwm":
            scenario = build_rwm_scenario(
                self.seed, self.n_sensors, self.n_slots, fleet_config=fleet_config
            )
        elif self.dataset == "rnc":
            scenario = build_rnc_scenario(
                self.seed, self.n_sensors, self.rnc_presence, self.n_slots,
                fleet_config=fleet_config,
            )
        else:
            world = build_intel_scenario(
                self.seed, self.n_sensors, self.n_slots, fleet_config=fleet_config
            )
            scenario, gp = world.scenario, world.gp

        if self.mobility is not None:
            from ..mobility import ChurnMobility, MobilityTrace

            model = ChurnMobility(
                scenario.trace.region,
                self.n_sensors,
                np.random.default_rng(self.seed),
                fraction=float(self.mobility.get("fraction", 0.01)),
            )
            scenario = replace(
                scenario,
                trace=MobilityTrace.from_xy(
                    scenario.trace.region, model.run_xy(self.n_slots)
                ),
            )

        region = scenario.working_region
        ozone = None

        streams: list = []
        for spec in self.streams:
            rank = _STREAM_RANKS[spec.kind]
            if spec.kind == "point":
                workload = PointQueryWorkload(
                    region, **{"dmax": scenario.dmax, **spec.params}
                )
                streams.append(
                    _engine.OneShotStream(
                        workload, kind="point", allocation_rank=rank,
                        quality_label="point",
                    )
                )
            elif spec.kind == "aggregate":
                workload = AggregateQueryWorkload(
                    region, **{"sensing_range": scenario.dmax, **spec.params}
                )
                streams.append(
                    _engine.OneShotStream(
                        workload, kind="aggregate", allocation_rank=rank,
                        quality_label="aggregate",
                    )
                )
            elif spec.kind == "location_monitoring":
                if ozone is None:
                    ozone = build_ozone_dataset(self.seed, n_slots=max(50, self.n_slots))
                workload = LocationMonitoringWorkload(
                    region, ozone.values, ozone.model(),
                    **{"dmax": scenario.dmax, **spec.params},
                )
                options = dict(spec.controller)
                controller = LocationMonitoringController(**options)
                streams.append(
                    _engine.LocationMonitoringStream(
                        workload, controller=controller, allocation_rank=rank
                    )
                )
            elif spec.kind == "event":
                workload = EventDetectionWorkload(
                    region,
                    **{"threshold": 50.0, "dmax": scenario.dmax, **spec.params},
                )
                streams.append(
                    _engine.EventDetectionStream(workload, allocation_rank=rank)
                )
            else:  # region_monitoring
                if gp is None:
                    raise ValueError(
                        "region_monitoring streams need the 'intel' dataset "
                        "(the only world with a learned GP field)"
                    )
                workload = RegionMonitoringWorkload(
                    region, gp, **{"sensing_radius": scenario.dmax, **spec.params}
                )
                options = dict(spec.controller)
                if not options.pop("paper_weighting", True):
                    options["weight_fn"] = lambda k: 1.0
                else:
                    options.setdefault("weight_fn", paper_weight_function)
                controller = RegionMonitoringController(**options)
                streams.append(
                    _engine.RegionMonitoringStream(
                        workload, controller=controller, allocation_rank=rank
                    )
                )

        factories = {
            "optimal": OptimalPointAllocator,
            "local_search": LocalSearchPointAllocator,
            "randomized_local_search": RandomizedLocalSearchAllocator,
            "greedy": GreedyAllocator,
            "baseline": BaselineAllocator,
        }
        if self.allocation == "sequential":
            allocation = _engine.SequentialBufferedAllocation(
                factories[self.allocator](), factories[self.allocator]()
            )
        else:
            allocation = _engine.JointSlotAllocation(factories[self.allocator]())

        workload_seed = (
            self.workload_seed if self.workload_seed is not None else self.seed + 17
        )
        return _engine.SlotEngine(
            scenario.make_fleet(),
            streams,
            allocation,
            np.random.default_rng(workload_seed),
            verify_each_slot=len(streams) > 1,
            sharding=self.sharding,
            fused=self.fused,
            incremental=self.incremental,
            backend=self.backend,
            workspace=self.workspace,
        )

    def run(self, n_slots: int | None = None):
        """Build the engine and run it (default: the spec's ``n_slots``)."""
        return self.build().run(n_slots if n_slots is not None else self.n_slots)
