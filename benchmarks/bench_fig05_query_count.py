"""Figure 5: utility and satisfaction vs the number of point queries.

The paper's finding: more queries mean more sharing opportunities — utility
grows with query count and satisfaction creeps up, while the baseline
scales far less favourably.

The sweep decomposes into independent (query count x algorithm) cells; set
``REPRO_SWEEP_WORKERS=<n>`` to fan them out over a process pool (the
results are bit-identical to the serial sweep — see
``tests/test_runner_parallel.py`` — so the only difference is wall-clock
on multi-core hosts).
"""

from __future__ import annotations

import os

from conftest import run_once
from repro.experiments import fig5, format_figure


def _sweep_workers() -> int | None:
    value = os.environ.get("REPRO_SWEEP_WORKERS", "")
    return int(value) if value else None


def test_fig5_query_count_sweep(benchmark, scale):
    result = run_once(benchmark, fig5, scale, max_workers=_sweep_workers())
    print()
    print(format_figure(result))

    optimal = result.metric("Optimal", "avg_utility")
    baseline = result.metric("Baseline", "avg_utility")
    assert optimal == sorted(optimal)  # monotone in query count
    assert result.dominates("Optimal", "Baseline", "avg_utility", slack=1e-9)
    # Sharing advantage: Optimal's absolute lead grows with the load.
    leads = [o - b for o, b in zip(optimal, baseline)]
    assert leads[-1] >= leads[0]
