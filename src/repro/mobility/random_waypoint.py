"""The paper's random-waypoint variant (RWM dataset, Section 4.2).

The paper's RWM is a simplification of Johnson & Maltz's random waypoint
model [6]: at each slot every sensor moves from its current location "with a
speed randomly selected between zero and a sensor-specific maximum speed.
The direction of the movement is either up, down, left, or right, and is
randomly selected."  Movement is limited to the rectangular region (80x80
grids by default); maximum speeds are drawn uniformly from {4, 5} at
initialization, and sensors start spread uniformly over the region.

We also provide the classic waypoint-target variant
(:class:`WaypointMobility`) because the RNC-substitute generator builds on
it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..spatial import Location, Region
from .base import MobilityModel

__all__ = ["RandomWaypointMobility", "WaypointMobility"]

_DIRECTIONS = np.asarray([(0.0, 1.0), (0.0, -1.0), (-1.0, 0.0), (1.0, 0.0)])


class RandomWaypointMobility(MobilityModel):
    """Axis-aligned random walk with per-sensor maximum speed.

    Args:
        region: the full movement rectangle (sensors are clamped inside it).
        n_sensors: population size (paper default 200 for RWM experiments).
        rng: numpy random generator; all randomness flows through it.
        max_speed_choices: per-sensor max speed is drawn uniformly from
            these (paper: ``(4, 5)``).
    """

    def __init__(
        self,
        region: Region,
        n_sensors: int,
        rng: np.random.Generator,
        max_speed_choices: Sequence[float] = (4.0, 5.0),
    ) -> None:
        if n_sensors <= 0:
            raise ValueError("n_sensors must be positive")
        if not max_speed_choices:
            raise ValueError("max_speed_choices must be non-empty")
        self._region = region
        self._rng = rng
        self._max_speeds = rng.choice(np.asarray(max_speed_choices, dtype=float), size=n_sensors)
        xs = rng.uniform(region.x_min, region.x_max, size=n_sensors)
        ys = rng.uniform(region.y_min, region.y_max, size=n_sensors)
        self._positions = np.column_stack([xs, ys])

    @property
    def n_sensors(self) -> int:
        return len(self._positions)

    @property
    def region(self) -> Region:
        return self._region

    @property
    def max_speeds(self) -> np.ndarray:
        """Per-sensor maximum speeds (read-only view)."""
        return self._max_speeds.copy()

    def locations(self) -> list[Location]:
        return [Location(float(x), float(y)) for x, y in self._positions]

    def locations_xy(self) -> np.ndarray:
        # The stacked positions themselves; advance() rebinds rather than
        # mutates, so a previously returned array stays frame-stable.
        return self._positions

    def advance(self) -> None:
        n = self.n_sensors
        speeds = self._rng.uniform(0.0, self._max_speeds)
        directions = _DIRECTIONS[self._rng.integers(0, 4, size=n)]
        self._positions = self._positions + directions * speeds[:, None]
        np.clip(
            self._positions[:, 0],
            self._region.x_min,
            self._region.x_max,
            out=self._positions[:, 0],
        )
        np.clip(
            self._positions[:, 1],
            self._region.y_min,
            self._region.y_max,
            out=self._positions[:, 1],
        )


class WaypointMobility(MobilityModel):
    """Classic random waypoint: pick a target, travel to it, pause, repeat.

    Used as the trip engine of the Nokia-campaign substitute
    (:mod:`repro.mobility.nokia`), where targets are drawn from per-sensor
    anchor points instead of uniformly.
    """

    def __init__(
        self,
        region: Region,
        n_sensors: int,
        rng: np.random.Generator,
        min_speed: float = 1.0,
        max_speed: float = 5.0,
        max_pause: int = 3,
    ) -> None:
        if n_sensors <= 0:
            raise ValueError("n_sensors must be positive")
        if not (0 < min_speed <= max_speed):
            raise ValueError("need 0 < min_speed <= max_speed")
        if max_pause < 0:
            raise ValueError("max_pause must be non-negative")
        self._region = region
        self._rng = rng
        self._min_speed = min_speed
        self._max_speed = max_speed
        self._max_pause = max_pause
        xs = rng.uniform(region.x_min, region.x_max, size=n_sensors)
        ys = rng.uniform(region.y_min, region.y_max, size=n_sensors)
        self._positions = np.column_stack([xs, ys])
        self._targets = self._positions.copy()
        self._speeds = np.zeros(n_sensors)
        self._pauses = np.zeros(n_sensors, dtype=int)
        for i in range(n_sensors):
            self._assign_trip(i)

    @property
    def n_sensors(self) -> int:
        return len(self._positions)

    @property
    def region(self) -> Region:
        return self._region

    def locations(self) -> list[Location]:
        return [Location(float(x), float(y)) for x, y in self._positions]

    def locations_xy(self) -> np.ndarray:
        # Read-only view of the live position buffer (advance() mutates it
        # in place) — consumers must copy before storing, as documented on
        # MobilityModel.locations_xy.
        return self._positions

    def sample_target(self, index: int) -> Location:
        """Next trip destination for sensor ``index``; uniform by default.

        Subclasses override this to bias destinations (e.g. towards home
        and work anchors in the Nokia substitute).
        """
        return self._region.sample_location(self._rng)

    def advance(self) -> None:
        for i in range(self.n_sensors):
            if self._pauses[i] > 0:
                self._pauses[i] -= 1
                if self._pauses[i] == 0:
                    self._assign_trip(i)
                continue
            pos = self._positions[i]
            target = self._targets[i]
            delta = target - pos
            dist = float(np.hypot(delta[0], delta[1]))
            step = self._speeds[i]
            if dist <= step:
                self._positions[i] = target
                self._pauses[i] = int(self._rng.integers(0, self._max_pause + 1))
                if self._pauses[i] == 0:
                    self._assign_trip(i)
            else:
                self._positions[i] = pos + delta / dist * step

    def _assign_trip(self, index: int) -> None:
        target = self.sample_target(index)
        self._targets[index] = (target.x, target.y)
        self._speeds[index] = self._rng.uniform(self._min_speed, self._max_speed)
