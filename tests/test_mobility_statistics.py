"""Tests for trace statistics (substitute validation tooling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import (
    ChurnMobility,
    ChurnStatistics,
    MobilityTrace,
    NokiaCampaignSynthesizer,
    StationaryMobility,
    compute_churn,
    compute_statistics,
)
from repro.spatial import Location, Region

REGION = Region.from_origin(10, 10)
WORK = Region(0, 0, 5, 10)  # left half


def trace_from(rows):
    frames = [[Location(float(x), 5.0) for x in row] for row in rows]
    return MobilityTrace.from_frames(REGION, frames)


class TestComputeStatistics:
    def test_presence(self):
        # Sensor 0 always inside, sensor 1 never, sensor 2 alternates.
        trace = trace_from([[1, 8, 1], [1, 8, 8], [1, 8, 1]])
        stats = compute_statistics(trace, WORK)
        assert stats.mean_presence == pytest.approx((2 + 1 + 2) / 3)
        assert stats.min_presence == 1
        assert stats.max_presence == 2

    def test_churn(self):
        trace = trace_from([[1, 8, 1], [1, 8, 8], [1, 8, 1]])
        stats = compute_statistics(trace, WORK)
        # Sensor 2 exits between slot 0->1 and re-enters between 1->2.
        assert stats.mean_exits_per_slot == pytest.approx(0.5)
        assert stats.mean_entries_per_slot == pytest.approx(0.5)

    def test_dwell(self):
        trace = trace_from([[1, 8, 1], [1, 8, 8], [1, 8, 1]])
        stats = compute_statistics(trace, WORK)
        # Dwell runs: sensor0 -> 3; sensor2 -> 1 and 1.
        assert stats.mean_dwell == pytest.approx((3 + 1 + 1) / 3)

    def test_steps(self):
        trace = trace_from([[0, 0, 0], [3, 0, 4]])
        stats = compute_statistics(trace, WORK)
        assert stats.median_step == pytest.approx(3.0)
        assert stats.p90_step >= 3.0

    def test_single_slot_trace(self):
        trace = trace_from([[1, 8]])
        stats = compute_statistics(trace, WORK)
        assert stats.mean_entries_per_slot == 0.0
        assert stats.median_step == 0.0
        assert stats.mean_dwell == pytest.approx(1.0)

    def test_format_mentions_key_numbers(self):
        trace = trace_from([[1, 8, 1], [1, 8, 8]])
        text = compute_statistics(trace, WORK).format()
        assert "presence" in text and "churn" in text and "dwell" in text


class TestSubstituteValidation:
    def test_rnc_substitute_statistics_sane(self):
        """The substitute must show presence near target AND nonzero churn
        (sensors moving in and out of the hotspot — the availability
        obstacle the paper's algorithms are designed around)."""
        model = NokiaCampaignSynthesizer.calibrated(
            np.random.default_rng(3),
            n_sensors=200,
            target_presence=40.0,
            pilot_slots=30,
        )
        trace = model.synthesize(30, warmup=15)
        stats = compute_statistics(trace, model.working_region)
        assert 0.5 * 40 <= stats.mean_presence <= 1.6 * 40
        assert stats.mean_entries_per_slot > 0.0
        assert stats.mean_exits_per_slot > 0.0
        assert stats.mean_dwell >= 1.0


class TestComputeChurn:
    def test_exact_fractions_from_hand_built_trace(self):
        # Slot 0->1: sensor 2 moves 8 -> 8.4 (same unit cell, no crossing).
        # Slot 1->2: sensors 0 and 2 move; sensor 0 crosses 1 -> 3.
        trace = trace_from([[1, 8, 8], [1, 8, 8.4], [3, 8, 8.6]])
        stats = compute_churn(trace, cell_size=1.0)
        assert isinstance(stats, ChurnStatistics)
        assert stats.n_slots == 3
        np.testing.assert_allclose(stats.moved_fraction, [0.0, 1 / 3, 2 / 3])
        np.testing.assert_allclose(stats.crossing_rate, [0.0, 0.0, 1 / 3])
        assert stats.mean_moved_fraction == pytest.approx((1 / 3 + 2 / 3) / 2)
        assert stats.mean_crossing_rate == pytest.approx(1 / 6)
        assert "churn over 3 slots" in stats.format()

    def test_crossing_never_exceeds_moved(self):
        rng = np.random.default_rng(0)
        model = ChurnMobility(REGION, 200, rng, fraction=0.1)
        stats = compute_churn(model, n_slots=12, cell_size=2.0)
        assert np.all(stats.crossing_rate <= stats.moved_fraction + 1e-12)
        # ~10% of sensors relocate per warm slot.
        assert stats.mean_moved_fraction == pytest.approx(0.1, abs=0.02)

    def test_stationary_model_has_zero_churn(self):
        positions = [Location(float(1 + i % 8), float(1 + i // 8)) for i in range(16)]
        stats = compute_churn(
            StationaryMobility(REGION, positions), n_slots=5, cell_size=1.0
        )
        assert stats.mean_moved_fraction == 0.0
        assert stats.mean_crossing_rate == 0.0

    def test_trace_slot_clamp_and_validation(self):
        trace = trace_from([[1, 2], [1, 2], [2, 3]])
        stats = compute_churn(trace, n_slots=2, cell_size=1.0)
        assert stats.n_slots == 2
        with pytest.raises(ValueError):
            compute_churn(trace, n_slots=9, cell_size=1.0)
        with pytest.raises(ValueError):
            compute_churn(trace, cell_size=0.0)
        model = ChurnMobility(REGION, 4, np.random.default_rng(1))
        with pytest.raises(ValueError):
            compute_churn(model)  # live models need an explicit n_slots

    def test_churn_mobility_validation(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            ChurnMobility(REGION, 0, rng)
        with pytest.raises(ValueError):
            ChurnMobility(REGION, 5, rng, fraction=1.5)
