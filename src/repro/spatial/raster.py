"""The shared world coverage raster: one slot's geometry caches.

A slot with many region queries repeats three kinds of geometric work
against the *same* announced coordinates:

* **coverage rasterization** — every aggregate/trajectory query builds an
  ``(n_relevant, n_cells)`` mask matrix (``CoverageFunction.masks_for``)
  even though a sensor's covered cells are a tiny disk of the region;
* **region containment** — monitoring controllers and relevance prefilters
  evaluate ``Region.contains_many`` / ``Region.exterior_distance_sq`` per
  consumer per call, although a (region, announcement-set) pair can only
  ever produce one answer per slot;
* and every consumer re-derives these independently, so nothing is shared
  between the dense kernel, a sharded kernel's candidate views, and the
  monitoring controllers.

:class:`WorldRaster` is the one slot-level home for all of it.  It is keyed
by the announced ``(n, 2)`` coordinate block (the same array object the
kernel, the announcement batch and the controllers already share) and
caches

* :meth:`coverage_rows` — per-sensor covered-cell rows in CSR form
  (``indptr``/``cells``), the structure the fused aggregate gain blocks
  (:class:`repro.queries.aggregate._CoverageBlock`) index into;
* :meth:`exterior_distance_sq` / :meth:`contains_mask` — per-region
  containment passes, shared by aggregate ``relevant_mask`` screening and
  ``RegionMonitoringController.region_counts``.

**Bit-identity contract.**  Every cached quantity is produced by exactly
the arithmetic of the uncached path.  Containment caches call the very
``Region`` methods consumers called before.  Coverage rows reproduce the
membership of ``masks_for_xy`` row-for-row: the grid-accelerated builder
only *pre-selects candidate cells* with a conservative index box — the
final membership test is the same ``sqrt(dx*dx + dy*dy) <= sensing_range``
on the function's own stored cell coordinates, so a cell is covered in the
CSR iff it is covered in the dense mask, down to the last ulp of a
boundary case.

**The grid fast path.**  For exact :class:`~repro.spatial.AreaCoverage` /
:class:`~repro.spatial.WeightedCoverage` instances (subclasses are *not*
trusted — they may re-rasterize arbitrarily and fall back to the dense
mask builder) the cell layout is the row-major ``Region.grid_cells`` grid,
so each sensor's candidate cells form a small index box around it: the
builder enumerates ``O(r^2 / cell^2)`` candidates per sensor instead of
testing all ``n_cells``, which is what turns a 48x48-region slot's
per-sensor work from ~2300 cells into ~120.  The layout is validated
against the function's stored ``_cells`` (count and exact first/last
centres) before it is trusted.

Lifetime: a raster lives exactly as long as its coordinate block — it is
attached to the announcement batch (or kernel) that owns the array, so all
of one slot's consumers (dense kernel, sharded kernel candidate machinery,
monitoring controllers) resolve to the same instance and every cache entry
is computed at most once per slot.
"""

from __future__ import annotations

import numpy as np

from ..backend import xp
from .coverage import AreaCoverage, CoverageFunction, WeightedCoverage, masks_for_xy
from .region import Region

__all__ = ["WorldRaster", "get_raster"]

_ATTR = "_world_raster"


def get_raster(holder, xy: np.ndarray) -> "WorldRaster":
    """The :class:`WorldRaster` shared by all consumers of ``xy``.

    ``holder`` is the object that owns the coordinate block — an
    :class:`~repro.sensors.AnnouncementBatch`, usually.  The raster is
    cached as an attribute on it so the kernel, the sharded candidate
    machinery and the monitoring controllers all resolve to one instance;
    holders that refuse attributes (plain lists) simply get a fresh raster
    per call, which is correct and merely uncached.
    """
    raster = getattr(holder, _ATTR, None)
    if raster is not None and raster.xy is xy:
        return raster
    raster = WorldRaster(xy)
    try:
        setattr(holder, _ATTR, raster)
    except (AttributeError, TypeError):
        pass
    return raster


def _grid_layout(fn: CoverageFunction):
    """``(x_min, y_min, cell, nx, ny)`` when ``fn`` is a trusted region grid.

    Exact-type gate (mirroring ``ShardedKernel._query_box``): only the
    in-repo rasterized region functions are known to lay their cells out as
    the row-major ``Region.grid_cells`` grid.  The reconstruction is then
    validated against the stored cells — count plus exact first/last centre
    coordinates (the same ``x_min + (i + 0.5) * cell`` expression
    ``grid_cells`` evaluates, so equality is exact, not approximate).
    """
    if type(fn) not in (AreaCoverage, WeightedCoverage):
        return None
    region, cell = fn.region, float(fn.cell_size)
    if not cell > 0.0:
        return None
    nx = max(1, int(round(region.width / cell)))
    ny = max(1, int(round(region.height / cell)))
    cells = fn._cells
    if len(cells) != nx * ny:
        return None
    first_x = region.x_min + (0 + 0.5) * cell
    first_y = region.y_min + (0 + 0.5) * cell
    last_x = region.x_min + (nx - 1 + 0.5) * cell
    last_y = region.y_min + (ny - 1 + 0.5) * cell
    if (
        cells[0, 0] != first_x
        or cells[0, 1] != first_y
        or cells[-1, 0] != last_x
        or cells[-1, 1] != last_y
    ):
        return None
    return region.x_min, region.y_min, cell, nx, ny


class WorldRaster:
    """Per-slot geometry caches over one announced coordinate block.

    Attributes:
        xy: the ``(n, 2)`` world coordinates every cache is keyed under —
            the same array object the kernel/batch stacked, never copied.
    """

    def __init__(self, xy: np.ndarray) -> None:
        self.xy = np.asarray(xy, dtype=float)
        # id(fn) -> (fn, cols, indptr, cells); fn is held strongly both to
        # pin the id against reuse and because the raster's lifetime is one
        # slot's announcement block.
        self._coverage_rows: dict[int, tuple] = {}
        self._exterior: dict[Region, np.ndarray] = {}
        self._contains: dict[Region, np.ndarray] = {}
        # Set by :meth:`patched`: (prev_raster, fresh_idx, carry_old,
        # carry_new, identity, aligned, new_to_old) — the splice plan that
        # lets this raster's caches fill from the previous slot's instead
        # of from scratch.  ``None`` for from-scratch rasters.
        self._patch: tuple | None = None

    # ------------------------------------------------------------------
    # differential construction
    # ------------------------------------------------------------------
    def patched(
        self, xy: np.ndarray, old_to_new: np.ndarray, fresh_cols: np.ndarray
    ) -> "WorldRaster":
        """A raster over the next slot's block, seeded from this one.

        ``old_to_new`` maps this raster's columns to columns of ``xy``
        (``-1`` = no longer announced); ``fresh_cols`` are the ``xy``
        columns whose geometry cannot be carried (new announcers plus
        movers).  Every cache fill on the returned raster first tries to
        *splice* from this raster's entries — carrying rows whose sensor
        did not move and recomputing only the fresh subset, which is
        bit-identical to a from-scratch fill because every cached quantity
        is computed row-independently (elementwise containment arithmetic;
        per-sensor candidate boxes + exact distance tests for coverage
        rows).
        """
        out = WorldRaster(xy)
        m = len(out.xy)
        fresh_mask = xp.zeros(m, dtype=xp.bool_dtype)
        fresh_mask[fresh_cols] = True
        old_cols = np.flatnonzero(old_to_new >= 0)
        new_cols = old_to_new[old_cols]
        carried = ~fresh_mask[new_cols]
        carry_old = old_cols[carried]
        carry_new = new_cols[carried]
        identity = (
            not len(fresh_cols)
            and len(carry_new) == m
            and len(self.xy) == m
            and bool((carry_new == np.arange(m)).all())
        )
        # Aligned: every carried column keeps its position (stable
        # membership, only movers/new announcers differ) — carrying a
        # cached array is then one memcpy + a fresh-subset overwrite
        # instead of a gather/scatter pair.
        aligned = len(self.xy) == m and bool(np.array_equal(carry_new, carry_old))
        new_to_old = xp.full(m, -1, dtype=xp.int64_dtype)
        new_to_old[carry_new] = carry_old
        fresh_idx = np.flatnonzero(fresh_mask)
        out._patch = (
            self, fresh_idx, carry_old, carry_new, identity, aligned, new_to_old
        )
        return out

    def _spliced_region_array(self, cache_name: str, region: Region, compute):
        """Carry + subset-recompute one per-region containment array."""
        patch = self._patch
        if patch is None:
            return None
        prev_raster, fresh_idx, carry_old, carry_new, identity, aligned, _ = patch
        prev = getattr(prev_raster, cache_name).get(region)
        if prev is None:
            return None
        if identity:
            return prev
        if aligned:
            out = prev.copy()
        else:
            out = xp.empty(len(self.xy), dtype=prev.dtype)
            out[carry_new] = prev[carry_old]
        if fresh_idx.size:
            out[fresh_idx] = compute(self.xy[fresh_idx])
        out.setflags(write=False)
        return out

    # ------------------------------------------------------------------
    # region containment caches
    # ------------------------------------------------------------------
    def exterior_distance_sq(self, region: Region) -> np.ndarray:
        """Cached ``region.exterior_distance_sq`` over the world block.

        The returned array is shared and read-only; thresholding it (e.g.
        ``<= sensing_range**2`` for the aggregate relevance prefilter)
        allocates a fresh mask, so consumers compose freely.
        """
        out = self._exterior.get(region)
        if out is None:
            out = self._spliced_region_array(
                "_exterior", region, region.exterior_distance_sq
            )
            if out is None:
                out = region.exterior_distance_sq(self.xy)
                out.setflags(write=False)
            self._exterior[region] = out
        return out

    def contains_mask(self, region: Region) -> np.ndarray:
        """Cached ``region.contains_many`` over the world block (read-only)."""
        out = self._contains.get(region)
        if out is None:
            out = self._spliced_region_array("_contains", region, region.contains_many)
            if out is None:
                out = region.contains_many(self.xy)
                out.setflags(write=False)
            self._contains[region] = out
        return out

    # ------------------------------------------------------------------
    # per-sensor covered-cell rows
    # ------------------------------------------------------------------
    def coverage_rows(
        self, fn: CoverageFunction, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR covered-cell rows of ``fn`` for the world columns ``cols``.

        Returns ``(indptr, cells)``: row ``i`` (sensor ``cols[i]``) covers
        the cell indices ``cells[indptr[i]:indptr[i+1]]`` of ``fn``'s own
        cell order — exactly the ``True`` positions of row ``i`` of
        ``masks_for_xy(fn, xy[cols])``, ascending.  Both arrays are shared
        and read-only.
        """
        cols = np.asarray(cols, dtype=np.intp)
        key = id(fn)
        entry = self._coverage_rows.get(key)
        if (
            entry is not None
            and entry[0] is fn
            and (entry[1] is cols or np.array_equal(entry[1], cols))
        ):
            return entry[2], entry[3]
        spliced = self._spliced_rows(fn, cols) if self._patch is not None else None
        if spliced is not None:
            indptr, cells = spliced
        else:
            indptr, cells = self._build_rows(fn, cols)
        indptr.setflags(write=False)
        cells.setflags(write=False)
        self._coverage_rows[key] = (fn, cols, indptr, cells)
        return indptr, cells

    def _spliced_rows(
        self, fn: CoverageFunction, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Assemble ``fn``'s CSR rows from the previous slot's entry.

        Carried rows (sensor announced both slots, did not move) are copied
        span-wise from the old CSR; the rest are rebuilt with the normal
        row builder on just that subset.  Row-for-row bit-identical to a
        full :meth:`_build_rows` because the builder's membership test is
        per-sensor independent.  Returns ``None`` (full rebuild) when the
        previous slot never rasterized ``fn`` or too few rows carry over.
        """
        prev_raster, _, _, _, _, _, new_to_old = self._patch
        entry = prev_raster._coverage_rows.get(id(fn))
        if entry is None or entry[0] is not fn:
            return None
        _, pcols, pindptr, pcells = entry
        # Row lookup by bisection over the old column list (ascending by
        # construction — flatnonzero output); guards against exotic
        # callers that cached an unsorted column order.
        if not len(pcols) or not bool((pcols[1:] > pcols[:-1]).all()):
            return None
        k = len(cols)
        old_of = new_to_old[cols]  # -1 where dropped or moved
        oc = np.maximum(old_of, 0)
        j = np.minimum(np.searchsorted(pcols, oc), len(pcols) - 1)
        ok = (old_of >= 0) & (pcols[j] == oc)
        j = np.where(ok, j, -1)
        comp = np.flatnonzero(~ok)
        if comp.size * 4 > k and comp.size > 64:
            return None
        if comp.size:
            sub_indptr, sub_cells = self._build_rows(fn, cols[comp])
        else:
            sub_indptr = xp.zeros(1, dtype=xp.int64_dtype)
            sub_cells = xp.zeros(0, dtype=xp.int64_dtype)
        lens = xp.empty(k, dtype=xp.int64_dtype)
        okidx = np.flatnonzero(ok)
        jk = j[okidx]
        lens[okidx] = pindptr[jk + 1] - pindptr[jk]
        lens[comp] = np.diff(sub_indptr)
        indptr = xp.zeros(k + 1, dtype=xp.int64_dtype)
        np.cumsum(lens, out=indptr[1:])
        cells = xp.empty(int(indptr[-1]), dtype=xp.int64_dtype)
        # Copy in maximal runs: consecutive carried rows that are also
        # consecutive in the old CSR collapse into one memcpy; computed
        # rows are contiguous in the sub-CSR by construction.
        if k:
            brk = np.ones(k, dtype=bool)
            brk[1:] = (ok[1:] != ok[:-1]) | (ok[1:] & ok[:-1] & (j[1:] != j[:-1] + 1))
            run_starts = np.flatnonzero(brk)
            run_ends = np.append(run_starts[1:], k)
            sub_cursor = 0
            for a, b in zip(run_starts, run_ends):
                dst0, dst1 = int(indptr[a]), int(indptr[b])
                if ok[a]:
                    src0 = int(pindptr[j[a]])
                    cells[dst0:dst1] = pcells[src0 : src0 + (dst1 - dst0)]
                else:
                    src0 = int(sub_indptr[sub_cursor])
                    cells[dst0:dst1] = sub_cells[src0 : src0 + (dst1 - dst0)]
                    sub_cursor += b - a
        return indptr, cells

    def _build_rows(
        self, fn: CoverageFunction, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        layout = _grid_layout(fn)
        if layout is None:
            # Dense fallback: any coverage function, any cell layout.  The
            # mask matrix is transient — only its nonzero structure is kept.
            masks = masks_for_xy(fn, self.xy[cols])
            rows, cells = np.nonzero(masks)
            counts = np.bincount(rows, minlength=len(cols))
            indptr = xp.zeros(len(cols) + 1, dtype=xp.int64_dtype)
            np.cumsum(counts, out=indptr[1:])
            return indptr, cells.astype(np.int64, copy=False)
        x_min, y_min, cell, nx, ny = layout
        r = float(fn.sensing_range)
        pts = self.xy[cols]
        sx = pts[:, 0]
        sy = pts[:, 1]
        # Conservative candidate index boxes (padded by one cell so float
        # rounding of the division can never exclude a boundary cell —
        # including the <= 1-ulp drift of factoring the shared ``u``
        # subexpression out of both bounds); the exact distance test below
        # decides true membership.  Both coordinate axes ride through each
        # vector op at once: at splice-time this path runs on handfuls of
        # fresh rows per query, where the op count is the cost.
        u = (pts - (x_min, y_min)) / cell - 0.5
        v = r / cell
        lo = np.floor(u - v).astype(np.int64) - 1
        hi = np.ceil(u + v).astype(np.int64) + 1
        bound = np.array([nx - 1, ny - 1], dtype=np.int64)
        np.minimum(lo, bound, out=lo)
        np.maximum(lo, 0, out=lo)
        np.minimum(hi, bound, out=hi)
        np.maximum(hi, 0, out=hi)
        ix_lo, iy_lo = lo[:, 0], lo[:, 1]
        box = hi - lo + 1
        box_nx, box_ny = box[:, 0], box[:, 1]
        counts = np.multiply(box_nx, box_ny)
        total = int(counts.sum())
        if total == 0:
            return xp.zeros(len(cols) + 1, dtype=xp.int64_dtype), xp.zeros(0, dtype=xp.int64_dtype)
        owner = np.repeat(np.arange(len(cols), dtype=np.int64), counts)
        prev = xp.zeros(len(cols), dtype=xp.int64_dtype)
        np.cumsum(counts[:-1], out=prev[1:])
        rank = np.arange(total, dtype=np.int64) - prev[owner]
        ix = ix_lo[owner] + rank // box_ny[owner]
        iy = iy_lo[owner] + rank % box_ny[owner]
        cell_idx = ix * ny + iy
        # Membership on the function's stored cell coordinates, with the
        # dense builder's exact arithmetic (cell - sensor, sqrt, <= r).
        cxy = fn._cells[cell_idx]
        dx = cxy[:, 0] - sx[owner]
        dy = cxy[:, 1] - sy[owner]
        keep = np.sqrt(dx * dx + dy * dy) <= r
        owner = owner[keep]
        cells = cell_idx[keep]
        counts = np.bincount(owner, minlength=len(cols))
        indptr = xp.zeros(len(cols) + 1, dtype=xp.int64_dtype)
        np.cumsum(counts, out=indptr[1:])
        return indptr, cells
