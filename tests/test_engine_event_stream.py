"""EventDetectionStream: lifecycle, settlement accounting, and the
closed-form ``gain_many`` of the derived :class:`EventSlotQuery`."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_snapshot
from repro.core import (
    EventDetectionStream,
    GreedyAllocator,
    SimulationSummary,
    event_detection_engine,
)
from repro.datasets import ScenarioSpec, StreamSpec, build_rwm_scenario
from repro.queries import (
    EventDetectionQuery,
    EventDetectionWorkload,
    EventSlotQuery,
    SensorRoster,
)
from repro.spatial import Location, Region

ULP = dict(rel=1e-12, abs=1e-12)


class TestEventSlotQueryState:
    """The closed-form running-product state vs the generic recomputation."""

    def _query(self, **kw):
        defaults = dict(
            location=Location(10, 10), budget=20.0, required_confidence=0.9,
            theta_min=0.1, dmax=8.0, parent_id="p",
        )
        defaults.update(kw)
        return EventSlotQuery(**defaults)

    @pytest.mark.parametrize("seed", range(6))
    def test_gain_matches_scratch_recomputation(self, seed):
        rng = np.random.default_rng(seed)
        query = self._query()
        sensors = [
            make_snapshot(
                i, x=float(rng.uniform(2, 18)), y=float(rng.uniform(2, 18)),
                inaccuracy=float(rng.uniform(0, 0.3)),
                trust=float(rng.uniform(0.4, 1.0)),
            )
            for i in range(15)
        ]
        state = query.new_state()
        for step, j in enumerate(rng.permutation(15)):
            for s in sensors:
                scratch = query.value(state.selected + [s]) - state.value
                assert state.gain(s) == pytest.approx(scratch, **ULP)
            state.add(sensors[j])
            if step >= 4:
                break
        # Value saturates at the budget once confidence is met.
        assert state.value <= query.budget + 1e-12

    @pytest.mark.parametrize("seed", range(6))
    def test_gain_many_matches_scalar_gain(self, seed):
        rng = np.random.default_rng(100 + seed)
        query = self._query(required_confidence=0.95, theta_min=0.05)
        sensors = [
            make_snapshot(
                i, x=float(rng.uniform(0, 20)), y=float(rng.uniform(0, 20)),
                inaccuracy=float(rng.uniform(0, 0.3)),
                trust=float(rng.uniform(0.4, 1.0)),
            )
            for i in range(20)
        ]
        roster = SensorRoster(sensors)
        state = query.new_state()
        for step in range(4):
            batch = state.batch(roster)
            got = batch.gain_many(roster.all_indices)
            want = np.array([state.gain(s) for s in sensors])
            assert got == pytest.approx(want, **ULP)
            state.add(sensors[step])

    def test_running_product_saturates(self):
        query = self._query(required_confidence=0.5, theta_min=0.0)
        perfect = make_snapshot(0, x=10, y=10, inaccuracy=0.0, trust=1.0)
        state = query.new_state()
        first = state.add(perfect)
        assert first == pytest.approx(query.budget)
        # A second perfect witness adds nothing once saturated.
        other = make_snapshot(1, x=10, y=10, inaccuracy=0.0, trust=1.0)
        assert state.gain(other) == pytest.approx(0.0, abs=1e-12)
        batch = state.batch(SensorRoster([perfect, other]))
        assert batch.gain_many(np.array([1])) == pytest.approx([0.0], abs=1e-12)


class TestEventDetectionQueryAccounting:
    def _query(self, duration=5, confidence=0.8):
        return EventDetectionQuery(
            Location(5, 5), 0, duration - 1, threshold=50.0,
            confidence=confidence, budget=duration * 10.0, theta_min=0.0,
        )

    def test_confidence_history_records_every_sampled_slot(self):
        q = self._query()
        q.apply_readings(0, [(60.0, 0.8)], payment=2.0)
        q.apply_readings(1, [], payment=0.0)
        q.apply_readings(2, [(60.0, 0.5), (55.0, 0.5)], payment=3.0)
        assert q.confidence_history == pytest.approx([0.8, 0.0, 0.75])

    def test_quality_of_results_is_mean_attainment(self):
        q = self._query(confidence=0.8)
        q.apply_readings(0, [(60.0, 0.8)], payment=0.0)   # attainment 1.0
        q.apply_readings(1, [(60.0, 0.4)], payment=0.0)   # attainment 0.5
        assert q.quality_of_results() == pytest.approx(0.75)
        assert self._query().quality_of_results() == 0.0

    def test_record_slot_accrues_value_and_fires(self):
        q = self._query(confidence=0.6)
        fired = q.record_slot(0, [(60.0, 0.9)], achieved_value=7.5, payment=4.0)
        assert fired
        assert q.achieved_value() == pytest.approx(7.5)
        assert q.spent == pytest.approx(4.0)


class FixedArrivals:
    """Deterministic workload: the given queries arrive at slot 0."""

    def __init__(self, queries):
        self.queries = list(queries)

    def generate(self, t, rng):
        return [q for q in self.queries if q.t1 == t]


class TestEventDetectionStream:
    def test_full_lifecycle_against_engine(self):
        scenario = build_rwm_scenario(5, n_sensors=60, n_slots=10)
        workload = EventDetectionWorkload(
            scenario.working_region, threshold=40.0, arrivals_per_slot=2,
            duration_range=(2, 4), dmax=scenario.dmax,
        )
        engine = event_detection_engine(
            scenario.make_fleet(), workload, GreedyAllocator(),
            np.random.default_rng(8),
        )
        summary = engine.run(5)
        assert summary.n_slots == 5
        assert "event" in summary.quality_stats
        assert summary.quality_stats["event"].count > 0
        assert all("live" in r.extras and "detections" in r.extras for r in summary.slots)
        # Derived slot queries were issued and some answered.
        assert sum(r.issued for r in summary.slots) > 0
        assert sum(r.answered for r in summary.slots) > 0

    def test_expired_queries_retire_into_summary(self):
        region = Region.from_origin(20, 20)
        query = EventDetectionQuery(
            Location(10, 10), 0, 1, threshold=50.0, confidence=0.8,
            budget=20.0, theta_min=0.0, dmax=10.0,
        )
        stream = EventDetectionStream(FixedArrivals([query]))
        summary = SimulationSummary()
        stream.begin_slot(0, np.random.default_rng(0), summary)
        assert stream.live == [query]
        children = stream.emit(0, [])
        assert len(children) == 1
        assert children[0].parent_id == query.query_id
        # Expiry at t=2 folds the quality + outcome into the summary.
        stream.begin_slot(2, np.random.default_rng(0), summary)
        assert stream.live == []
        assert summary.quality_stats["event"].count == 1

    def test_flush_retires_everything(self):
        query = EventDetectionQuery(
            Location(5, 5), 0, 99, threshold=50.0, confidence=0.8, budget=10.0
        )
        stream = EventDetectionStream(FixedArrivals([query]))
        summary = SimulationSummary()
        stream.begin_slot(0, np.random.default_rng(0), summary)
        stream.flush(summary)
        assert stream.live == []
        assert summary.quality_stats["event"].count == 1

    def test_phenomenon_drives_detections(self):
        region = Region.from_origin(20, 20)
        query = EventDetectionQuery(
            Location(10, 10), 0, 3, threshold=50.0, confidence=0.5,
            budget=80.0, theta_min=0.0, dmax=10.0,
        )
        stream = EventDetectionStream(
            FixedArrivals([query]), phenomenon=lambda t, loc: 75.0
        )
        engine_sensors = [
            make_snapshot(0, x=10, y=10, cost=2.0, inaccuracy=0.0, trust=1.0)
        ]
        summary = SimulationSummary()
        from repro.core import SlotRecord

        stream.begin_slot(0, np.random.default_rng(0), summary)
        children = stream.emit(0, engine_sensors)
        result = GreedyAllocator().allocate(children, engine_sensors)
        record = SlotRecord(slot=0)
        stream.settle(0, result, record, summary)
        assert record.extras["detections"] == 1.0
        assert query.detections and query.detections[0][0] == 0

    def test_scenario_spec_event_stream(self):
        spec = ScenarioSpec(
            name="event-demo",
            dataset="rwm",
            seed=3,
            n_sensors=50,
            n_slots=4,
            allocator="greedy",
            streams=(
                StreamSpec("point", params={"n_queries": 10, "budget": 15.0}),
                StreamSpec(
                    "event",
                    params={"threshold": 45.0, "arrivals_per_slot": 2,
                            "duration_range": [2, 3]},
                ),
            ),
        )
        round_tripped = ScenarioSpec.from_dict(spec.to_dict())
        assert round_tripped == spec
        summary = spec.run()
        assert "event" in summary.quality_stats

    def test_point_only_allocators_reject_event_streams(self):
        with pytest.raises(ValueError, match="point queries only"):
            ScenarioSpec(
                name="bad",
                allocator="optimal",
                streams=(StreamSpec("event"),),
            )
