"""Tests for the Algorithm 2/3 controllers."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_snapshot
from repro.core import (
    AllocationResult,
    GreedyAllocator,
    LocationMonitoringController,
    OptimalPointAllocator,
    RegionMonitoringController,
)
from repro.phenomena import (
    GaussianProcessField,
    HarmonicRegressionModel,
    OzoneTraceSynthesizer,
    RBFKernel,
    schedule_for_window,
)
from repro.queries import LocationMonitoringQuery, RegionMonitoringQuery
from repro.spatial import Location, Region

SERIES = OzoneTraceSynthesizer().generate(50, np.random.default_rng(5))
MODEL = HarmonicRegressionModel(50, 1)
GP = GaussianProcessField(RBFKernel(1.0, 2.0), noise=0.2)


def lm_query(t1=10, duration=12, budget_factor=15.0) -> LocationMonitoringQuery:
    desired = schedule_for_window(SERIES, t1, duration, max(1, duration // 3), MODEL)
    return LocationMonitoringQuery(
        Location(5, 5), t1, t1 + duration - 1, desired,
        budget=duration * budget_factor, series=SERIES, model=MODEL,
        theta_min=0.0, dmax=5.0,
    )


def rm_query(t1=0, duration=10, budget=80.0) -> RegionMonitoringQuery:
    return RegionMonitoringQuery(Region(0, 0, 10, 8), t1, t1 + duration - 1, budget, GP)


class TestLocationController:
    def test_full_value_at_scheduled_time(self):
        controller = LocationMonitoringController()
        query = lm_query()
        t = query.desired_times[0]
        children = controller.create_point_queries([query], t)
        assert len(children) == 1
        child = children[0]
        assert child.parent_id == query.query_id
        assert child.budget == pytest.approx(
            min(query.marginal_gain(t), query.remaining_budget)
        )

    def test_inactive_queries_skipped(self):
        controller = LocationMonitoringController()
        query = lm_query(t1=10)
        assert controller.create_point_queries([query], 5) == []

    def test_opportunistic_budget_capped_by_alpha_surplus(self):
        controller = LocationMonitoringController(alpha=0.5)
        query = lm_query()
        # Give the query surplus: a free perfect sample at the first
        # scheduled time.
        query.apply_sample(query.desired_times[0], 1.0, 0.0)
        t = query.desired_times[0] + 1
        if t in query.desired_times:
            t += 1
        children = controller.create_point_queries([query], t)
        if children:
            assert children[0].budget <= 0.5 * query.surplus + 1e-9

    def test_scheduled_only_mode(self):
        controller = LocationMonitoringController(opportunistic=False, scheduled_only=True)
        query = lm_query()
        off_schedule = query.desired_times[0] + 1
        while off_schedule in query.desired_times:
            off_schedule += 1
        assert controller.create_point_queries([query], off_schedule) == []
        assert controller.create_point_queries([query], query.desired_times[0])

    def test_catchup_after_missed_schedule(self):
        controller = LocationMonitoringController(opportunistic=False)
        query = lm_query()
        t = query.desired_times[0] + 1  # the scheduled sample was missed
        while t in query.desired_times:
            t += 1
        children = controller.create_point_queries([query], t)
        assert len(children) == 1  # catch-up at full value

    def test_alpha_validation(self):
        controller = LocationMonitoringController(alpha=2.0)
        query = lm_query()
        query.apply_sample(query.desired_times[0], 1.0, 0.0)
        t = query.desired_times[0] + 1
        while t in query.desired_times:
            t += 1
        with pytest.raises(ValueError):
            controller.create_point_queries([query], t)

    def test_alpha_callable_schedule(self):
        calls = []

        def schedule(t, query):
            calls.append(t)
            return 0.25

        controller = LocationMonitoringController(alpha=schedule)
        query = lm_query()
        query.apply_sample(query.desired_times[0], 1.0, 0.0)
        t = query.desired_times[0] + 1
        while t in query.desired_times:
            t += 1
        controller.create_point_queries([query], t)
        assert calls  # the schedule was consulted

    def test_apply_results_updates_state(self):
        controller = LocationMonitoringController()
        query = lm_query()
        t = query.desired_times[0]
        children = controller.create_point_queries([query], t)
        result = OptimalPointAllocator().allocate(
            children, [make_snapshot(0, x=5, y=5, cost=5.0)]
        )
        samples, delta = controller.apply_results([query], children, result, t)
        assert samples == 1
        assert delta > 0.0
        assert query.sampled_times == [t]
        assert query.spent == pytest.approx(5.0)

    def test_apply_results_failed_sampling(self):
        controller = LocationMonitoringController()
        query = lm_query()
        t = query.desired_times[0]
        children = controller.create_point_queries([query], t)
        empty = OptimalPointAllocator().allocate(children, [])  # no sensors
        samples, delta = controller.apply_results([query], children, empty, t)
        assert samples == 0
        assert delta == 0.0
        assert query.sampled_times == []


class TestRegionController:
    def _sensors(self, n=6, seed=0):
        rng = np.random.default_rng(seed)
        return [
            make_snapshot(i, x=float(rng.uniform(0, 10)), y=float(rng.uniform(0, 8)))
            for i in range(n)
        ]

    def test_region_counts(self):
        controller = RegionMonitoringController()
        q1, q2 = rm_query(), rm_query()
        inside = make_snapshot(0, x=5, y=5)
        outside = make_snapshot(1, x=50, y=50)
        counts = controller.region_counts([q1, q2], [inside, outside], 0)
        assert counts[0] == 2
        assert counts[1] == 0

    def test_children_created_for_plan(self):
        controller = RegionMonitoringController()
        query = rm_query()
        children, plans = controller.create_point_queries([query], self._sensors(), 0)
        assert query.query_id in plans
        assert all(c.parent_id == query.query_id for c in children)
        assert len(children) <= len(plans[query.query_id].current)

    def test_child_budgets_capped_by_query_budget(self):
        controller = RegionMonitoringController()
        query = rm_query(budget=15.0)
        children, _ = controller.create_point_queries([query], self._sensors(), 0)
        assert sum(c.budget for c in children) <= 15.0 + 1e-9

    def test_apply_results_records_slot(self):
        controller = RegionMonitoringController()
        query = rm_query()
        sensors = self._sensors()
        children, plans = controller.create_point_queries([query], sensors, 0)
        result = GreedyAllocator().allocate(children, sensors)
        outcomes = controller.apply_results([query], children, plans, result, 0)
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.achieved_value == pytest.approx(
            query.slot_values[0]
        )
        assert query.spent == pytest.approx(outcome.paid)

    def test_shared_sensors_enter_achieved_set(self):
        controller = RegionMonitoringController()
        query = rm_query()
        sensors = self._sensors()
        children, plans = controller.create_point_queries([query], sensors, 0)
        # Simulate another query having selected an in-region sensor the
        # plan did not include.
        result = GreedyAllocator().allocate(children, sensors)
        extra = next(
            s for s in sensors if s.sensor_id not in result.selected
        )
        result.selected[extra.sensor_id] = extra
        result.assignments["other_query"] = (extra.sensor_id,)
        result.values["other_query"] = extra.cost * 2
        result.payments[("other_query", extra.sensor_id)] = extra.cost
        outcomes = controller.apply_results([query], children, plans, result, 0)
        assert extra.sensor_id in outcomes[0].shared_sensors

    def test_baseline_mode_ignores_shared_sensors(self):
        controller = RegionMonitoringController(
            weight_fn=lambda k: 1.0, use_shared_sensors=False
        )
        query = rm_query()
        sensors = self._sensors()
        children, plans = controller.create_point_queries([query], sensors, 0)
        result = GreedyAllocator().allocate(children, sensors)
        extra = next(s for s in sensors if s.sensor_id not in result.selected)
        result.selected[extra.sensor_id] = extra
        result.assignments["other_query"] = (extra.sensor_id,)
        result.values["other_query"] = extra.cost * 2
        result.payments[("other_query", extra.sensor_id)] = extra.cost
        outcomes = controller.apply_results([query], children, plans, result, 0)
        assert outcomes[0].shared_sensors == ()

    def test_adjust_payments_conserves_sensor_income(self):
        controller = RegionMonitoringController()
        result = AllocationResult()
        snap = make_snapshot(7, x=5, y=5, cost=10.0)
        result.record("payer", snap, 20.0, 10.0)
        from repro.core import RegionSlotOutcome

        outcome = RegionSlotOutcome(
            query_id="rm1", contributions={7: 4.0}
        )
        controller.adjust_payments(result, [outcome])
        assert result.sensor_income(7) == pytest.approx(10.0)
        assert result.payments[("payer", 7)] == pytest.approx(6.0)
        assert result.payments[("rm1", 7)] == pytest.approx(4.0)

    def test_contribution_pool_bounded(self):
        """Contributions never exceed alpha * (C_t - paid)."""
        controller = RegionMonitoringController(alpha=0.5)
        query = rm_query(budget=200.0)
        sensors = self._sensors(n=8)
        children, plans = controller.create_point_queries([query], sensors, 0)
        result = GreedyAllocator().allocate(children, sensors)
        # Add every unselected in-region sensor as "selected for others".
        for s in sensors:
            if s.sensor_id not in result.selected:
                result.selected[s.sensor_id] = s
                result.assignments[f"other{s.sensor_id}"] = (s.sensor_id,)
                result.values[f"other{s.sensor_id}"] = s.cost * 2
                result.payments[(f"other{s.sensor_id}", s.sensor_id)] = s.cost
        outcomes = controller.apply_results([query], children, plans, result, 0)
        outcome = outcomes[0]
        plan = plans[query.query_id]
        child_paid = outcome.paid - sum(outcome.contributions.values())
        pool = 0.5 * max(0.0, plan.expected_cost - child_paid)
        assert sum(outcome.contributions.values()) <= pool + 1e-9
