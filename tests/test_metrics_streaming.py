"""Streaming summary aggregation: RunningStat and the keep_samples opt-in."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RunningStat, SimulationSummary
from repro.core.engine import one_shot_engine
from repro.core.greedy import GreedyAllocator
from repro.datasets import build_rwm_scenario
from repro.queries import PointQueryWorkload


class TestRunningStat:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_batch_statistics(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.uniform(0, 2, size=137)
        stat = RunningStat()
        for x in samples:
            stat.add(float(x))
        assert stat.count == len(samples)
        # The running sum accumulates left-to-right — identical to sum().
        assert stat.total == float(sum(float(x) for x in samples))
        assert stat.mean == pytest.approx(float(np.mean(samples)), rel=1e-12)
        assert stat.variance == pytest.approx(float(np.var(samples)), rel=1e-9)
        assert stat.stdev == pytest.approx(float(np.std(samples)), rel=1e-9)

    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.variance == 0.0
        assert stat.stdev == 0.0

    @pytest.mark.parametrize("split", [0, 1, 40, 99, 100])
    def test_merge_equals_single_stream(self, split):
        rng = np.random.default_rng(42)
        samples = [float(x) for x in rng.uniform(0, 3, size=100)]
        left, right = RunningStat(), RunningStat()
        for x in samples[:split]:
            left.add(x)
        for x in samples[split:]:
            right.add(x)
        left.merge(right)
        whole = RunningStat()
        for x in samples:
            whole.add(x)
        assert left.count == whole.count
        assert left.total == pytest.approx(whole.total, rel=1e-12)
        assert left.mean == pytest.approx(whole.mean, rel=1e-12)
        assert left.variance == pytest.approx(whole.variance, rel=1e-9)


class TestSummaryStreaming:
    def test_constant_memory_by_default(self):
        summary = SimulationSummary()
        for i in range(1000):
            summary.add_quality("point", i / 1000.0)
        assert summary.quality_samples == {}  # nothing retained
        assert summary.quality_count("point") == 1000
        assert summary.average_quality("point") == pytest.approx(0.4995)
        assert summary.quality_stdev("point") > 0.0
        assert summary.quality_labels() == ["point"]

    def test_keep_samples_opt_in(self):
        summary = SimulationSummary(keep_samples=True)
        summary.add_quality("point", 0.5)
        summary.add_quality("point", 1.0)
        summary.add_quality("aggregate", 0.25)
        assert summary.quality_samples["point"] == [0.5, 1.0]
        assert summary.quality_samples["aggregate"] == [0.25]
        # the streaming aggregates agree with the retained lists
        assert summary.average_quality("point") == pytest.approx(0.75)
        assert summary.quality_count("aggregate") == 1

    def test_mean_is_bit_identical_to_raw_list_mean(self):
        rng = np.random.default_rng(3)
        samples = [float(x) for x in rng.uniform(0, 1, size=500)]
        summary = SimulationSummary(keep_samples=True)
        for x in samples:
            summary.add_quality("q", x)
        raw = summary.quality_samples["q"]
        assert summary.average_quality("q") == float(sum(raw) / len(raw))

    def test_engine_run_keep_samples_flag(self):
        scenario = build_rwm_scenario(5, n_sensors=30, n_slots=6)
        workload = PointQueryWorkload(
            scenario.working_region, n_queries=10, budget=15.0, dmax=scenario.dmax
        )

        def run(keep):
            engine = one_shot_engine(
                scenario.make_fleet(), workload, GreedyAllocator(),
                np.random.default_rng(5),
            )
            return engine.run(4, keep_samples=keep)

        lean, fat = run(False), run(True)
        assert lean.quality_samples == {}
        assert fat.quality_samples  # retained distributions
        assert set(lean.quality_stats) == set(fat.quality_stats)
        for label, stat in fat.quality_stats.items():
            assert stat.count == len(fat.quality_samples[label])
            assert lean.quality_stats[label].count == stat.count
            assert lean.average_quality(label) == fat.average_quality(label)
