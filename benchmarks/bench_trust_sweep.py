"""Section 4.7 (text): trust-distribution sensitivity.

"The more trustworthy the sensors are, the more utility they bring to the
queries" — utility is monotone in the trust distribution.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import format_figure, trust_sweep


def test_trust_sweep(benchmark, scale):
    result = run_once(benchmark, trust_sweep, scale)
    print()
    print(format_figure(result))

    full = result.metric("FullTrust", "avg_utility")[0]
    mid = result.metric("Uniform[0.5,1]", "avg_utility")[0]
    low = result.metric("Uniform[0,1]", "avg_utility")[0]
    assert full >= mid >= low
