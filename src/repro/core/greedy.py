"""Greedy multi-query sensor selection — Algorithm 1 (Section 3.2).

At every step the algorithm picks the sensor maximizing the *partial
overall utility*: the sum over queries of its positive marginal valuations,
minus its cost.  The selected sensor's cost is split among the benefiting
queries in proportion to their marginal gains (line 10), which yields
Theorem 1's guarantees:

1. telescoping — each query's recorded value equals ``v_q(S_q)``;
2. positive total utility whenever anything was selected;
3. non-negative individual query utility;
4. ``O(|Q| |S|^2)`` valuation calls.

Two implementations share the selection/settlement semantics:

* the **batch path** (default) drives the queries' batch-gain protocol
  (:meth:`~repro.queries.ValuationState.batch`): a dense
  ``(n_queries, n_sensors)`` gain matrix is built once from vectorized
  ``gain_many`` passes and only the *dirty* rows — queries that received a
  sensor in the previous round — are re-evaluated after each commit.
  Per-sensor net utilities are re-accumulated for the affected columns with
  a sequential (``cumsum``) pass in query order, which reproduces the
  scalar path's Python ``sum`` addition order bit-for-bit, so both paths
  select identical sensors and settle identical cost shares;
* the **fused path** (``fused="auto"``, the default, layered on the batch
  path) additionally groups same-type batch states into
  :class:`~repro.queries.GainBlock` stacks.  Each round's dirty
  (query, sensor) pairs are then evaluated with one ``gain_many_block``
  call per query *type* instead of one ``gain_many`` call per dirty query
  — the win grows with the number of same-type queries per slot (region-
  heavy workloads with dozens of aggregate queries).  Blocks are built
  through the fallback lattice (:func:`~repro.queries.gain_block_trusted`,
  :func:`~repro.queries.resolve_batch_state`), so subclasses that override
  only scalar or only row-level hooks are routed to the generic evaluators
  that honour their overrides, and every block implementation is
  bit-identical to its per-row ``gain_many``;
* the **scalar path** (``vectorized=False``) is the historical per-pair
  ``ValuationState.gain`` loop, kept as the executable reference the
  parity suite checks the batch path against.

Both add one exact optimization over the pseudo-code: a sensor's cached
marginal sum only changes when one of *its* relevant queries received a new
sensor, so after committing sensor ``a`` we re-evaluate only the pairs
whose relevant-query sets intersect ``Q_a`` (this is the paper's
``Q_{l_s}`` pre-filtering taken to its logical end; it changes nothing
about which sensor wins each round).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..backend import normalize_backend, resolve_backend, xp
from ..backend.workspace import SlotWorkspace, normalize_workspace
from ..queries import PointQuery, Query, SpatialAggregateQuery, ValuationState
from ..queries.base import (
    GainBlock,
    gain_block_trusted,
    resolve_batch_state,
    resolve_relevant_mask,
)
from ..sensors import SensorSnapshot
from ..sensors.state import as_announcement_sequence
from .allocation import AllocationResult, check_distinct
from .payments import proportionate_shares
from .valuation import ValuationKernel

__all__ = ["GreedyAllocator", "normalize_fused", "relevant_queries_by_sensor"]


def normalize_fused(setting: bool | str | None) -> bool | str:
    """Canonicalize a ``fused=`` knob value.

    ``None``, ``True`` and ``"auto"`` all mean the default adaptive fused
    pipeline (blocks are built, multi-row refreshes fuse, single-row
    refreshes keep the cheaper per-row call); ``False`` disables block
    construction entirely so every refresh goes through per-row
    ``gain_many``.  Both settings produce bit-identical allocations — the
    knob exists for benchmarking and for bisecting regressions.
    """
    if setting is None or setting is True or setting == "auto":
        return "auto"
    if setting is False:
        return False
    raise ValueError(f"unrecognized fused setting: {setting!r}")


def relevant_queries_by_sensor(
    queries: Sequence[Query],
    sensors: Sequence[SensorSnapshot],
    kernel: ValuationKernel | None = None,
) -> dict[int, list[str]]:
    """The paper's ``Q_{l_s}`` prefilter: per sensor, its relevant query ids.

    With a slot kernel the single-sensor point queries — the bulk of every
    mixed slot — are screened in one vectorized pass; other query types fall
    back to their scalar ``relevant``.  Query order within each sensor's
    list matches the input order exactly, as the greedy settlement depends
    on it.
    """
    relevant: dict[int, list[str]] = {}
    plain_points = (
        [(i, q) for i, q in enumerate(queries) if type(q) is PointQuery]
        if kernel is not None and kernel.matches(sensors)
        else []
    )
    if plain_points:
        rel = kernel.relevance([q for _, q in plain_points])
        point_pos = np.asarray([i for i, _ in plain_points], dtype=np.intp)
        others = [(i, q) for i, q in enumerate(queries) if type(q) is not PointQuery]
        # reprolint: disable=hot-loop(scalar relevance oracle: mixed-type slots without a batch mask; parity-pinned)
        for j, snapshot in enumerate(sensors):
            indices = list(point_pos[rel[:, j]])
            indices.extend(i for i, q in others if q.relevant(snapshot))
            indices.sort()
            if indices:
                relevant[snapshot.sensor_id] = [queries[i].query_id for i in indices]
    else:
        # reprolint: disable=hot-loop(no-kernel scalar fallback; the kernel path above serves hot slots)
        for snapshot in sensors:
            qids = [q.query_id for q in queries if q.relevant(snapshot)]
            if qids:
                relevant[snapshot.sensor_id] = qids
    return relevant


class GreedyAllocator:
    """Algorithm 1: greedy joint sensor selection for arbitrary query mixes.

    Args:
        min_gain: numerical floor below which a marginal gain is treated as
            zero (guards against float noise keeping the loop alive).
        verify: run the Theorem-1 invariant checks on the result (cheap;
            disable only in tight benchmarking loops).
        vectorized: drive the batch-gain protocol (default).  The scalar
            per-pair loop remains available as the parity reference and for
            query types whose states deliberately bypass batching.
        fused: ``"auto"`` (default; also ``None``/``True``) stacks same-type
            batch states into :class:`~repro.queries.GainBlock` groups and
            refreshes each round's dirty pairs with one fused pass per
            query type; ``False`` keeps the per-row ``gain_many`` loop.
            Allocations are bit-identical either way.
        workspace: ``"auto"`` (default; also ``None``/``True``) acquires
            every batch-path scratch buffer from a persistent
            :class:`~repro.backend.SlotWorkspace` — preallocated arenas
            reused across rounds *and* across warm slots, so steady-state
            rounds allocate nothing; ``False`` puts the workspace in
            pass-through mode (every acquire allocates fresh through the
            backend seam).  Same statements run either way, so
            allocations and payments are bit-identical.
        backend: array backend the workspace allocates through
            (:func:`~repro.backend.normalize_backend`); ``None`` (default)
            follows the active backend — a driving engine's
            ``use_backend`` scope, else plain numpy.
    """

    name = "Greedy"
    supports_kernel = True

    def __init__(
        self,
        min_gain: float = 1e-9,
        verify: bool = True,
        vectorized: bool = True,
        fused: bool | str | None = "auto",
        workspace: bool | str | None = "auto",
        backend=None,
    ) -> None:
        if min_gain < 0:
            raise ValueError("min_gain must be non-negative")
        self.min_gain = min_gain
        self.verify = verify
        self.vectorized = vectorized
        self.fused = normalize_fused(fused)
        self.workspace = normalize_workspace(workspace)
        self.backend = normalize_backend(backend)
        self._ws: SlotWorkspace | None = None
        self._ws_knobs: tuple | None = None

    def _slot_workspace(self) -> SlotWorkspace:
        """The allocator's persistent workspace, tracking the live knobs.

        Arenas survive across calls (warm slots reuse them); flipping the
        ``workspace``/``backend`` knobs between calls swaps in a fresh
        workspace so stale arenas never leak across configurations.
        """
        knobs = (self.workspace is not False, self.backend)
        ws = self._ws
        if ws is None or self._ws_knobs != knobs:
            bk = None if self.backend is None else resolve_backend(self.backend)
            ws = self._ws = SlotWorkspace(backend=bk, reuse=knobs[0])
            self._ws_knobs = knobs
        ws.begin_call()
        return ws

    def allocate(
        self,
        queries: Sequence[Query],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None = None,
    ) -> AllocationResult:
        check_distinct(queries, sensors)
        result = AllocationResult()
        if queries and len(sensors):
            if self.vectorized:
                # Announcements pass through as-is: an AnnouncementBatch
                # stays lazy (copying it would materialize every snapshot);
                # only other non-indexable inputs are copied defensively.
                self._allocate_batch(
                    list(queries), as_announcement_sequence(sensors), kernel, result
                )
            else:
                self._allocate_scalar(queries, sensors, kernel, result)
        if self.verify:
            result.verify()
        return result

    # ------------------------------------------------------------------
    # the batch path: dense gain matrix + masked recomputation
    # ------------------------------------------------------------------
    def _allocate_batch(
        self,
        queries: list[Query],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None,
        result: AllocationResult,
    ) -> None:
        kernel = ValuationKernel.ensure(kernel, sensors)
        ws = self._slot_workspace()
        n_queries, n_all = len(queries), len(sensors)

        # Relevance over the full announcement set: one kernel pass for the
        # plain point queries (the bulk of every slot), one vectorized
        # `relevant_mask` pass per other query type over the kernel's
        # stacked arrays — the scalar per-snapshot `relevant` scan survives
        # only as the fallback for query types that declare no vectorized
        # geometry.  The single-value block doubles as the point queries'
        # precomputed gain rows below.  A sharding-capable kernel (see
        # repro.core.sharding) is consumed through its candidate hooks:
        # point values arrive as per-query sparse (columns, values) pairs
        # instead of a dense (q, n) block, and non-point masks/scans are
        # evaluated on each query's memoized candidate-shard array blocks —
        # all omitted pairs are exactly zero/irrelevant, so both forms stay
        # bit-identical to the dense pass.
        plain_idx = [i for i, q in enumerate(queries) if type(q) is PointQuery]
        sparse_fn = getattr(kernel, "sparse_single_values", None)
        single_values = sparse_entries = None
        if plain_idx:
            plain_queries = [queries[i] for i in plain_idx]
            if sparse_fn is not None:
                sparse_entries = sparse_fn(plain_queries)
            else:
                single_values = kernel.single_values(plain_queries)
        relevance_all = ws.zeros(
            "greedy:relevance_all", (n_queries, n_all), dtype=xp.bool_dtype
        )
        if plain_idx:
            if sparse_entries is not None:
                for i, (idx, vals) in zip(plain_idx, sparse_entries):
                    relevance_all[i, idx] = vals > 0.0
            else:
                relevance_all[plain_idx] = single_values > 0.0
        view_of = getattr(kernel, "candidate_view", None)
        for i, query in enumerate(queries):
            if type(query) is not PointQuery:
                view = view_of(query) if view_of is not None else None
                if view is None:
                    if type(query) is SpatialAggregateQuery:
                        # Same clamped-axis distances as `relevant_mask`,
                        # but cached on the slot's shared world raster so
                        # overlapping aggregate queries over one region
                        # pay the containment pass once per slot.
                        relevance_all[i] = (
                            kernel.raster.exterior_distance_sq(query.region)
                            <= query.sensing_range**2
                        )
                        continue
                    mask = resolve_relevant_mask(
                        query, kernel.sensor_xy, kernel.gamma, kernel.trust
                    )
                    if mask is not None:
                        relevance_all[i] = mask
                    else:
                        relevance_all[i] = np.fromiter(
                            (query.relevant(s) for s in sensors), bool, n_all
                        )
                else:
                    cand, cand_xy, cand_gamma, cand_trust = view
                    mask = resolve_relevant_mask(query, cand_xy, cand_gamma, cand_trust)
                    if mask is not None:
                        relevance_all[i, cand] = mask
                    else:
                        row = relevance_all[i]
                        for j in cand:
                            if query.relevant(sensors[j]):
                                row[j] = True

        # Candidate roster: the paper's Q_{l_s} — sensors serving anything.
        cols = np.flatnonzero(relevance_all.any(axis=0))
        if cols.size == 0:
            return
        # Snapshots and costs come from the *passed* announcements — the
        # kernel may be a reused one whose own snapshots carry stale prices.
        roster = kernel.roster(cols, sensors)
        roster.workspace = ws
        relevance = ws.empty(
            "greedy:relevance", (n_queries, cols.size), dtype=xp.bool_dtype
        )
        np.take(relevance_all, cols, axis=1, out=relevance)
        # A batch announcement carries costs as a stacked array (the exact
        # values its lazy snapshots are materialized from); snapshot lists
        # pay the per-candidate gather.
        announced_costs = getattr(sensors, "costs", None)
        if announced_costs is not None:
            costs = ws.empty("greedy:costs", cols.size, dtype=xp.float_dtype)
            np.take(announced_costs, cols, out=costs)
        else:
            costs = np.fromiter((sensors[j].cost for j in cols), float, cols.size)
        if plain_idx:
            if sparse_entries is not None:
                # Scatter the sparse rows into the reduced column space.
                # Candidate columns relevant to no query are absent from
                # ``cols`` but carry value 0.0 by construction, so dropping
                # them is exact.
                block = ws.zeros(
                    "greedy:point_block",
                    (len(plain_idx), cols.size),
                    dtype=xp.float_dtype,
                )
                col_pos = ws.full(
                    "greedy:col_pos", n_all, -1, dtype=xp.index_dtype
                )
                col_pos[cols] = np.arange(cols.size, dtype=xp.index_dtype)
                for p, (idx, vals) in enumerate(sparse_entries):
                    pos = col_pos[idx]
                    keep = pos >= 0
                    block[p, pos[keep]] = vals[keep]
            else:
                block = ws.empty(
                    "greedy:point_block",
                    (len(plain_idx), cols.size),
                    dtype=xp.float_dtype,
                )
                np.take(single_values, cols, axis=1, out=block)
            for p, i in enumerate(plain_idx):
                roster.value_rows[queries[i].query_id] = block[p]
        for i, query in enumerate(queries):
            if type(query) is not PointQuery:
                roster.relevance_rows[query.query_id] = relevance[i]

        states: dict[str, ValuationState] = {q.query_id: q.new_state() for q in queries}
        batches = [resolve_batch_state(states[q.query_id], roster) for q in queries]
        fused_groups = (
            self._build_blocks(batches, ws) if self.fused is not False else None
        )

        n = cols.size
        gain_matrix = ws.zeros("greedy:gain_matrix", (n_queries, n), dtype=xp.float_dtype)
        alive = ws.ones("greedy:alive", n, dtype=xp.bool_dtype)
        all_indices = roster.all_indices
        # Initial fill.  Point-query rows come straight from the kernel
        # block (empty state: the marginal gain IS the single value), one
        # vectorized pass for the whole block; other query types fill via
        # their batch states (fused per type when blocks are enabled).
        if plain_idx:
            rows = np.asarray(plain_idx, dtype=np.intp)
            keep = relevance[rows] & (block > self.min_gain)
            gain_matrix[rows] = np.where(keep, block, 0.0)
        nonpoint_rows = [
            i
            for i, query in enumerate(queries)
            if type(query) is not PointQuery and relevance[i].any()
        ]
        self._refresh_rows(
            gain_matrix, relevance, batches, nonpoint_rows, all_indices, fused_groups
        )
        net = ws.empty("greedy:net", n, dtype=xp.float_dtype)
        self._recompute_net(gain_matrix, costs, all_indices, net, ws)

        while alive.any():
            # Same values as `np.where(alive, net, -inf)`, without the
            # per-round temporary: fill the arena view, copy the live lanes.
            candidate_net = ws.empty("greedy:candidate_net", n, dtype=xp.float_dtype)
            candidate_net.fill(-np.inf)
            np.copyto(candidate_net, net, where=alive)
            j = int(np.argmax(candidate_net))
            column = gain_matrix[:, j]
            benefiting = np.flatnonzero(column)
            if net[j] <= 0.0 or benefiting.size == 0:
                break

            snapshot = roster.snapshots[j]
            gains = {queries[i].query_id: float(column[i]) for i in benefiting}
            shares = proportionate_shares(gains, snapshot.cost)
            for i in benefiting:
                qid = queries[i].query_id
                gain = gains[qid]
                realized = states[qid].add(snapshot)
                # The committed gain must match the batch evaluation; the
                # states are only mutated here, so any drift is a query-
                # implementation bug worth failing loudly on.
                if abs(realized - gain) > 1e-6 * max(1.0, abs(gain)):
                    raise RuntimeError(
                        f"query {qid} marginal gain drifted: batch {gain}, "
                        f"realized {realized}"
                    )
                result.record(queries[i], snapshot, gain, shares[qid])
            alive[j] = False

            # Masked recomputation: only the rows that just grew, only the
            # still-live columns; then re-accumulate the nets of sensors
            # sharing any touched query.
            live = np.flatnonzero(alive)
            if live.size == 0:
                break
            self._refresh_rows(
                gain_matrix, relevance, batches, benefiting, live, fused_groups
            )
            rel_rows = ws.empty(
                "greedy:dirty_rows", (benefiting.size, n), dtype=xp.bool_dtype
            )
            np.take(relevance, benefiting, axis=0, out=rel_rows)
            dirty = ws.empty("greedy:dirty", n, dtype=xp.bool_dtype)
            np.any(rel_rows, axis=0, out=dirty)
            dirty &= alive
            dirty_cols = np.flatnonzero(dirty)
            if dirty_cols.size:
                self._recompute_net(gain_matrix, costs, dirty_cols, net, ws)

    @staticmethod
    def _build_blocks(
        batches: list,
        ws: SlotWorkspace,
    ) -> tuple[np.ndarray, np.ndarray, list[GainBlock]]:
        """Group the slot's batch states into per-type gain blocks.

        Returns ``(row_block, member_pos, blocks)``: for query row ``i``,
        ``blocks[row_block[i]]`` is its fused block and ``member_pos[i]``
        its member index within it.  Grouping is by *exact* batch-state
        type; a type's native ``block`` hook is used only when the fallback
        lattice trusts it (:func:`~repro.queries.gain_block_trusted`), else
        the generic row-looping :class:`~repro.queries.GainBlock` preserves
        any ``gain_many`` override.  Member order follows query order, so
        pairs sorted by query row arrive member-grouped as the block
        protocol requires.
        """
        groups: dict[type, list[int]] = {}
        for i, state in enumerate(batches):
            groups.setdefault(type(state), []).append(i)
        row_block = ws.empty("greedy:row_block", len(batches), dtype=xp.index_dtype)
        member_pos = ws.empty("greedy:member_pos", len(batches), dtype=xp.index_dtype)
        blocks: list[GainBlock] = []
        for cls, rows in groups.items():
            members = [batches[i] for i in rows]
            block = (
                cls.block(members) if gain_block_trusted(cls) else GainBlock(members)
            )
            for p, i in enumerate(rows):
                row_block[i] = len(blocks)
                member_pos[i] = p
            blocks.append(block)
        return row_block, member_pos, blocks

    def _refresh_rows(
        self,
        gain_matrix: np.ndarray,
        relevance: np.ndarray,
        batches: list,
        rows: Sequence[int] | np.ndarray,
        columns: np.ndarray,
        fused_groups: tuple[np.ndarray, np.ndarray, list[GainBlock]] | None,
    ) -> None:
        """Re-evaluate ``rows``' gains against ``columns``.

        With fused groups, all dirty relevant (query, sensor) pairs are
        gathered at once and dispatched as one ``gain_many_block`` call per
        touched block; ``np.nonzero`` emits pairs in row-major order and
        block members follow query order, so each block's pairs arrive
        member-grouped.  Single dirty rows go through their block too —
        block evaluators own the cheap shared-structure path (e.g. the
        coverage block's raster CSR rows vs a lazily built dense mask
        matrix), so bouncing to per-row ``gain_many`` would rebuild state
        the block exists to avoid.
        """
        if fused_groups is None:
            for i in rows:
                self._refresh_row(gain_matrix, relevance, batches, i, columns)
            return
        row_block, member_pos, blocks = fused_groups
        row_idx = np.asarray(rows, dtype=np.intp)
        r_pos, c_pos = np.nonzero(relevance[np.ix_(row_idx, columns)])
        if r_pos.size == 0:
            return
        pair_rows = row_idx[r_pos]
        pair_cols = columns[c_pos]
        pair_block = row_block[pair_rows]
        for b in np.unique(pair_block):
            in_block = pair_block == b
            pr = pair_rows[in_block]
            pc = pair_cols[in_block]
            gains = blocks[b].gain_many_block(member_pos[pr], pc)
            gain_matrix[pr, pc] = np.where(gains > self.min_gain, gains, 0.0)

    def _refresh_row(
        self,
        gain_matrix: np.ndarray,
        relevance: np.ndarray,
        batches: list,
        row: int,
        columns: np.ndarray,
    ) -> None:
        """Re-evaluate one query's gains against ``columns`` in one pass.

        Only the query's *relevant* columns are evaluated — irrelevant
        entries are zero-initialized and never change.
        """
        targets = columns[relevance[row, columns]]
        if targets.size == 0:
            return
        gains = batches[row].gain_many(targets)
        gain_matrix[row, targets] = np.where(gains > self.min_gain, gains, 0.0)

    @staticmethod
    def _recompute_net(
        gain_matrix: np.ndarray,
        costs: np.ndarray,
        columns: np.ndarray,
        net: np.ndarray,
        ws: SlotWorkspace | None = None,
    ) -> None:
        """Net utility of ``columns``, re-accumulated in query order.

        Summation runs sequentially down the query axis (``cumsum``), which
        is exactly the addition order of the scalar path's Python ``sum``
        over its per-sensor gains dict — stored gains are never ``-0.0``,
        so the all-zero rows the scalar path skips are exact no-ops here
        and one full-height cumsum replaces the old contributing-row scan
        bit-for-bit.  Near-tie sensor selections therefore cannot diverge
        between the paths.
        """
        if ws is None:
            ws = SlotWorkspace(reuse=False)
        sub = ws.empty(
            "greedy:net_sub", (gain_matrix.shape[0], columns.size), dtype=xp.float_dtype
        )
        np.take(gain_matrix, columns, axis=1, out=sub)
        np.cumsum(sub, axis=0, out=sub)
        cbuf = ws.empty("greedy:net_costs", columns.size, dtype=xp.float_dtype)
        np.take(costs, columns, out=cbuf)
        np.subtract(sub[-1], cbuf, out=cbuf)
        net[columns] = cbuf

    # ------------------------------------------------------------------
    # the scalar path: the historical per-pair reference implementation
    # ------------------------------------------------------------------
    def _allocate_scalar(
        self,
        queries: Sequence[Query],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None,
        result: AllocationResult,
    ) -> None:
        states: dict[str, ValuationState] = {q.query_id: q.new_state() for q in queries}
        queries_by_id = {q.query_id: q for q in queries}

        # The paper's Q_{l_s}: only queries a sensor could possibly serve.
        relevant = relevant_queries_by_sensor(queries, sensors, kernel)
        remaining: dict[int, SensorSnapshot] = {
            s.sensor_id: s for s in sensors if s.sensor_id in relevant
        }

        # Cached (net utility, per-query positive gains); recomputed lazily.
        cache: dict[int, tuple[float, dict[str, float]]] = {}
        dirty = set(remaining)

        while remaining:
            for sid in dirty:
                if sid not in remaining:
                    continue
                snapshot = remaining[sid]
                gains: dict[str, float] = {}
                for qid in relevant[sid]:
                    gain = states[qid].gain(snapshot)
                    if gain > self.min_gain:
                        gains[qid] = gain
                cache[sid] = (sum(gains.values()) - snapshot.cost, gains)
            dirty.clear()

            best_sid = max(remaining, key=lambda sid: cache[sid][0])
            best_net, best_gains = cache[best_sid]
            if best_net <= 0.0 or not best_gains:
                break

            snapshot = remaining.pop(best_sid)
            cache.pop(best_sid, None)
            shares = proportionate_shares(best_gains, snapshot.cost)
            for qid, gain in best_gains.items():
                realized = states[qid].add(snapshot)
                # The committed gain must match the cached evaluation; the
                # states are only mutated here, so any drift is a query-
                # implementation bug worth failing loudly on.
                if abs(realized - gain) > 1e-6 * max(1.0, abs(gain)):
                    raise RuntimeError(
                        f"query {qid} marginal gain drifted: cached {gain}, "
                        f"realized {realized}"
                    )
                result.record(queries_by_id[qid], snapshot, gain, shares[qid])

            # Invalidate sensors sharing any query that just grew.
            touched = set(best_gains)
            for sid in remaining:
                if touched.intersection(relevant[sid]):
                    dirty.add(sid)
