"""Experiment harness: one function per figure of the paper's evaluation."""

from .config import CI, PAPER, ExperimentScale, get_scale
from .figures import (
    ALL_FIGURES,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig_event,
    trust_sweep,
)
from .replay import ReplayReport, ReplaySlot, allocation_signature, replay_spec
from .reporting import ascii_chart, format_figure, format_metric_table
from .robustness import ReplicatedResult, ordering_robustness, replicate
from .runner import (
    FigureResult,
    SeriesCollector,
    compare_scenarios,
    parallel_map,
    run_specs_parallel,
    summary_metric,
)
from .validation import CHECKLISTS, CheckResult, validate_figure

__all__ = [
    "ExperimentScale",
    "PAPER",
    "CI",
    "get_scale",
    "FigureResult",
    "SeriesCollector",
    "compare_scenarios",
    "parallel_map",
    "run_specs_parallel",
    "summary_metric",
    "format_figure",
    "format_metric_table",
    "ascii_chart",
    "ReplayReport",
    "ReplaySlot",
    "allocation_signature",
    "replay_spec",
    "ReplicatedResult",
    "replicate",
    "ordering_robustness",
    "CheckResult",
    "validate_figure",
    "CHECKLISTS",
    "ALL_FIGURES",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig_event",
    "trust_sweep",
]
