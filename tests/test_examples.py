"""Smoke tests: every example script runs to completion and prints output."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the repository promises at least three examples"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{path.name} produced no output"
