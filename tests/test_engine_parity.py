"""Seeded parity: the unified SlotEngine vs the four pre-refactor engines.

``legacy_engines`` is a frozen copy of the seed simulation loops.  Each
test runs one of the paper's four figure families through both the legacy
loop and the new engine on identical seeds (same replayed trace, same
workload rng) and requires the resulting :class:`SimulationSummary` to be
identical — slot by slot, sample by sample.  Values use a tight relative
tolerance because per-stream value attribution sums the same floats in a
different order than the legacy ledger-wide sums; counts must be exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from legacy_engines import (
    LegacyLocationMonitoringSimulation,
    LegacyMixSimulation,
    LegacyOneShotSimulation,
    LegacyRegionMonitoringSimulation,
)
from repro.core import (
    BaselineAllocator,
    BaselineMixAllocator,
    GreedyAllocator,
    LocalSearchPointAllocator,
    LocationMonitoringController,
    LocationMonitoringSimulation,
    MixAllocator,
    MixSimulation,
    OneShotSimulation,
    OptimalPointAllocator,
    RegionMonitoringController,
    RegionMonitoringSimulation,
    SimulationSummary,
)
from repro.datasets import build_intel_scenario, build_ozone_dataset, build_rwm_scenario
from repro.queries import (
    AggregateQueryWorkload,
    LocationMonitoringWorkload,
    PointQueryWorkload,
    RegionMonitoringWorkload,
)

SCENARIO = build_rwm_scenario(seed=101, n_sensors=50, n_slots=10)
OZONE = build_ozone_dataset(seed=101)
N_SLOTS = 5
APPROX = dict(rel=1e-9, abs=1e-9)


def assert_summaries_equal(new: SimulationSummary, old: SimulationSummary) -> None:
    assert new.n_slots == old.n_slots
    for got, want in zip(new.slots, old.slots):
        assert got.slot == want.slot
        assert got.issued == want.issued
        assert got.answered == want.answered
        assert got.value == pytest.approx(want.value, **APPROX)
        assert got.cost == pytest.approx(want.cost, **APPROX)
        assert got.qualities == pytest.approx(want.qualities, **APPROX)
        assert set(got.extras) == set(want.extras)
        for key, value in want.extras.items():
            assert got.extras[key] == pytest.approx(value, **APPROX)
    assert set(new.quality_stats) == set(old.quality_stats)
    for label, stat in old.quality_stats.items():
        assert new.quality_stats[label].count == stat.count
        assert new.quality_stats[label].total == pytest.approx(stat.total, **APPROX)
        assert new.quality_stats[label].m2 == pytest.approx(stat.m2, abs=1e-9)
    assert new.total_queries == old.total_queries
    assert new.positive_utility_queries == old.positive_utility_queries
    assert new.average_utility == pytest.approx(old.average_utility, **APPROX)
    assert new.satisfaction_ratio == pytest.approx(old.satisfaction_ratio, **APPROX)


def _point_workload(budget=15.0, n_queries=25):
    return PointQueryWorkload(
        SCENARIO.working_region, n_queries=n_queries, budget=budget, dmax=SCENARIO.dmax
    )


def _aggregate_workload(factor=15.0):
    return AggregateQueryWorkload(
        SCENARIO.working_region, budget_factor=factor, mean_queries=4,
        count_spread=2, sensing_range=SCENARIO.dmax,
    )


def _lm_workload(factor=15.0):
    return LocationMonitoringWorkload(
        SCENARIO.working_region, OZONE.values, OZONE.model(),
        budget_factor=factor, max_live=8, arrivals_per_slot=3,
        duration_range=(2, 5), dmax=SCENARIO.dmax,
    )


class TestOneShotParity:
    @pytest.mark.parametrize(
        "allocator_factory",
        [OptimalPointAllocator, LocalSearchPointAllocator, BaselineAllocator],
        ids=["optimal", "local_search", "baseline"],
    )
    def test_point_queries(self, allocator_factory):
        old = LegacyOneShotSimulation(
            SCENARIO.make_fleet(), _point_workload(), allocator_factory(),
            np.random.default_rng(7),
        ).run(N_SLOTS)
        new = OneShotSimulation(
            SCENARIO.make_fleet(), _point_workload(), allocator_factory(),
            np.random.default_rng(7),
        ).run(N_SLOTS)
        assert_summaries_equal(new, old)

    def test_aggregate_queries_greedy(self):
        old = LegacyOneShotSimulation(
            SCENARIO.make_fleet(), _aggregate_workload(), GreedyAllocator(),
            np.random.default_rng(9),
        ).run(N_SLOTS)
        new = OneShotSimulation(
            SCENARIO.make_fleet(), _aggregate_workload(), GreedyAllocator(),
            np.random.default_rng(9),
        ).run(N_SLOTS)
        assert_summaries_equal(new, old)


class TestLocationMonitoringParity:
    @pytest.mark.parametrize(
        "allocator_factory,controller_kwargs",
        [
            (LocalSearchPointAllocator, {}),
            (OptimalPointAllocator, {}),
            (BaselineAllocator, {"opportunistic": False, "scheduled_only": True}),
        ],
        ids=["alg2_ls", "alg2_o", "baseline"],
    )
    def test_location_monitoring(self, allocator_factory, controller_kwargs):
        old = LegacyLocationMonitoringSimulation(
            SCENARIO.make_fleet(), _lm_workload(), allocator_factory(),
            np.random.default_rng(21),
            controller=LocationMonitoringController(**controller_kwargs),
        ).run(N_SLOTS)
        new = LocationMonitoringSimulation(
            SCENARIO.make_fleet(), _lm_workload(), allocator_factory(),
            np.random.default_rng(21),
            controller=LocationMonitoringController(**controller_kwargs),
        ).run(N_SLOTS)
        assert_summaries_equal(new, old)


class TestRegionMonitoringParity:
    @pytest.mark.parametrize(
        "allocator_factory,controller_factory",
        [
            (OptimalPointAllocator, RegionMonitoringController),
            (
                BaselineAllocator,
                lambda: RegionMonitoringController(
                    weight_fn=lambda k: 1.0, use_shared_sensors=False
                ),
            ),
        ],
        ids=["alg3", "baseline"],
    )
    def test_region_monitoring(self, allocator_factory, controller_factory):
        world = build_intel_scenario(seed=41, n_sensors=12, n_slots=10)
        workload_args = dict(
            budget_factor=15.0, duration_range=(2, 4),
            sensing_radius=world.scenario.dmax,
        )
        old = LegacyRegionMonitoringSimulation(
            world.scenario.make_fleet(),
            RegionMonitoringWorkload(
                world.scenario.working_region, world.gp, **workload_args
            ),
            allocator_factory(),
            np.random.default_rng(31),
            controller=controller_factory(),
        ).run(N_SLOTS)
        new = RegionMonitoringSimulation(
            world.scenario.make_fleet(),
            RegionMonitoringWorkload(
                world.scenario.working_region, world.gp, **workload_args
            ),
            allocator_factory(),
            np.random.default_rng(31),
            controller=controller_factory(),
        ).run(N_SLOTS)
        assert_summaries_equal(new, old)


class TestMixParity:
    def _run(self, sim_cls, mix_factory, seed=3):
        return sim_cls(
            SCENARIO.make_fleet(),
            _point_workload(n_queries=10),
            _aggregate_workload(),
            _lm_workload(),
            mix_factory(),
            np.random.default_rng(seed),
        ).run(N_SLOTS)

    def test_algorithm5(self):
        old = self._run(LegacyMixSimulation, MixAllocator)
        new = self._run(MixSimulation, MixAllocator)
        assert_summaries_equal(new, old)

    def test_baseline_mix(self):
        old = self._run(LegacyMixSimulation, BaselineMixAllocator)
        new = self._run(MixSimulation, BaselineMixAllocator)
        assert_summaries_equal(new, old)

    def test_algorithm5_with_region_stream(self):
        world = build_intel_scenario(seed=41, n_sensors=12, n_slots=10)
        rm_workload_args = dict(
            budget_factor=10.0, duration_range=(2, 4),
            sensing_radius=world.scenario.dmax,
        )

        def run(sim_cls):
            return sim_cls(
                world.scenario.make_fleet(),
                PointQueryWorkload(
                    world.scenario.working_region, n_queries=6, budget=15.0,
                    dmax=world.scenario.dmax,
                ),
                AggregateQueryWorkload(
                    world.scenario.working_region, budget_factor=15.0,
                    mean_queries=2, count_spread=1,
                    sensing_range=world.scenario.dmax,
                ),
                LocationMonitoringWorkload(
                    world.scenario.working_region, OZONE.values, OZONE.model(),
                    budget_factor=15.0, max_live=4, arrivals_per_slot=2,
                    duration_range=(2, 4), dmax=world.scenario.dmax,
                ),
                MixAllocator(),
                np.random.default_rng(13),
                region_workload=RegionMonitoringWorkload(
                    world.scenario.working_region, world.gp, **rm_workload_args
                ),
            ).run(N_SLOTS)

        old = run(LegacyMixSimulation)
        new = run(MixSimulation)
        assert_summaries_equal(new, old)
