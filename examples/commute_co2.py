#!/usr/bin/env python
"""Trajectory queries and event detection along a commute.

Section 2.2.3's motivating user: "the current maximum value of CO2 in the
way from her house to her work".  We model the commute as a polyline
trajectory, ask a :class:`TrajectoryQuery` (an aggregate over the corridor,
eq. 5), and additionally register the paper's sketched *event detection*
extension (Q3): notify when CO2 exceeds a threshold with 90% confidence —
which requires redundant readings from independent sensors.

Run:  python examples/commute_co2.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EventDetectionQuery,
    FleetConfig,
    GreedyAllocator,
    Location,
    RandomWaypointMobility,
    Region,
    SensorFleet,
    Trajectory,
    TrajectoryQuery,
)
from repro.phenomena import CorrelatedField
from repro.phenomena.gaussian_process import RBFKernel

N_SLOTS = 8


def main() -> None:
    rng = np.random.default_rng(42)
    city = Region.from_origin(40, 40)
    fleet = SensorFleet(
        RandomWaypointMobility(city, n_sensors=120, rng=rng), city, FleetConfig(), rng
    )
    # A CO2-like field over the city (ppm above urban background).
    co2 = CorrelatedField(
        rng, region=city, kernel=RBFKernel(variance=60.0, length_scale=5.0),
        mean=420.0, temporal_rho=0.9,
    )

    commute = Trajectory.from_points(
        [Location(3, 3), Location(15, 8), Location(25, 20), Location(36, 35)]
    )
    checkpoint = Location(25, 20)  # the notorious intersection
    event = EventDetectionQuery(
        checkpoint, t1=0, t2=N_SLOTS - 1, threshold=424.0, confidence=0.9,
        budget=N_SLOTS * 25.0, theta_min=0.1, dmax=6.0,
    )
    allocator = GreedyAllocator()

    print("slot  corridor-cover  max-CO2(ppm)  event")
    for t in range(N_SLOTS):
        sensors = fleet.announcements()
        commute_query = TrajectoryQuery(
            commute, budget=120.0, sensing_range=6.0, spacing=2.0
        )
        slot_queries = [commute_query, event.create_slot_query(t)]
        result = allocator.allocate(slot_queries, sensors)

        # Trajectory answer: readings of the sensors along the corridor.
        assigned = result.assignments.get(commute_query.query_id, ())
        readings = [
            co2.reading(result.selected[sid].location, result.selected[sid].inaccuracy, rng)
            for sid in assigned
        ]
        max_co2 = max(readings) if readings else float("nan")
        coverage = commute_query.coverage(
            [result.selected[sid].location for sid in assigned]
        )

        # Event answer: redundant readings near the checkpoint.
        event_child = slot_queries[1]
        event_sensors = [
            result.selected[sid]
            for sid in result.assignments.get(event_child.query_id, ())
        ]
        event_readings = [
            (co2.reading(s.location, s.inaccuracy, rng), event_child.quality(s))
            for s in event_sensors
        ]
        fired = event.apply_readings(
            t, event_readings, result.query_payment(event_child.query_id)
        )

        fleet.record_measurements(list(result.selected))
        fleet.advance()
        co2.advance()
        print(
            f"{t:4d}  {coverage:14.1%}  {max_co2:12.1f}  "
            f"{'ALERT' if fired else '-'}"
        )

    print(f"\nevents detected: {len(event.detections)}; spent {event.spent:.1f} of "
          f"{event.budget:.1f} budget")


if __name__ == "__main__":
    main()
