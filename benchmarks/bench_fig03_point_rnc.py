"""Figure 3: single-sensor point queries on the RNC substitute."""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig3, format_figure


def test_fig3_point_queries_rnc(benchmark, scale):
    result = run_once(benchmark, fig3, scale)
    print()
    print(format_figure(result))

    assert result.dominates("Optimal", "Baseline", "avg_utility", slack=1e-9)
    assert result.dominates("Optimal", "LocalSearch", "avg_utility", slack=1e-6)
    assert result.metric("Baseline", "avg_utility")[0] == 0.0
    # LocalSearch tracks Optimal closely (the paper's headline observation).
    for opt, ls in zip(
        result.metric("Optimal", "avg_utility"),
        result.metric("LocalSearch", "avg_utility"),
    ):
        if opt > 0:
            assert ls >= 0.9 * opt
