"""Tests for the command-line interface."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.experiments import CI
from repro.experiments.reporting import ascii_chart
from repro.experiments.runner import FigureResult


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.command == "figures"
        assert args.figure is None
        assert not args.all

    def test_figures_repeatable(self):
        args = build_parser().parse_args(
            ["figures", "--figure", "fig2", "--figure", "fig3"]
        )
        assert args.figure == ["fig2", "fig3"]

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--scale", "giant"])


SPEC_PAYLOAD = {
    "name": "cli-svc",
    "dataset": "rwm",
    "seed": 5,
    "n_sensors": 250,
    "n_slots": 4,
    "allocator": "greedy",
    "service": {
        "max_queue_depth": 64,
        "max_admitted_per_tick": 16,
        "arrivals": {"profile": "poisson", "rate": 5, "seed": 2},
    },
    "streams": [
        {"kind": "point", "params": {"n_queries": 3, "budget": 12.0}}
    ],
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "svc.json"
    path.write_text(json.dumps(SPEC_PAYLOAD))
    return path


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "repro" in out

    def test_info_enumerates_every_subcommand(self, capsys):
        """``repro info`` introspects the parser: every registered
        subcommand appears, including ones added after it."""
        main(["info"])
        out = capsys.readouterr().out
        sub = next(
            a for a in build_parser()._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        listed = {
            line.split()[0]
            for line in out.splitlines()
            if line.startswith("  ") and line.strip()
        }
        assert set(sub.choices) <= listed
        assert {"serve", "loadgen", "scenario", "lint"} <= listed

    def test_unknown_figure_exits_2(self, capsys):
        assert main(["figures", "--figure", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_figures_runs_and_dumps_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        # Shrink further via a micro scale injected through the registry.
        import repro.cli as cli_module
        from repro.experiments import fig2

        micro = dataclasses.replace(
            CI, n_slots=2, point_queries_per_slot=20, rwm_sensors=30, budgets=(7, 35)
        )
        monkeypatch.setattr(
            cli_module, "ALL_FIGURES", {"fig2": lambda scale, seed: fig2(micro, seed)}
        )
        code = main(["figures", "--figure", "fig2", "--out", str(tmp_path), "--chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "avg_utility" in out
        payload = json.loads((tmp_path / "fig2_ci.json").read_text())
        assert payload["figure_id"] == "fig2"
        assert "Optimal" in payload["series"]


class TestScenarioJson:
    def test_scenario_json_emits_shared_payload(self, spec_file, capsys):
        assert main(["scenario", str(spec_file), "--slots", "2", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["name"] == "cli-svc"
        assert payload["n_slots"] == 2
        assert set(payload["phase_timings"]) == {
            "announce", "kernel", "allocate", "settle"
        }
        assert len(payload["slots"]) == 2
        for key in ("average_utility", "satisfaction_ratio", "quality"):
            assert key in payload

    def test_scenario_json_multiple_specs_is_an_array(
        self, spec_file, tmp_path, capsys
    ):
        other = tmp_path / "other.json"
        other.write_text(json.dumps({**SPEC_PAYLOAD, "name": "cli-svc-2"}))
        assert (
            main(["scenario", str(spec_file), str(other), "--slots", "2", "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert [p["name"] for p in payload] == ["cli-svc", "cli-svc-2"]


class TestServe:
    def test_serve_exit_after_with_metrics(self, spec_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(
            ["serve", "--spec", str(spec_file), "--slots", "3", "--exit-after",
             "--metrics", str(metrics)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ticks" in out and "slot latency" in out
        data = json.loads(metrics.read_text())
        assert data["n_slots"] == 3
        assert data["service"]["counters"]["submitted"] > 0
        assert len(data["service"]["slots"]) == 3

    def test_serve_rejects_continuous_stream_specs(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps(
                {**SPEC_PAYLOAD, "streams": [{"kind": "event", "params": {}}]}
            )
        )
        assert main(["serve", "--spec", str(bad), "--slots", "1",
                     "--exit-after"]) == 2
        assert "one-shot" in capsys.readouterr().err


class TestLoadgen:
    def test_loadgen_parity_check_passes(self, spec_file, tmp_path, capsys):
        csv_path = tmp_path / "slots.csv"
        code = main(
            ["loadgen", str(spec_file), "--slots", "3", "--check-parity",
             "--metrics-csv", str(csv_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parity OK" in out
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 4

    def test_loadgen_bursty_flags_saturate_the_queue(self, spec_file, capsys):
        code = main(
            ["loadgen", str(spec_file), "--slots", "4", "--profile", "bursty",
             "--rate", "2", "--burst-rate", "120", "--period", "4",
             "--burst-length", "1", "--queue-depth", "16", "--admit-cap", "8",
             "--check-parity"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parity OK" in out
        assert "queue_full" in out


class TestAsciiChart:
    def _result(self):
        result = FigureResult("figX", "demo", "budget", x_values=[1, 2, 3])
        for v in (1.0, 2.0, 3.0):
            result.add("A", "m", v)
        for v in (3.0, 2.0, 1.0):
            result.add("B", "m", v)
        return result

    def test_chart_contains_symbols_and_ranges(self):
        chart = ascii_chart(self._result(), "m", width=20, height=6)
        assert "o=A" in chart and "x=B" in chart
        assert "y: 1 .. 3" in chart
        assert "x: 1 .. 3" in chart

    def test_chart_missing_metric(self):
        assert "no series" in ascii_chart(self._result(), "missing")

    def test_chart_flat_series(self):
        result = FigureResult("f", "t", "x", x_values=[1])
        result.add("A", "m", 5.0)
        chart = ascii_chart(result, "m")
        assert "o=A" in chart


class TestLint:
    """The ``repro lint`` subcommand end to end (the CI gate)."""

    REPO_ROOT = str(Path(__file__).resolve().parents[1])

    @staticmethod
    def _violating_tree(tmp_path):
        bad = tmp_path / "src" / "repro" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import time\n"
            "import numpy as np\n"
            "fn = getattr(kernel, 'definitely_not_a_capability', None)\n"
            "noise = np.random.rand(3)\n"
            "stamp = time.time()\n"
        )
        return tmp_path

    def test_repo_lints_clean(self, capsys):
        assert main(["lint", "--root", self.REPO_ROOT]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert code in out

    def test_injected_violations_fail_with_json_report(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        assert main(["lint", "--root", str(root), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        fired = {f["rule"] for f in payload["findings"]}
        assert {"capability-hook", "determinism"} <= fired

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = self._violating_tree(tmp_path)
        baseline = root / "lint-baseline.json"
        assert main([
            "lint", "--root", str(root),
            "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main([
            "lint", "--root", str(root), "--baseline", str(baseline)
        ]) == 0
        assert "3 baselined" in capsys.readouterr().out

    def test_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--root", self.REPO_ROOT, "--rules", "nope"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_rule_subset_on_single_path(self, capsys):
        assert main([
            "lint", "--root", self.REPO_ROOT,
            "--rules", "determinism", "src/repro/core",
        ]) == 0
