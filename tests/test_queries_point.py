"""Tests for point queries (eqs. 3-4) and multi-sensor point queries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_point_query, make_snapshot
from repro.queries import MultiSensorPointQuery, PointQuery, QueryType, reading_quality
from repro.spatial import Location


class TestReadingQuality:
    def test_perfect_reading_at_query_location(self):
        snap = make_snapshot(x=0, y=0, inaccuracy=0.0, trust=1.0)
        assert reading_quality(snap, Location(0, 0), dmax=5.0) == pytest.approx(1.0)

    def test_decay_terms_multiply(self):
        snap = make_snapshot(x=3, y=0, inaccuracy=0.1, trust=0.8)
        # eq. 4: (1 - 0.1) * (1 - 3/5) * 0.8
        expected = 0.9 * 0.4 * 0.8
        assert reading_quality(snap, Location(0, 0), dmax=5.0) == pytest.approx(expected)

    def test_zero_beyond_dmax(self):
        snap = make_snapshot(x=6, y=0)
        assert reading_quality(snap, Location(0, 0), dmax=5.0) == 0.0

    def test_zero_at_exactly_dmax(self):
        snap = make_snapshot(x=5, y=0)
        assert reading_quality(snap, Location(0, 0), dmax=5.0) == pytest.approx(0.0)

    def test_invalid_dmax(self):
        with pytest.raises(ValueError):
            reading_quality(make_snapshot(), Location(0, 0), dmax=0.0)

    @given(
        st.floats(0, 10),
        st.floats(0, 0.99),
        st.floats(0, 1),
    )
    def test_quality_in_unit_interval(self, distance, gamma, tau):
        snap = make_snapshot(x=distance, y=0, inaccuracy=gamma, trust=tau)
        q = reading_quality(snap, Location(0, 0), dmax=5.0)
        assert 0.0 <= q <= 1.0


class TestPointQuery:
    def test_eq3_value(self):
        query = make_point_query(budget=20.0, theta_min=0.2, dmax=5.0)
        snap = make_snapshot(x=1, y=0)
        theta = reading_quality(snap, query.location, 5.0)
        assert query.value_single(snap) == pytest.approx(20.0 * theta)

    def test_value_zero_below_theta_min(self):
        query = make_point_query(budget=20.0, theta_min=0.9, dmax=5.0)
        snap = make_snapshot(x=3, y=0)  # theta = 0.4 < 0.9
        assert query.value_single(snap) == 0.0

    def test_set_value_is_best_single(self):
        query = make_point_query(budget=10.0)
        near = make_snapshot(0, x=0.5, y=0)
        far = make_snapshot(1, x=4, y=0)
        assert query.value([near, far]) == pytest.approx(query.value_single(near))

    def test_value_of_empty_set(self):
        assert make_point_query().value([]) == 0.0

    def test_best_sensor(self):
        query = make_point_query(budget=10.0)
        near = make_snapshot(0, x=0.5, y=0)
        far = make_snapshot(1, x=4, y=0)
        assert query.best_sensor([far, near]) is near
        assert query.best_sensor([make_snapshot(2, x=9, y=9)]) is None

    def test_relevant(self):
        query = make_point_query(theta_min=0.2, dmax=5.0)
        assert query.relevant(make_snapshot(x=1, y=0))
        assert not query.relevant(make_snapshot(x=5.5, y=0))

    def test_incremental_state_matches_value(self):
        query = make_point_query(budget=10.0)
        snaps = [make_snapshot(i, x=i * 0.7, y=0) for i in range(5)]
        state = query.new_state()
        for s in snaps:
            gain = state.gain(s)
            assert gain == pytest.approx(state.add(s))
        assert state.value == pytest.approx(query.value(snaps))

    def test_query_type_and_max_value(self):
        query = make_point_query(budget=17.0)
        assert query.query_type is QueryType.POINT
        assert query.max_value == 17.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PointQuery(Location(0, 0), budget=-1.0)
        with pytest.raises(ValueError):
            PointQuery(Location(0, 0), budget=1.0, theta_min=1.5)
        with pytest.raises(ValueError):
            PointQuery(Location(0, 0), budget=1.0, dmax=0.0)

    def test_unique_ids(self):
        a, b = make_point_query(), make_point_query()
        assert a.query_id != b.query_id

    @given(st.floats(0, 8), st.floats(0, 8))
    @settings(max_examples=30)
    def test_value_bounded_by_budget(self, x, y):
        query = make_point_query(budget=25.0)
        snap = make_snapshot(x=x, y=y)
        assert 0.0 <= query.value_single(snap) <= 25.0


class TestMultiSensorPointQuery:
    def _query(self, k=3, budget=30.0):
        return MultiSensorPointQuery(
            Location(0, 0), budget=budget, n_readings=k, theta_min=0.0, dmax=5.0
        )

    def test_value_grows_until_k(self):
        query = self._query(k=2)
        snaps = [make_snapshot(i, x=0.1 * i, y=0) for i in range(4)]
        v1 = query.value(snaps[:1])
        v2 = query.value(snaps[:2])
        v3 = query.value(snaps[:3])
        assert v1 < v2
        assert v3 == pytest.approx(v2)  # extra sensors beyond k add ~nothing

    def test_full_budget_needs_k_perfect_readings(self):
        query = self._query(k=2, budget=30.0)
        perfect = [make_snapshot(i, x=0, y=0) for i in range(2)]
        assert query.value(perfect) == pytest.approx(30.0)

    def test_theta_min_filters(self):
        query = MultiSensorPointQuery(
            Location(0, 0), budget=10.0, n_readings=2, theta_min=0.9, dmax=5.0
        )
        weak = make_snapshot(x=3, y=0)
        assert query.value([weak]) == 0.0
        assert not query.relevant(weak)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MultiSensorPointQuery(Location(0, 0), budget=1.0, n_readings=0)

    @given(
        st.lists(st.floats(0, 6), min_size=0, max_size=5),
        st.lists(st.floats(0, 6), min_size=0, max_size=3),
        st.floats(0, 6),
    )
    @settings(max_examples=40)
    def test_submodular(self, base_x, more_x, extra_x):
        """Rank-truncated quality sums have diminishing returns."""
        query = self._query(k=3)
        base = [make_snapshot(i, x=x, y=0) for i, x in enumerate(base_x)]
        more = [make_snapshot(100 + i, x=x, y=0) for i, x in enumerate(more_x)]
        extra = make_snapshot(999, x=extra_x, y=0)
        gain_small = query.value(base + [extra]) - query.value(base)
        gain_big = query.value(base + more + [extra]) - query.value(base + more)
        assert gain_big <= gain_small + 1e-9

    @given(st.lists(st.floats(0, 6), min_size=0, max_size=6), st.floats(0, 6))
    @settings(max_examples=40)
    def test_monotone(self, xs, extra_x):
        query = self._query(k=3)
        base = [make_snapshot(i, x=x, y=0) for i, x in enumerate(xs)]
        extra = make_snapshot(999, x=extra_x, y=0)
        assert query.value(base + [extra]) >= query.value(base) - 1e-12
