"""Tests for the slot-synchronous simulation engines and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BaselineAllocator,
    BaselineMixAllocator,
    LocationMonitoringController,
    LocationMonitoringSimulation,
    MixAllocator,
    MixSimulation,
    OneShotSimulation,
    OptimalPointAllocator,
    RegionMonitoringSimulation,
    SimulationSummary,
    SlotRecord,
)
from repro.datasets import build_intel_scenario, build_ozone_dataset, build_rwm_scenario
from repro.queries import (
    AggregateQueryWorkload,
    LocationMonitoringWorkload,
    PointQueryWorkload,
    RegionMonitoringWorkload,
)

SCENARIO = build_rwm_scenario(seed=77, n_sensors=60, n_slots=8)
OZONE = build_ozone_dataset(seed=77)


class TestMetrics:
    def test_slot_record_utility(self):
        record = SlotRecord(slot=0, value=10.0, cost=4.0)
        assert record.utility == pytest.approx(6.0)

    def test_summary_aggregates(self):
        summary = SimulationSummary()
        summary.slots.append(SlotRecord(0, value=10, cost=5, issued=4, answered=2))
        summary.slots.append(SlotRecord(1, value=20, cost=5, issued=6, answered=4))
        assert summary.average_utility == pytest.approx(10.0)
        assert summary.satisfaction_ratio == pytest.approx(0.6)
        assert summary.total_utility == pytest.approx(20.0)

    def test_empty_summary(self):
        summary = SimulationSummary()
        assert summary.average_utility == 0.0
        assert summary.satisfaction_ratio == 0.0
        assert summary.average_quality("point") == 0.0
        assert summary.egalitarian_ratio == 0.0

    def test_quality_samples(self):
        summary = SimulationSummary()
        summary.add_quality("point", 0.5)
        summary.add_quality("point", 1.0)
        assert summary.average_quality("point") == pytest.approx(0.75)

    def test_egalitarian_counting(self):
        summary = SimulationSummary()
        summary.record_query_outcome(1.0)
        summary.record_query_outcome(0.0)
        summary.record_query_outcome(-1.0)
        assert summary.egalitarian_ratio == pytest.approx(1 / 3)


class TestOneShotSimulation:
    def test_point_simulation_produces_metrics(self):
        workload = PointQueryWorkload(
            SCENARIO.working_region, n_queries=30, budget=15.0, dmax=SCENARIO.dmax
        )
        sim = OneShotSimulation(
            SCENARIO.make_fleet(), workload, OptimalPointAllocator(),
            np.random.default_rng(0),
        )
        summary = sim.run(4)
        assert summary.n_slots == 4
        assert 0.0 <= summary.satisfaction_ratio <= 1.0
        assert summary.total_queries == 120
        assert summary.quality_count("point") > 0
        assert 0.0 <= summary.average_quality("point") <= 1.0

    def test_sensor_lifetime_is_booked(self):
        fleet = SCENARIO.make_fleet()
        workload = PointQueryWorkload(
            SCENARIO.working_region, n_queries=30, budget=25.0, dmax=SCENARIO.dmax
        )
        sim = OneShotSimulation(fleet, workload, OptimalPointAllocator(), np.random.default_rng(0))
        sim.run(3)
        assert fleet.total_readings() > 0

    def test_identical_seeds_reproduce(self):
        def run():
            workload = PointQueryWorkload(
                SCENARIO.working_region, n_queries=20, budget=15.0, dmax=SCENARIO.dmax
            )
            sim = OneShotSimulation(
                SCENARIO.make_fleet(), workload, OptimalPointAllocator(),
                np.random.default_rng(5),
            )
            return sim.run(3).total_utility

        assert run() == pytest.approx(run())

    def test_aggregate_simulation(self):
        workload = AggregateQueryWorkload(
            SCENARIO.working_region, budget_factor=15.0, mean_queries=5,
            count_spread=2, sensing_range=SCENARIO.dmax,
        )
        from repro.core import GreedyAllocator

        sim = OneShotSimulation(
            SCENARIO.make_fleet(), workload, GreedyAllocator(), np.random.default_rng(0)
        )
        summary = sim.run(3)
        assert summary.n_slots == 3


class TestLocationMonitoringSimulation:
    def _workload(self, factor=15.0):
        return LocationMonitoringWorkload(
            SCENARIO.working_region, OZONE.values, OZONE.model(),
            budget_factor=factor, max_live=10, arrivals_per_slot=3,
            duration_range=(3, 6), dmax=SCENARIO.dmax,
        )

    def test_queries_flushed_at_end(self):
        sim = LocationMonitoringSimulation(
            SCENARIO.make_fleet(), self._workload(), OptimalPointAllocator(),
            np.random.default_rng(0),
        )
        summary = sim.run(6)
        assert not sim.live  # everything retired/flushed
        assert summary.total_queries > 0

    def test_live_count_respects_cap(self):
        sim = LocationMonitoringSimulation(
            SCENARIO.make_fleet(), self._workload(), OptimalPointAllocator(),
            np.random.default_rng(0),
        )
        summary = sim.run(6)
        for record in summary.slots:
            assert record.extras["live"] <= 10

    def test_baseline_controller_variant(self):
        controller = LocationMonitoringController(opportunistic=False, scheduled_only=True)
        sim = LocationMonitoringSimulation(
            SCENARIO.make_fleet(), self._workload(), BaselineAllocator(),
            np.random.default_rng(0), controller=controller,
        )
        summary = sim.run(6)
        assert summary.n_slots == 6


class TestRegionMonitoringSimulation:
    def test_runs_and_collects_quality(self):
        world = build_intel_scenario(seed=31, n_sensors=15, n_slots=8)
        workload = RegionMonitoringWorkload(
            world.scenario.working_region, world.gp, budget_factor=15.0,
            duration_range=(3, 5), sensing_radius=world.scenario.dmax,
        )
        sim = RegionMonitoringSimulation(
            world.scenario.make_fleet(), workload, OptimalPointAllocator(),
            np.random.default_rng(0),
        )
        summary = sim.run(6)
        assert summary.n_slots == 6
        assert "region_monitoring" in summary.quality_stats


class TestMixSimulation:
    def _sim(self, mix):
        point = PointQueryWorkload(
            SCENARIO.working_region, n_queries=15, budget=15.0, dmax=SCENARIO.dmax
        )
        agg = AggregateQueryWorkload(
            SCENARIO.working_region, budget_factor=15.0, mean_queries=3,
            count_spread=1, sensing_range=SCENARIO.dmax,
        )
        lm = LocationMonitoringWorkload(
            SCENARIO.working_region, OZONE.values, OZONE.model(),
            budget_factor=15.0, max_live=6, arrivals_per_slot=2,
            duration_range=(3, 5), dmax=SCENARIO.dmax,
        )
        return MixSimulation(
            SCENARIO.make_fleet(), point, agg, lm, mix, np.random.default_rng(3)
        )

    def test_mix_simulation_runs(self):
        summary = self._sim(MixAllocator()).run(5)
        assert summary.n_slots == 5
        assert summary.satisfaction_ratio >= 0.0

    def test_baseline_mix_simulation_runs(self):
        summary = self._sim(BaselineMixAllocator()).run(5)
        assert summary.n_slots == 5

    def test_mix_tracks_per_type_quality(self):
        summary = self._sim(MixAllocator()).run(5)
        assert "location_monitoring" in summary.quality_stats
