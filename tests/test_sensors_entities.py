"""Tests for Sensor, SensorSnapshot, SensorFleet and trust models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mobility import RandomWaypointMobility, StationaryMobility
from repro.sensors import (
    BetaTrust,
    FleetConfig,
    FixedEnergyCost,
    FullTrust,
    LinearEnergyCost,
    PrivacyCostModel,
    PrivacySensitivity,
    Sensor,
    SensorFleet,
    SensorSnapshot,
    TieredTrust,
    UniformTrust,
)
from repro.spatial import Location, Region


class TestSensorSnapshot:
    def test_valid_snapshot(self):
        snap = SensorSnapshot(1, Location(0, 0), 10.0, 0.1, 0.9)
        assert snap.sensor_id == 1

    def test_invalid_fields(self):
        with pytest.raises(ValueError):
            SensorSnapshot(1, Location(0, 0), -1.0, 0.1, 0.9)
        with pytest.raises(ValueError):
            SensorSnapshot(1, Location(0, 0), 1.0, 1.5, 0.9)
        with pytest.raises(ValueError):
            SensorSnapshot(1, Location(0, 0), 1.0, 0.1, -0.2)

    def test_frozen(self):
        snap = SensorSnapshot(1, Location(0, 0), 10.0, 0.1, 0.9)
        with pytest.raises(AttributeError):
            snap.cost = 5.0


class TestSensor:
    def test_energy_tracks_lifetime(self):
        sensor = Sensor(0, lifetime=4)
        assert sensor.remaining_energy == 1.0
        sensor.record_measurement(0)
        assert sensor.remaining_energy == pytest.approx(0.75)

    def test_exhaustion(self):
        sensor = Sensor(0, lifetime=2)
        sensor.record_measurement(0)
        sensor.record_measurement(1)
        assert sensor.is_exhausted
        with pytest.raises(RuntimeError):
            sensor.record_measurement(2)

    def test_announce_cost_fixed(self):
        sensor = Sensor(0, energy_model=FixedEnergyCost(10.0))
        assert sensor.announce_cost(0) == 10.0

    def test_announce_cost_rises_with_use_under_linear_model(self):
        sensor = Sensor(0, lifetime=10, energy_model=LinearEnergyCost(10.0, beta=2.0))
        fresh = sensor.announce_cost(0)
        for t in range(5):
            sensor.record_measurement(t)
        assert sensor.announce_cost(5) > fresh

    def test_privacy_history_pruned_to_window(self):
        sensor = Sensor(
            0,
            lifetime=100,
            privacy_model=PrivacyCostModel(PrivacySensitivity.HIGH, window=3),
        )
        for t in range(10):
            sensor.record_measurement(t)
        assert all(9 - t <= 3 for t in sensor.report_history)

    def test_privacy_cost_decays_when_silent(self):
        sensor = Sensor(
            0,
            lifetime=100,
            privacy_model=PrivacyCostModel(PrivacySensitivity.VERY_HIGH, window=5),
        )
        sensor.record_measurement(0)
        just_after = sensor.announce_cost(1)
        much_later = sensor.announce_cost(20)
        assert much_later < just_after

    def test_snapshot_carries_attributes(self):
        sensor = Sensor(3, inaccuracy=0.15, trust=0.8)
        snap = sensor.snapshot(Location(1, 2), now=0)
        assert (snap.sensor_id, snap.inaccuracy, snap.trust) == (3, 0.15, 0.8)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Sensor(0, inaccuracy=2.0)
        with pytest.raises(ValueError):
            Sensor(0, trust=-0.5)
        with pytest.raises(ValueError):
            Sensor(0, lifetime=0)


class TestTrustModels:
    def test_full_trust(self):
        values = FullTrust().sample(10, np.random.default_rng(0))
        assert (values == 1.0).all()

    def test_uniform_trust_bounds(self):
        values = UniformTrust(0.3, 0.7).sample(200, np.random.default_rng(0))
        assert values.min() >= 0.3 and values.max() <= 0.7

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            UniformTrust(0.9, 0.1)

    def test_beta_trust_in_unit_interval(self):
        values = BetaTrust(2, 5).sample(100, np.random.default_rng(0))
        assert ((0 <= values) & (values <= 1)).all()

    def test_beta_invalid(self):
        with pytest.raises(ValueError):
            BetaTrust(0, 1)

    def test_tiered_trust_levels(self):
        model = TieredTrust(levels=(1.0, 0.5), weights=(0.5, 0.5))
        values = model.sample(100, np.random.default_rng(0))
        assert set(np.unique(values)) <= {1.0, 0.5}

    def test_tiered_invalid(self):
        with pytest.raises(ValueError):
            TieredTrust(levels=(1.0,), weights=(0.5, 0.5))
        with pytest.raises(ValueError):
            TieredTrust(levels=(1.0, 0.5), weights=(0.9, 0.5))


class TestFleet:
    REGION = Region.from_origin(40, 40)
    HOTSPOT = Region.centered_in(REGION, 20, 20)

    def _fleet(self, seed=0, **config_kwargs) -> SensorFleet:
        rng = np.random.default_rng(seed)
        mobility = RandomWaypointMobility(self.REGION, 50, rng)
        return SensorFleet(mobility, self.HOTSPOT, FleetConfig(**config_kwargs), rng)

    def test_announcements_only_inside_hotspot(self):
        fleet = self._fleet()
        for snap in fleet.announcements():
            assert self.HOTSPOT.contains(snap.location)

    def test_announcement_costs_default_to_base_price(self):
        fleet = self._fleet()
        assert all(s.cost == 10.0 for s in fleet.announcements())

    def test_inaccuracy_range_respected(self):
        fleet = self._fleet(inaccuracy_range=(0.0, 0.2))
        gammas = [s.inaccuracy for s in fleet.sensors]
        assert min(gammas) >= 0.0 and max(gammas) <= 0.2

    def test_exhausted_sensors_silent(self):
        fleet = self._fleet(lifetime=1)
        first = fleet.announcements()
        assert first
        fleet.record_measurements([s.sensor_id for s in first])
        fleet.advance()
        announced_ids = {s.sensor_id for s in fleet.announcements()}
        assert announced_ids.isdisjoint({s.sensor_id for s in first})

    def test_record_measurements_deduplicates(self):
        fleet = self._fleet(lifetime=5)
        sid = fleet.announcements()[0].sensor_id
        fleet.record_measurements([sid, sid, sid])
        assert fleet.sensor(sid).readings_taken == 1

    def test_clock_advances(self):
        fleet = self._fleet()
        assert fleet.clock == 0
        fleet.advance()
        assert fleet.clock == 1

    def test_linear_energy_and_privacy_config(self):
        fleet = self._fleet(seed=3, linear_energy=True, random_privacy=True)
        levels = {s.privacy_model.sensitivity for s in fleet.sensors}
        assert len(levels) > 1  # random assignment hit several levels
        betas = {type(s.energy_model).__name__ for s in fleet.sensors}
        assert betas == {"LinearEnergyCost"}

    def test_total_readings_and_exhausted_count(self):
        fleet = self._fleet(lifetime=1)
        ids = [s.sensor_id for s in fleet.announcements()][:5]
        fleet.record_measurements(ids)
        assert fleet.total_readings() == 5
        assert fleet.exhausted_count() == 5

    def test_working_region_must_be_inside(self):
        rng = np.random.default_rng(0)
        mobility = StationaryMobility(Region.from_origin(5, 5), [Location(1, 1)])
        with pytest.raises(ValueError):
            SensorFleet(mobility, Region.from_origin(10, 10), FleetConfig(), rng)

    def test_same_seed_same_fleet(self):
        a, b = self._fleet(seed=9), self._fleet(seed=9)
        assert [s.inaccuracy for s in a.sensors] == [s.inaccuracy for s in b.sensors]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(inaccuracy_range=(0.5, 0.1))
        with pytest.raises(ValueError):
            FleetConfig(lifetime=0)
        with pytest.raises(ValueError):
            FleetConfig(beta_range=(3.0, 1.0))
