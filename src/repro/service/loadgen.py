"""Open-loop load generation for the marketplace service.

An open-loop generator submits arrivals on its own clock, independent of
how fast the service settles slots — the regime where admission control
and backpressure actually matter (a closed-loop driver would politely
slow down instead of saturating the queue).

Two arrival profiles cover the curated scenarios:

* :class:`PoissonProfile` — stationary Poisson arrivals at ``rate`` per
  tick;
* :class:`BurstyProfile` — a base Poisson rate with periodic bursts
  (``burst_rate`` for ``burst_length`` ticks every ``period``), the
  metro-rush-hour shape ``examples/specs/metro_burst.json`` declares.

Arrival *queries* are drawn from the spec's declared stream workloads
(:class:`WorkloadArrivals` buffers their batch generators and deals the
queries out one arrival at a time, round-robin across streams), so the
generated demand has exactly the spatial/budget shape of the scenario.

Everything is seeded: :meth:`LoadGenerator.schedule` regenerates the
identical arrival stream from the same config, which is how the parity
suite rebuilds ``queries_by_seq`` for the offline replay without ever
touching the service's recorded objects.
"""

from __future__ import annotations

import abc
import asyncio
from typing import Any, Sequence

import numpy as np

from ..queries import Query
from .marketplace import MarketplaceService

__all__ = [
    "ArrivalProfile",
    "PoissonProfile",
    "BurstyProfile",
    "profile_from_payload",
    "WorkloadArrivals",
    "LoadGenerator",
]


class ArrivalProfile(abc.ABC):
    """Per-tick arrival counts of an open-loop workload."""

    @abc.abstractmethod
    def count(self, tick: int, rng: np.random.Generator) -> int:
        """How many queries arrive during ``tick``."""


class PoissonProfile(ArrivalProfile):
    """Stationary Poisson arrivals: ``count ~ Poisson(rate)`` per tick."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self.rate = float(rate)

    def count(self, tick: int, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.rate))

    def __repr__(self) -> str:
        return f"PoissonProfile(rate={self.rate})"


class BurstyProfile(ArrivalProfile):
    """Periodic bursts over a Poisson base load.

    Ticks ``t`` with ``t % period < burst_length`` draw from
    ``Poisson(burst_rate)``, the rest from ``Poisson(rate)`` — rush-hour
    demand against a quiet background.
    """

    def __init__(
        self,
        rate: float,
        burst_rate: float,
        period: int = 8,
        burst_length: int = 2,
    ) -> None:
        if rate < 0 or burst_rate < 0:
            raise ValueError("rates must be >= 0")
        if period < 1 or not (0 < burst_length <= period):
            raise ValueError("need period >= 1 and 0 < burst_length <= period")
        self.rate = float(rate)
        self.burst_rate = float(burst_rate)
        self.period = int(period)
        self.burst_length = int(burst_length)

    def count(self, tick: int, rng: np.random.Generator) -> int:
        rate = self.burst_rate if tick % self.period < self.burst_length else self.rate
        return int(rng.poisson(rate))

    def __repr__(self) -> str:
        return (
            f"BurstyProfile(rate={self.rate}, burst_rate={self.burst_rate}, "
            f"period={self.period}, burst_length={self.burst_length})"
        )


def profile_from_payload(payload: dict[str, Any]) -> tuple[ArrivalProfile, int]:
    """An arrival profile + seed from a spec's ``service.arrivals`` block."""
    payload = dict(payload)
    kind = payload.pop("profile", "poisson")
    seed = int(payload.pop("seed", 0))
    if kind == "poisson":
        profile: ArrivalProfile = PoissonProfile(payload.pop("rate", 16.0))
    elif kind == "bursty":
        profile = BurstyProfile(
            rate=payload.pop("rate", 8.0),
            burst_rate=payload.pop("burst_rate", 64.0),
            period=payload.pop("period", 8),
            burst_length=payload.pop("burst_length", 2),
        )
    else:
        raise ValueError(f"unknown arrival profile {kind!r}")
    if payload:
        raise ValueError(f"unknown arrival fields: {sorted(payload)}")
    return profile, seed


class WorkloadArrivals:
    """Deals single queries from batch workload generators.

    The spec's stream workloads emit whole per-slot batches; an arrival
    process needs one query at a time.  This buffers each workload's
    batches and deals arrivals round-robin across streams, refilling a
    stream's buffer (one ``generate`` call, stamped with the current
    tick) whenever its turn comes up empty.  Same rng + same ``take``
    sequence ⇒ the identical query stream, which the replay side relies
    on.
    """

    def __init__(self, workloads: Sequence[tuple[str, Any]]) -> None:
        if not workloads:
            raise ValueError("need at least one arrival workload")
        self._workloads = [workload for _, workload in workloads]
        self._buffers: list[list[Query]] = [[] for _ in self._workloads]
        self._turn = 0

    def take(self, k: int, tick: int, rng: np.random.Generator) -> list[Query]:
        out: list[Query] = []
        dry = 0
        while len(out) < k and dry < len(self._workloads):
            idx = self._turn % len(self._workloads)
            self._turn += 1
            buffer = self._buffers[idx]
            if not buffer:
                buffer.extend(self._workloads[idx].generate(tick, rng))
                if not buffer:  # e.g. n_queries=0 — skip, stop if all dry
                    dry += 1
                    continue
            dry = 0
            out.append(buffer.pop(0))
        return out


class LoadGenerator:
    """Seeded open-loop driver: arrival schedule + service submission.

    Args:
        profile: the per-tick arrival-count process.
        workloads: ``(kind, workload)`` pairs (a service's
            :attr:`~.marketplace.MarketplaceService.workloads`).
        seed: drives both the counts and the query draws; two generators
            with equal config produce identical schedules.
    """

    def __init__(
        self,
        profile: ArrivalProfile,
        workloads: Sequence[tuple[str, Any]],
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self.workloads = list(workloads)
        self.seed = int(seed)

    @classmethod
    def for_service(
        cls,
        service: MarketplaceService,
        *,
        profile: ArrivalProfile | None = None,
        seed: int | None = None,
    ) -> "LoadGenerator":
        """Build from a service's spec config (``service.arrivals``)."""
        cfg_profile, cfg_seed = (
            profile_from_payload(service.config.arrivals)
            if service.config.arrivals is not None
            else (PoissonProfile(16.0), 0)
        )
        return cls(
            profile if profile is not None else cfg_profile,
            service.workloads,
            seed if seed is not None else cfg_seed,
        )

    # ------------------------------------------------------------------
    def schedule(self, n_ticks: int) -> list[list[Query]]:
        """The deterministic per-tick arrival batches for ``n_ticks``.

        Regenerating with the same config yields bitwise-identical query
        parameters (fresh objects, fresh ids) — the ``queries_by_seq``
        input of :func:`~.marketplace.replay_admission_trace` is this,
        flattened.
        """
        rng = np.random.default_rng(self.seed)
        dealer = WorkloadArrivals(self.workloads)
        return [
            dealer.take(self.profile.count(tick, rng), tick, rng)
            for tick in range(n_ticks)
        ]

    def drive(self, service: MarketplaceService, n_ticks: int) -> None:
        """Synchronous open-loop run: submit each tick's arrivals, tick.

        Arrivals for tick ``i`` are submitted before tick ``i`` runs, so
        the queue sees the full burst and admission control has to act.
        Rejections land in the service metrics; this never blocks on
        them (open loop).
        """
        for batch in self.schedule(n_ticks):
            for query in batch:
                service.submit(query)
            service.tick_once()

    async def drive_async(
        self, service: MarketplaceService, n_ticks: int,
        interval: float | None = None,
    ) -> None:
        """Async submitter for a service already ticking via ``serve()``.

        Submits each tick's batch, then sleeps ``interval`` (default:
        the service's tick interval) — yielding between batches so the
        ticker task interleaves.
        """
        pace = service.config.tick_interval if interval is None else interval
        for batch in self.schedule(n_ticks):
            for query in batch:
                service.submit(query)
            await asyncio.sleep(pace if pace > 0 else 0)
