"""Cross-cutting edge cases: empty worlds, dead sensors, degenerate slots."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_point_query, make_snapshot
from repro.core import (
    BaselineAllocator,
    GreedyAllocator,
    LocalSearchPointAllocator,
    MixAllocator,
    MixSimulation,
    OneShotSimulation,
    OptimalPointAllocator,
)
from repro.datasets import build_intel_scenario, build_ozone_dataset, build_rwm_scenario
from repro.queries import (
    AggregateQueryWorkload,
    LocationMonitoringWorkload,
    PointQueryWorkload,
    RegionMonitoringWorkload,
)
from repro.sensors import FleetConfig

SCENARIO = build_rwm_scenario(seed=55, n_sensors=40, n_slots=6)
OZONE = build_ozone_dataset(seed=55)


@pytest.mark.parametrize(
    "allocator",
    [
        OptimalPointAllocator(),
        LocalSearchPointAllocator(),
        GreedyAllocator(),
        BaselineAllocator(),
    ],
    ids=["optimal", "local_search", "greedy", "baseline"],
)
class TestAllAllocatorsDegenerate:
    def test_no_sensors(self, allocator):
        queries = [make_point_query(x=1, y=1)]
        result = allocator.allocate(queries, [])
        assert result.total_utility == 0.0
        assert result.answered_count() == 0

    def test_no_queries(self, allocator):
        result = allocator.allocate([], [make_snapshot(0)])
        assert result.total_utility == 0.0
        assert not result.selected

    def test_all_sensors_too_far(self, allocator):
        queries = [make_point_query(x=0, y=0, dmax=1.0)]
        sensors = [make_snapshot(i, x=100 + i, y=100) for i in range(5)]
        result = allocator.allocate(queries, sensors)
        assert result.answered_count() == 0

    def test_free_sensors(self, allocator):
        """Zero-cost sensors are always worth selecting when valuable."""
        queries = [make_point_query(x=0, y=0, budget=10.0, theta_min=0.0)]
        sensors = [make_snapshot(0, x=0.5, y=0, cost=0.0)]
        result = allocator.allocate(queries, sensors)
        assert result.answered_count() == 1
        assert result.total_cost == 0.0
        result.verify()

    def test_zero_budget_queries(self, allocator):
        queries = [make_point_query(x=0, y=0, budget=0.0, theta_min=0.0)]
        sensors = [make_snapshot(0, x=0, y=0, cost=5.0)]
        result = allocator.allocate(queries, sensors)
        assert result.total_utility == 0.0


class TestExhaustedWorld:
    def test_simulation_survives_dead_fleet(self):
        """Lifetime 1 + heavy demand: later slots see few/no sensors."""
        scenario = build_rwm_scenario(
            seed=3, n_sensors=10, n_slots=6, fleet_config=FleetConfig(lifetime=1)
        )
        workload = PointQueryWorkload(
            scenario.working_region, n_queries=40, budget=35.0, dmax=scenario.dmax
        )
        sim = OneShotSimulation(
            scenario.make_fleet(), workload, OptimalPointAllocator(),
            np.random.default_rng(0),
        )
        summary = sim.run(6)
        assert summary.n_slots == 6
        # Demand eventually exhausts the 10 one-shot sensors.
        assert summary.slots[-1].cost == 0.0

    def test_empty_hotspot_slot(self):
        """A slot with zero announcements must not crash any engine."""
        scenario = build_rwm_scenario(
            seed=3, n_sensors=5, n_slots=4, fleet_config=FleetConfig(lifetime=1)
        )
        fleet = scenario.make_fleet()
        # Exhaust every announcing sensor immediately.
        announced = [s.sensor_id for s in fleet.announcements()]
        fleet.record_measurements(announced)
        assert all(fleet.sensor(sid).is_exhausted for sid in announced)
        workload = PointQueryWorkload(
            scenario.working_region, n_queries=10, budget=15.0, dmax=scenario.dmax
        )
        sim = OneShotSimulation(fleet, workload, GreedyAllocator(), np.random.default_rng(1))
        summary = sim.run(2)
        assert summary.n_slots == 2


class TestMixWithRegionMonitoring:
    def test_full_mix_including_region_queries(self):
        """Figure 10 excludes region monitoring; the engine supports it."""
        world = build_intel_scenario(seed=8, n_sensors=12, n_slots=8)
        scenario = world.scenario
        point = PointQueryWorkload(
            scenario.working_region, n_queries=6, budget=15.0, dmax=scenario.dmax
        )
        agg = AggregateQueryWorkload(
            scenario.working_region, budget_factor=15.0, mean_queries=2,
            count_spread=1, sensing_range=4.0, min_side=3.0, max_side=8.0,
            coverage_radius=2.0,
        )
        lm = LocationMonitoringWorkload(
            scenario.working_region, OZONE.values, OZONE.model(),
            budget_factor=15.0, max_live=4, arrivals_per_slot=1,
            duration_range=(3, 5), dmax=scenario.dmax,
        )
        rm = RegionMonitoringWorkload(
            scenario.working_region, world.gp, budget_factor=15.0,
            duration_range=(3, 5), sensing_radius=scenario.dmax,
        )
        sim = MixSimulation(
            scenario.make_fleet(), point, agg, lm, MixAllocator(),
            np.random.default_rng(2), region_workload=rm,
        )
        summary = sim.run(6)
        assert summary.n_slots == 6
        assert "region_monitoring" in summary.quality_stats
