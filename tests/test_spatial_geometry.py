"""Tests for repro.spatial.geometry."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial import (
    Location,
    centroid,
    euclidean,
    manhattan,
    nearest,
    pairwise_distances,
)

coords = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)


class TestLocation:
    def test_distance_is_euclidean(self):
        assert Location(0, 0).distance_to(Location(3, 4)) == pytest.approx(5.0)

    def test_distance_to_self_is_zero(self):
        loc = Location(2.5, -7.1)
        assert loc.distance_to(loc) == 0.0

    def test_manhattan(self):
        assert Location(0, 0).manhattan_to(Location(3, -4)) == pytest.approx(7.0)

    def test_translated(self):
        assert Location(1, 2).translated(0.5, -1.0) == Location(1.5, 1.0)

    def test_snapped_rounds_to_cell_center(self):
        assert Location(1.4, 2.6).snapped() == Location(1.0, 3.0)

    def test_as_tuple_and_iter(self):
        loc = Location(1.0, 2.0)
        assert loc.as_tuple() == (1.0, 2.0)
        assert tuple(loc) == (1.0, 2.0)

    def test_hashable_and_usable_as_dict_key(self):
        d = {Location(1, 2): "a"}
        assert d[Location(1, 2)] == "a"

    def test_ordering_is_lexicographic(self):
        assert Location(1, 5) < Location(2, 0)
        assert Location(1, 1) < Location(1, 2)

    @given(coords, coords, coords, coords)
    def test_distance_symmetry(self, ax, ay, bx, by):
        a, b = Location(ax, ay), Location(bx, by)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(coords, coords, coords, coords, coords, coords)
    def test_triangle_inequality(self, ax, ay, bx, by, cx, cy):
        a, b, c = Location(ax, ay), Location(bx, by), Location(cx, cy)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestHelpers:
    def test_euclidean_and_manhattan_wrappers(self):
        a, b = Location(0, 0), Location(1, 1)
        assert euclidean(a, b) == pytest.approx(math.sqrt(2))
        assert manhattan(a, b) == pytest.approx(2.0)

    def test_pairwise_distances_shape(self):
        points = [Location(0, 0), Location(1, 0), Location(0, 2)]
        others = [Location(0, 0), Location(3, 4)]
        mat = pairwise_distances(points, others)
        assert mat.shape == (3, 2)
        assert mat[0, 0] == pytest.approx(0.0)
        assert mat[0, 1] == pytest.approx(5.0)

    def test_pairwise_self_distance_is_symmetric(self):
        points = [Location(0, 0), Location(1, 0), Location(0, 2)]
        mat = pairwise_distances(points)
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diag(mat), 0.0)

    def test_pairwise_empty(self):
        assert pairwise_distances([]).shape[0] == 0

    def test_nearest_picks_closest(self):
        target = Location(0, 0)
        candidates = [Location(5, 5), Location(1, 1), Location(-2, 0)]
        assert nearest(target, candidates) == Location(1, 1)

    def test_nearest_raises_on_empty(self):
        with pytest.raises(ValueError):
            nearest(Location(0, 0), [])

    def test_centroid(self):
        points = [Location(0, 0), Location(2, 0), Location(1, 3)]
        assert centroid(points) == Location(1.0, 1.0)

    def test_centroid_raises_on_empty(self):
        with pytest.raises(ValueError):
            centroid([])
