"""The RNC scenario — synthetic substitute for the Nokia campaign trace.

See :mod:`repro.mobility.nokia` and DESIGN.md ("Dataset substitutions") for
why a calibrated anchor-based synthesizer reproduces the consumable
statistics of the paper's RNC dataset: 237x300 grid, 635 sensors, ~120 on
average inside the 100x100 working subregion, human-like churn.  Eq. 4 uses
``dmax = 10`` on this dataset.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..mobility import (
    PAPER_RNC_WORKING_REGION,
    MobilityTrace,
    NokiaCampaignSynthesizer,
)
from ..sensors import FleetConfig
from .scenario import Scenario

__all__ = ["build_rnc_scenario"]


@lru_cache(maxsize=8)
def _cached_trace(
    seed: int, n_sensors: int, target_presence: float, n_slots: int
) -> MobilityTrace:
    rng = np.random.default_rng(seed)
    synthesizer = NokiaCampaignSynthesizer.calibrated(
        rng,
        n_sensors=n_sensors,
        target_presence=target_presence,
    )
    return synthesizer.synthesize(n_slots, warmup=25)


def build_rnc_scenario(
    seed: int = 2013,
    n_sensors: int = 635,
    target_presence: float = 120.0,
    n_slots: int = 50,
    fleet_config: FleetConfig | None = None,
) -> Scenario:
    """Paper defaults: 635 sensors, ~120 present per slot, 50 slots."""
    trace = _cached_trace(seed, n_sensors, target_presence, n_slots)
    return Scenario(
        name="RNC",
        trace=trace,
        working_region=PAPER_RNC_WORKING_REGION,
        fleet_config=fleet_config if fleet_config is not None else FleetConfig(),
        fleet_seed=seed + 1,
        dmax=10.0,
    )
