"""Seed-robustness of the headline result (Figure 2's ordering).

EXPERIMENTS.md claims the reproduced orderings are robust across seeds;
this bench replicates Figure 2 over several seeds and requires the
Optimal >= LocalSearch >= Baseline ordering to hold in every replicate.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig2, ordering_robustness, replicate

SEEDS = (101, 202, 303)


def sweep(scale):
    return replicate(fig2, scale, seeds=SEEDS)


def test_fig2_ordering_seed_robustness(benchmark, scale):
    replicated = run_once(benchmark, sweep, scale)
    print()
    print(replicated.format("avg_utility"))
    assert ordering_robustness(replicated, "Optimal", "Baseline", "avg_utility") == 1.0
    assert (
        ordering_robustness(replicated, "LocalSearch", "Baseline", "avg_utility") == 1.0
    )
    assert (
        ordering_robustness(
            replicated, "Optimal", "LocalSearch", "avg_utility", slack=1e-6
        )
        == 1.0
    )
