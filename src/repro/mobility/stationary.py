"""Stationary "mobility": sensors that never move.

The Intel-Lab replay (Section 4.2) mixes a stationary ground-truth
deployment with 30 imaginary mobile sensors; the stationary part uses this
model.  It is also handy in unit tests where deterministic geometry is
needed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..spatial import Location, Region
from .base import MobilityModel

__all__ = ["StationaryMobility"]


class StationaryMobility(MobilityModel):
    """Fixed sensor positions; :meth:`advance` is a no-op."""

    def __init__(self, region: Region, positions: Sequence[Location]) -> None:
        if not positions:
            raise ValueError("need at least one sensor position")
        outside = [p for p in positions if not region.contains(p)]
        if outside:
            raise ValueError(f"{len(outside)} positions fall outside the region")
        self._region = region
        self._positions = tuple(positions)
        self._xy = np.asarray([(p.x, p.y) for p in self._positions], dtype=float)

    @property
    def n_sensors(self) -> int:
        return len(self._positions)

    @property
    def region(self) -> Region:
        return self._region

    def locations(self) -> tuple[Location, ...]:
        return self._positions

    def locations_xy(self) -> np.ndarray:
        return self._xy

    def advance(self) -> None:
        return None
