"""Continuous queries: location and region monitoring (Section 2.3).

Continuous queries are never allocated sensors directly — each slot the
controllers of :mod:`repro.core.monitoring` derive *point queries* from them
(Algorithms 2 and 3) and feed those into the joint sensor selection.  This
module owns the query state and valuations:

* :class:`LocationMonitoringQuery` — eq. (16)/(17): value of the samples
  collected so far is ``B_q * G(T') * mean(Theta)`` where ``G`` is the
  residual-sum ratio of the regression model fit on the desired vs. the
  achieved sampling times.
* :class:`RegionMonitoringQuery` — eq. (7): per-slot value of a sensor set
  is ``B_q * F(S) * mean(theta)`` with ``F`` the GP expected variance
  reduction (eq. 6) over the region's cells.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from ..phenomena import (
    GaussianProcessField,
    HarmonicRegressionModel,
    VarianceReductionState,
    residual_sum_of_squares,
)
from ..phenomena.sampling_times import window_series
from ..sensors import SensorSnapshot
from ..spatial import Location, Region, as_xy
from .aggregate import sensor_quality
from .base import new_query_id
from .point import _quality_gated_mask

__all__ = ["ContinuousQuery", "LocationMonitoringQuery", "RegionMonitoringQuery"]


class ContinuousQuery:
    """Lifecycle shared by monitoring queries: active in ``[t1, t2]``."""

    def __init__(self, budget: float, t1: int, t2: int, query_id: str | None = None) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        if t2 < t1:
            raise ValueError("t2 must be >= t1")
        self.budget = budget
        self.t1 = t1
        self.t2 = t2
        self.query_id = query_id if query_id is not None else new_query_id("cq")
        self.spent = 0.0  # the running cost account C-hat of Algorithms 2/3

    @property
    def duration(self) -> int:
        return self.t2 - self.t1 + 1

    def active(self, t: int) -> bool:
        return self.t1 <= t <= self.t2

    def expired(self, t: int) -> bool:
        return t > self.t2

    @property
    def remaining_budget(self) -> float:
        return max(0.0, self.budget - self.spent)


class LocationMonitoringQuery(ContinuousQuery):
    """Monitor a phenomenon at one location over ``[t1, t2]`` (query Q1).

    Args:
        location: the monitored location ``q.l``.
        t1, t2: the monitoring period.
        desired_times: the requested sampling times ``q.T`` (Section 2.3),
            typically produced by :func:`repro.phenomena.schedule_for_window`.
        budget: total budget for the whole period.
        series: the historical data the eq. 17 gain ratio is computed on.
        model: the regression model family fitted to ``series``.
        theta_min / dmax: quality parameters for the derived point queries.

    State (Algorithm 2's ``q.T'``, ``q.C-hat``, ``q.lst``, ``q.nst``):
        ``sampled_times`` and ``qualities`` record the successful samples;
        ``spent`` the payments so far; the schedule pointer tracks the next
        desired time that has not been covered yet.
    """

    def __init__(
        self,
        location: Location,
        t1: int,
        t2: int,
        desired_times: Sequence[int],
        budget: float,
        series: np.ndarray,
        model: HarmonicRegressionModel,
        theta_min: float = 0.2,
        dmax: float = 5.0,
        query_id: str | None = None,
    ) -> None:
        super().__init__(budget, t1, t2, query_id)
        times = sorted(set(int(t) for t in desired_times))
        if any(not (t1 <= t <= t2) for t in times):
            raise ValueError("desired sampling times must lie in [t1, t2]")
        self.location = location
        self.desired_times = times
        self.series = np.asarray(series, dtype=float)
        self.model = model
        self.theta_min = theta_min
        self.dmax = dmax
        self.sampled_times: list[int] = []
        self.qualities: list[float] = []
        self.last_scheduled_hit: int | None = None  # q.lst
        # Eq. 17's residuals are scoped to the query's own window: the
        # model's job is reconstructing the phenomenon during [t1, t2]
        # (see repro.phenomena.sampling_times.schedule_for_window).
        self._window = window_series(self.series, t1, self.duration)
        self._desired_ssr = residual_sum_of_squares(
            model, self._window, self._offsets(times)
        )

    # ------------------------------------------------------------------
    # schedule bookkeeping (q.nst / q.lst of Algorithm 2)
    # ------------------------------------------------------------------
    def next_scheduled_time(self) -> int | None:
        """First desired time not yet covered by any sample (``q.nst``)."""
        last = self.sampled_times[-1] if self.sampled_times else self.t1 - 1
        idx = bisect.bisect_right(self.desired_times, last)
        return self.desired_times[idx] if idx < len(self.desired_times) else None

    def has_missed_schedule(self, t: int) -> bool:
        """Sampling at the last scheduled time failed (the paper's catch-up
        condition): the next uncovered desired time already lies in the past."""
        nst = self.next_scheduled_time()
        return nst is not None and nst < t

    def past_schedule(self, t: int) -> bool:
        """``t`` is greater than the final requested sampling time."""
        return not self.desired_times or t > self.desired_times[-1]

    def relevant_mask(
        self,
        xy: np.ndarray,
        gamma: np.ndarray | None = None,
        trust: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized serve-eligibility prescreen for this monitored location.

        Continuous queries are never allocated sensors directly — the
        controllers derive point queries that carry their own masks
        through the allocators — so *no built-in path calls this*.  It
        completes the batch-relevance protocol for API consumers
        (dashboards, feasibility checks) that ask "which announced sensors
        could ever serve a sample for me": the derived point queries
        inherit this query's ``theta_min``/``dmax``, and the mask is
        exactly their shared quality gate (pinned against
        ``PointQuery.relevant`` by the geometry parity suite).  Requires
        the quality columns (eq. 4 gates on inaccuracy and trust, not just
        distance).
        """
        return _quality_gated_mask(self, xy, gamma, trust)

    # ------------------------------------------------------------------
    # valuation (eqs. 16, 17)
    # ------------------------------------------------------------------
    def _offsets(self, times: Sequence[int]) -> list[int]:
        """Map absolute slots onto offsets within the query window."""
        return [t - self.t1 for t in times if self.t1 <= t <= self.t2]

    def gain_ratio(self, sampled: Sequence[int]) -> float:
        """Eq. (17): ``G(T') = (sum r^2 | T) / (sum r^2 | T')``."""
        achieved_ssr = residual_sum_of_squares(
            self.model, self._window, self._offsets(sampled)
        )
        if achieved_ssr <= 0.0:
            return 1.0 if self._desired_ssr <= 0.0 else float("inf")
        return self._desired_ssr / achieved_ssr

    def value_of(self, sampled: Sequence[int], qualities: Sequence[float]) -> float:
        """Eq. (16): ``B_q * G(T') * mean(Theta)``."""
        if not qualities:
            return 0.0
        mean_quality = sum(qualities) / len(qualities)
        return self.budget * self.gain_ratio(sampled) * mean_quality

    def achieved_value(self) -> float:
        """Current value of the collected samples."""
        return self.value_of(self.sampled_times, self.qualities)

    def marginal_gain(self, t: int, expected_quality: float = 1.0) -> float:
        """``Delta v_t`` of Algorithm 2: value of one more sample at ``t``.

        ``expected_quality`` is the anticipated reading quality ("v_q
        considers ... the expected quality of a sensor reading before the
        actual sensor selection"); the default of 1 prices a perfect sample
        and lets the point-query allocation discount by the actual quality.
        """
        hypothetical = self.value_of(
            self.sampled_times + [t], self.qualities + [expected_quality]
        )
        return max(0.0, hypothetical - self.achieved_value())

    @property
    def surplus(self) -> float:
        """Extra budget of Algorithm 2: achieved value minus money spent."""
        return self.achieved_value() - self.spent

    # ------------------------------------------------------------------
    # state transition (Algorithm 2's ApplyResults)
    # ------------------------------------------------------------------
    def apply_sample(self, t: int, quality: float, payment: float) -> None:
        """Record a successful sample at slot ``t``."""
        if payment < 0:
            raise ValueError("payment must be non-negative for a successful sample")
        self.sampled_times.append(t)
        self.qualities.append(quality)
        self.spent += payment
        if self.desired_times and t >= self.desired_times[0]:
            idx = bisect.bisect_right(self.desired_times, t)
            covered = self.desired_times[idx - 1]
            if self.last_scheduled_hit is None or covered > self.last_scheduled_hit:
                self.last_scheduled_hit = covered

    def quality_of_results(self) -> float:
        """Achieved valuation over the maximum (``B_q``, attained by a
        perfect-quality sample at every desired time)."""
        if self.budget == 0:
            return 0.0
        return self.achieved_value() / self.budget


class RegionMonitoringQuery(ContinuousQuery):
    """Monitor a phenomenon over a region during ``[t1, t2]`` (query Q2).

    Args:
        region: the monitored region ``q.r``.
        budget: total budget over the query lifetime.
        gp: Gaussian-process model of the phenomenon (hyper-parameters
            learned from historical data, Section 4.6).
        cell_size: rasterization of the region into the target locations
            ``V`` of eq. (6).
        dmax: radius for the derived point queries (how far a sensor may be
            from a requested sampling location and still serve it).
    """

    def __init__(
        self,
        region: Region,
        t1: int,
        t2: int,
        budget: float,
        gp: GaussianProcessField,
        cell_size: float = 1.0,
        dmax: float = 2.0,
        theta_min: float = 0.0,
        query_id: str | None = None,
    ) -> None:
        super().__init__(budget, t1, t2, query_id)
        self.region = region
        self.gp = gp
        self.dmax = dmax
        self.theta_min = theta_min
        self.cells = list(region.grid_cells(cell_size))
        if not self.cells:
            raise ValueError("region rasterizes to zero cells")
        # q.S is aggregated online (count + quality sum): a query's sensor
        # log grows by the full selected set every slot, so a month-long
        # monitoring query would otherwise hold an unbounded list.
        self.used_sensor_count = 0
        self.used_quality_sum = 0.0
        self.slot_values: list[float] = []
        self.slot_planned_values: list[float] = []

    def relevant_mask(
        self,
        xy: np.ndarray,
        gamma: np.ndarray | None = None,
        trust: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized in-region test for Algorithm 3's sensor scans.

        A sensor contributes variance reduction (and shared-sensor value)
        only from inside the monitored region; the controllers use this
        mask to replace their per-snapshot ``region.contains`` loops.
        Purely geometric — ``gamma``/``trust`` are ignored.
        """
        return self.region.contains_many(as_xy(xy))

    # ------------------------------------------------------------------
    # valuation (eq. 7)
    # ------------------------------------------------------------------
    def variance_reduction(self, locations: Sequence[Location]) -> float:
        """``F(S)`` of eq. (6) over the region's cells."""
        return self.gp.variance_reduction(list(locations), self.cells)

    def reduction_state(self) -> VarianceReductionState:
        """Fresh incremental ``F`` evaluator (used by Algorithm 4)."""
        return VarianceReductionState(self.gp, self.cells)

    def slot_value(self, snapshots: Sequence[SensorSnapshot]) -> float:
        """Eq. (7) applied to the sensors used in one slot."""
        if not snapshots:
            return 0.0
        reduction = self.variance_reduction([s.location for s in snapshots])
        mean_quality = sum(sensor_quality(s) for s in snapshots) / len(snapshots)
        return self.budget * reduction * mean_quality

    # ------------------------------------------------------------------
    # state transitions (Algorithm 3's ApplyResults)
    # ------------------------------------------------------------------
    def record_slot(
        self,
        achieved: Sequence[SensorSnapshot],
        planned_value: float,
        payment: float,
    ) -> float:
        """Book one slot's outcome; returns the achieved slot value.

        ``planned_value`` is the valuation of the sampling plan Algorithm 4
        produced; the achieved set may exceed it thanks to sensors shared
        from other queries (``A_{r,t}``), which is how the paper's Figure
        9(b) quality-of-results rises above 1.
        """
        if payment < 0:
            raise ValueError("payment must be non-negative")
        value = self.slot_value(achieved)
        self.slot_values.append(value)
        self.slot_planned_values.append(planned_value)
        self.spent += payment
        self.used_sensor_count += len(achieved)
        self.used_quality_sum += sum(sensor_quality(s) for s in achieved)
        return value

    def quality_of_results(self) -> float:
        """Mean of per-slot achieved/planned valuation ratios.

        "Most of the times, the average quality of results is more than 1,
        which means that the valuation of sensors selected for each query
        is more than what was requested" (Section 4.6) — extra shared
        sensors push individual slots above 1.
        """
        ratios = [
            achieved / planned
            for achieved, planned in zip(self.slot_values, self.slot_planned_values)
            if planned > 0
        ]
        if not ratios:
            return 0.0
        return float(sum(ratios) / len(ratios))

    def total_value(self) -> float:
        return float(sum(self.slot_values))
