"""Stationary "mobility": sensors that never move.

The Intel-Lab replay (Section 4.2) mixes a stationary ground-truth
deployment with 30 imaginary mobile sensors; the stationary part uses this
model.  It is also handy in unit tests where deterministic geometry is
needed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..spatial import Location, Region
from .base import MobilityModel

__all__ = ["StationaryMobility", "ChurnMobility"]


class StationaryMobility(MobilityModel):
    """Fixed sensor positions; :meth:`advance` is a no-op."""

    def __init__(self, region: Region, positions: Sequence[Location]) -> None:
        if not positions:
            raise ValueError("need at least one sensor position")
        outside = [p for p in positions if not region.contains(p)]
        if outside:
            raise ValueError(f"{len(outside)} positions fall outside the region")
        self._region = region
        self._positions = tuple(positions)
        self._xy = np.asarray([(p.x, p.y) for p in self._positions], dtype=float)

    @property
    def n_sensors(self) -> int:
        return len(self._positions)

    @property
    def region(self) -> Region:
        return self._region

    def locations(self) -> tuple[Location, ...]:
        return self._positions

    def locations_xy(self) -> np.ndarray:
        return self._xy

    def advance(self) -> None:
        return None


class ChurnMobility(MobilityModel):
    """A near-stationary fleet where a small fraction relocates per slot.

    Models the paper's participatory-sensing steady state between
    campaigns: most contributors stay put while a few percent move between
    slots.  Each :meth:`advance` relocates ``round(fraction * n)`` sensors
    (chosen uniformly without replacement) to fresh uniform positions in
    the region; everyone else keeps their exact coordinates, so the moved
    set *is* the per-slot churn — which makes this the reference workload
    for the incremental slot-state path and the replay harness.

    Deterministic given the generator's seed, so recording it with
    :meth:`~repro.mobility.base.MobilityModel.run_xy` into a
    :class:`~repro.mobility.trace.MobilityTrace` yields a reproducible
    low-churn world.
    """

    def __init__(
        self,
        region: Region,
        n_sensors: int,
        rng: np.random.Generator,
        fraction: float = 0.01,
    ) -> None:
        if n_sensors < 1:
            raise ValueError("need at least one sensor")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"churn fraction must be in [0, 1], got {fraction}")
        self._region = region
        self._rng = rng
        self._fraction = float(fraction)
        self._xy = np.column_stack(
            [
                rng.uniform(region.x_min, region.x_max, size=n_sensors),
                rng.uniform(region.y_min, region.y_max, size=n_sensors),
            ]
        )

    @property
    def n_sensors(self) -> int:
        return len(self._xy)

    @property
    def region(self) -> Region:
        return self._region

    @property
    def fraction(self) -> float:
        return self._fraction

    def locations(self) -> tuple[Location, ...]:
        return tuple(Location(float(x), float(y)) for x, y in self._xy)

    def locations_xy(self) -> np.ndarray:
        return self._xy

    def advance(self) -> None:
        n = len(self._xy)
        k = int(round(self._fraction * n))
        if k == 0:
            return
        movers = self._rng.choice(n, size=k, replace=False)
        self._xy[movers, 0] = self._rng.uniform(
            self._region.x_min, self._region.x_max, size=k
        )
        self._xy[movers, 1] = self._rng.uniform(
            self._region.y_min, self._region.y_max, size=k
        )
