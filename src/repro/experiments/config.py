"""Experiment scales: the paper's parameters and a fast CI shrink.

``paper`` replicates Section 4's published setup (50 slots, 300 point
queries per slot, 200/635 sensors, full sweeps).  ``ci`` runs the same code
paths at a fraction of the size so the whole benchmark suite finishes in a
couple of minutes; every qualitative relationship (who wins, where the
baseline collapses) is preserved.

Select via the ``REPRO_SCALE`` environment variable or pass a scale object
explicitly to the figure functions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "PAPER", "CI", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """All size knobs of the evaluation in one place."""

    name: str
    n_slots: int
    # point-query experiments (Figures 2-6)
    point_queries_per_slot: int
    rwm_sensors: int
    rnc_sensors: int
    rnc_presence: float
    budgets: tuple[float, ...]
    query_counts: tuple[int, ...]  # Figure 5 sweep
    # aggregate experiments (Figure 7)
    aggregate_mean_queries: int
    aggregate_budget_factors: tuple[float, ...]
    # monitoring experiments (Figures 8-9)
    monitoring_budget_factors: tuple[float, ...]
    lm_max_live: int
    lm_arrivals_per_slot: int
    intel_sensors: int
    # mix experiment (Figure 10)
    mix_budget_factors: tuple[float, ...]
    # event-detection extension figure (fig_event; defaults keep older
    # scale definitions valid)
    event_budget_factors: tuple[float, ...] = (5, 15, 30, 60)
    event_arrivals_per_slot: int = 2

    def __post_init__(self) -> None:
        if self.n_slots < 1:
            raise ValueError("n_slots must be >= 1")


PAPER = ExperimentScale(
    name="paper",
    n_slots=50,
    point_queries_per_slot=300,
    rwm_sensors=200,
    rnc_sensors=635,
    rnc_presence=120.0,
    budgets=(7, 10, 15, 20, 25, 30, 35),
    query_counts=(250, 500, 750, 1000),
    aggregate_mean_queries=30,
    aggregate_budget_factors=(7, 10, 15, 20, 25, 30, 35),
    monitoring_budget_factors=(7, 10, 15, 20, 25),
    lm_max_live=100,
    lm_arrivals_per_slot=10,
    intel_sensors=30,
    mix_budget_factors=(7, 10, 15, 20, 25),
    event_budget_factors=(5, 10, 20, 40, 60),
    event_arrivals_per_slot=3,
)

CI = ExperimentScale(
    name="ci",
    n_slots=6,
    point_queries_per_slot=60,
    rwm_sensors=60,
    rnc_sensors=150,
    rnc_presence=30.0,
    budgets=(7, 15, 35),
    query_counts=(50, 150),
    aggregate_mean_queries=8,
    aggregate_budget_factors=(7, 15, 35),
    monitoring_budget_factors=(7, 15, 25),
    lm_max_live=20,
    lm_arrivals_per_slot=5,
    intel_sensors=20,
    mix_budget_factors=(7, 15, 25),
    event_budget_factors=(5, 15, 30, 60),
    event_arrivals_per_slot=2,
)

_SCALES = {"paper": PAPER, "ci": CI}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by name, the ``REPRO_SCALE`` env var, or default CI."""
    if name is None:
        name = os.environ.get("REPRO_SCALE", "ci")
    try:
        return _SCALES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None
