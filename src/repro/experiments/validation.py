"""Shape validation: DESIGN.md Section 5 as an executable checklist.

Every qualitative relationship the reproduction must exhibit ("who wins,
where the baseline collapses, what converges") is encoded as a named check
over a :class:`~repro.experiments.runner.FigureResult`.  The benches assert
the most important ones inline; :func:`validate_figure` runs the complete
checklist for a figure and returns a structured report, which the CLI and
EXPERIMENTS tooling can render.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .runner import FigureResult

__all__ = ["CheckResult", "validate_figure", "CHECKLISTS"]


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str = ""

    def format(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{mark}] {self.name}{suffix}"


def _dominance(winner: str, loser: str, metric: str, slack: float = 1e-9):
    def check(result: FigureResult) -> CheckResult:
        ok = result.dominates(winner, loser, metric, slack=slack)
        return CheckResult(
            f"{winner} >= {loser} on {metric}",
            ok,
            f"mean advantage {result.mean_advantage(winner, loser, metric):.2f}",
        )

    return check


def _collapses_at_first_x(algorithm: str, metric: str, threshold: float = 1e-6):
    def check(result: FigureResult) -> CheckResult:
        value = result.metric(algorithm, metric)[0]
        return CheckResult(
            f"{algorithm} ~0 on {metric} at smallest x",
            value <= threshold,
            f"value {value:.3f}",
        )

    return check


def _grows(algorithm: str, metric: str):
    def check(result: FigureResult) -> CheckResult:
        series = result.metric(algorithm, metric)
        return CheckResult(
            f"{algorithm} grows on {metric}",
            series[-1] > series[0],
            f"{series[0]:.2f} -> {series[-1]:.2f}",
        )

    return check


def _close(a: str, b: str, metric: str, rel: float = 0.1):
    def check(result: FigureResult) -> CheckResult:
        sa = result.metric(a, metric)
        sb = result.metric(b, metric)
        ok = all(
            abs(x - y) <= rel * max(abs(x), abs(y), 1e-9) for x, y in zip(sa, sb)
        )
        return CheckResult(f"{a} tracks {b} on {metric} (within {rel:.0%})", ok)

    return check


#: figure id -> list of checks (DESIGN.md Section 5 expectations)
CHECKLISTS: dict[str, list[Callable[[FigureResult], CheckResult]]] = {
    "fig2": [
        _dominance("Optimal", "Baseline", "avg_utility"),
        _dominance("LocalSearch", "Baseline", "avg_utility"),
        _dominance("Optimal", "LocalSearch", "avg_utility", slack=1e-6),
        _close("LocalSearch", "Optimal", "avg_utility"),
        _collapses_at_first_x("Baseline", "satisfaction_ratio"),
        _grows("Optimal", "avg_utility"),
    ],
    "fig3": [
        _dominance("Optimal", "Baseline", "avg_utility"),
        _close("LocalSearch", "Optimal", "avg_utility"),
        _collapses_at_first_x("Baseline", "satisfaction_ratio"),
        _grows("Optimal", "avg_utility"),
    ],
    "fig4": [
        _dominance("Optimal", "Baseline", "avg_utility"),
        _grows("Optimal", "avg_utility"),
    ],
    "fig5": [
        _dominance("Optimal", "Baseline", "avg_utility"),
        _grows("Optimal", "avg_utility"),
        _grows("Optimal", "satisfaction_ratio"),
    ],
    "fig6": [
        _dominance("Optimal", "Baseline", "avg_utility_l50"),
        _dominance("Optimal", "Baseline", "avg_utility_l25"),
        _close("Optimal", "Optimal", "avg_utility_l50", rel=1.0),
    ],
    "fig7": [
        _dominance("Greedy", "Baseline", "avg_utility"),
        _grows("Greedy", "avg_utility"),
    ],
    "fig8": [
        _grows("Alg2-O", "avg_utility"),
        _close("Alg2-LS", "Alg2-O", "avg_utility", rel=0.15),
    ],
    "fig9": [
        _dominance("Alg3", "Baseline", "avg_utility"),
        _dominance("Alg3", "Baseline", "avg_quality"),
        _grows("Alg3", "avg_quality"),
    ],
    "fig10": [
        _dominance("Alg5", "Baseline", "avg_utility"),
        _dominance("Alg5", "Baseline", "quality_location_monitoring"),
        _grows("Alg5", "avg_utility"),
    ],
}


def validate_figure(result: FigureResult) -> list[CheckResult]:
    """Run the figure's checklist; unknown figures get an empty report."""
    checks = CHECKLISTS.get(result.figure_id, [])
    report = []
    for check in checks:
        try:
            report.append(check(result))
        except (KeyError, IndexError) as exc:
            report.append(
                CheckResult(getattr(check, "__name__", "check"), False, f"error: {exc}")
            )
    return report
