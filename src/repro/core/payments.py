"""Proportionate cost allocation (Section 2.1, eq. 11; Algorithm 1 line 10).

When a sensor is shared among queries, its announced cost is split among
them *in proportion to the value it yields to each*::

    pi_{q,s} = v_q(s) * c_s / (sum over beneficiaries of their values)

Because an algorithm only ever selects a sensor whose total yielded value
is at least its cost, each share is at most the corresponding value, so
every query keeps a non-negative net benefit (Theorem 1, property 3).
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["proportionate_shares", "redistribute_contribution"]


def proportionate_shares(
    values: Mapping[str, float], cost: float
) -> dict[str, float]:
    """Split ``cost`` among queries proportionally to their ``values``.

    Args:
        values: per-query value obtained from the sensor (must be > 0; a
            query that gains nothing from the sensor shares nothing).
        cost: the sensor's announced cost.

    Returns:
        Per-query payments summing exactly to ``cost`` (or to 0 when the
        beneficiary set is empty).

    Raises:
        ValueError: on a non-positive value or negative cost.
    """
    if cost < 0:
        raise ValueError("cost must be non-negative")
    if not values:
        return {}
    total = 0.0
    for qid, value in values.items():
        if value <= 0:
            raise ValueError(f"beneficiary {qid} has non-positive value {value}")
        total += value
    return {qid: value * cost / total for qid, value in values.items()}


def redistribute_contribution(
    payments: Mapping[str, float], contribution: float
) -> tuple[dict[str, float], float]:
    """Reduce existing payers' shares by an external cost contribution.

    Used by the query-mix payment adjustment (Algorithm 5, step 5): when a
    region-monitoring query contributes towards the cost of a sensor that
    other queries already paid for, those payments shrink pro rata so the
    sensor still recovers exactly its cost.

    Args:
        payments: current per-query payments for one sensor.
        contribution: the amount the contributing query adds (clamped to
            the total of existing payments; you cannot refund more than was
            paid).

    Returns:
        ``(adjusted_payments, applied_contribution)``.
    """
    if contribution < 0:
        raise ValueError("contribution must be non-negative")
    total = sum(payments.values())
    if total <= 0 or contribution == 0:
        return (dict(payments), 0.0)
    applied = min(contribution, total)
    factor = (total - applied) / total
    return ({qid: p * factor for qid, p in payments.items()}, applied)
