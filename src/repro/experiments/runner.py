"""Sweep plumbing shared by every figure reproduction.

Besides the :class:`FigureResult` tabulation, this module owns the
**parallel sweep executor**: figure sweeps decompose into independent
cells (one engine run per sweep point × algorithm × replication), and
:func:`parallel_map` fans those cells out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Workers are fed
pickle-stable payloads — :class:`~repro.datasets.ScenarioSpec` dicts for
declared scenarios (:func:`run_specs_parallel`), frozen
:class:`~repro.datasets.Scenario` worlds plus plain parameters for the
figure sweeps — so the ``spawn`` start method works on every platform,
and each cell seeds its own generators, so parallel results are
bit-identical to serial ones.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = [
    "FigureResult",
    "SeriesCollector",
    "summary_metric",
    "parallel_map",
    "run_specs_parallel",
    "compare_scenarios",
]


@dataclass
class FigureResult:
    """One reproduced figure: an x-sweep of metrics per algorithm.

    ``series[algorithm][metric]`` is a list aligned with ``x_values`` —
    exactly the rows the paper plots.
    """

    figure_id: str
    title: str
    x_label: str
    x_values: list[float] = field(default_factory=list)
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    notes: str = ""

    def add(self, algorithm: str, metric: str, value: float) -> None:
        self.series.setdefault(algorithm, {}).setdefault(metric, []).append(
            float(value)
        )

    def metric(self, algorithm: str, metric: str) -> list[float]:
        return self.series[algorithm][metric]

    # ------------------------------------------------------------------
    # shape checks used by benches and EXPERIMENTS.md
    # ------------------------------------------------------------------
    def dominates(
        self,
        winner: str,
        loser: str,
        metric: str,
        slack: float = 0.0,
    ) -> bool:
        """``winner``'s series is >= ``loser``'s at every x (minus slack)."""
        w = self.metric(winner, metric)
        l = self.metric(loser, metric)
        return all(a >= b - slack for a, b in zip(w, l))

    def mean_advantage(self, winner: str, loser: str, metric: str) -> float:
        """Average (winner - loser) across the sweep."""
        w = self.metric(winner, metric)
        l = self.metric(loser, metric)
        return float(sum(a - b for a, b in zip(w, l)) / len(w))


class SeriesCollector:
    """Context helper timing a figure run."""

    def __init__(self, figure: FigureResult) -> None:
        self.figure = figure
        self._start = 0.0

    def __enter__(self) -> FigureResult:
        self._start = time.perf_counter()
        return self.figure

    def __exit__(self, *exc) -> None:
        self.figure.elapsed_seconds = time.perf_counter() - self._start


def summary_metric(summary, name: str) -> float:
    """Resolve a metric name against a :class:`SimulationSummary`.

    Recognized: ``avg_utility``, ``total_utility``, ``satisfaction_ratio``,
    ``egalitarian_ratio`` and ``quality:<label>`` (e.g. ``quality:point``).
    """
    if name == "avg_utility":
        return summary.average_utility
    if name == "total_utility":
        return summary.total_utility
    if name == "satisfaction_ratio":
        return summary.satisfaction_ratio
    if name == "egalitarian_ratio":
        return summary.egalitarian_ratio
    if name.startswith("quality:"):
        return summary.average_quality(name.split(":", 1)[1])
    raise ValueError(f"unknown summary metric {name!r}")


def parallel_map(
    fn: Callable,
    argument_tuples: Sequence[tuple],
    max_workers: int | None = None,
    mp_context: str = "spawn",
) -> list:
    """``[fn(*args) for args in argument_tuples]``, optionally process-parallel.

    Results come back in submission order.  With ``max_workers`` of ``None``
    / ``0`` / ``1`` — or a single task — everything runs inline, so callers
    keep one code path for both modes.  ``fn`` must be module-level and its
    arguments picklable (``spawn`` is the default start method: slower to
    boot but safe on every platform and immune to fork/threading hazards).
    """
    tasks = list(argument_tuples)
    if not max_workers or max_workers <= 1 or len(tasks) <= 1:
        return [fn(*args) for args in tasks]
    context = multiprocessing.get_context(mp_context)
    workers = min(max_workers, len(tasks))
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = [pool.submit(fn, *args) for args in tasks]
        return [future.result() for future in futures]


def _run_spec_payload(payload: dict, n_slots: int | None):
    """Worker: rebuild a ScenarioSpec from its dict and run it."""
    from ..datasets import ScenarioSpec

    return ScenarioSpec.from_dict(payload).run(n_slots)


def run_specs_parallel(
    specs: Sequence,
    n_slots: int | None = None,
    max_workers: int | None = None,
    mp_context: str = "spawn",
) -> list:
    """Run a batch of :class:`~repro.datasets.ScenarioSpec`, one process each.

    Specs are shipped to the workers as their JSON-able dicts
    (:meth:`~repro.datasets.ScenarioSpec.to_dict`), rebuilt and run there;
    the returned :class:`~repro.core.SimulationSummary` list is aligned
    with ``specs``.  Every spec pins its own world/workload seeds, so the
    summaries are identical to a serial ``spec.run`` loop.
    """
    payloads = [(spec.to_dict(), n_slots) for spec in specs]
    return parallel_map(_run_spec_payload, payloads, max_workers, mp_context)


def compare_scenarios(
    specs: Sequence,
    n_slots: int | None = None,
    metrics: Sequence[str] = ("avg_utility", "satisfaction_ratio"),
    max_workers: int | None = None,
) -> FigureResult:
    """Run a batch of :class:`~repro.datasets.ScenarioSpec` and tabulate.

    Each spec becomes one series (keyed by its ``name``) with a single x
    point per run — the declarative counterpart of the hand-written figure
    sweeps, usable straight from the CLI or a notebook.  ``max_workers``
    fans the specs out over a process pool (:func:`run_specs_parallel`).
    """
    figure = FigureResult(
        "scenarios", "Declared scenario comparison", "run"
    )
    with SeriesCollector(figure) as fig:
        fig.x_values = [0]
        summaries = run_specs_parallel(specs, n_slots, max_workers)
        for spec, summary in zip(specs, summaries):
            for metric in metrics:
                fig.add(spec.name, metric, summary_metric(summary, metric))
    return fig
