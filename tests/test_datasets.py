"""Tests for the scenario builders."""

from __future__ import annotations

import pytest

from repro.datasets import (
    RWM_REGION,
    RWM_WORKING_REGION,
    build_intel_scenario,
    build_ozone_dataset,
    build_rnc_scenario,
    build_rwm_scenario,
)
from repro.mobility import PAPER_RNC_WORKING_REGION
from repro.sensors import FleetConfig


class TestRwmScenario:
    def test_paper_geometry(self):
        assert RWM_REGION.width == 80.0
        assert RWM_WORKING_REGION.width == 50.0

    def test_build_defaults(self):
        scenario = build_rwm_scenario(seed=5, n_sensors=30, n_slots=6)
        assert scenario.name == "RWM"
        assert scenario.n_sensors == 30
        assert scenario.n_slots == 6
        assert scenario.dmax == 5.0

    def test_fleets_are_identical_replays(self):
        scenario = build_rwm_scenario(seed=6, n_sensors=20, n_slots=5)
        a, b = scenario.make_fleet(), scenario.make_fleet()
        snap_a = a.announcements()
        snap_b = b.announcements()
        assert [(s.sensor_id, s.location, s.cost) for s in snap_a] == [
            (s.sensor_id, s.location, s.cost) for s in snap_b
        ]
        # Advancing one fleet does not disturb the other.
        a.advance()
        assert b.clock == 0

    def test_trace_cached_across_builds(self):
        s1 = build_rwm_scenario(seed=7, n_sensors=10, n_slots=4)
        s2 = build_rwm_scenario(seed=7, n_sensors=10, n_slots=4)
        assert s1.trace is s2.trace

    def test_with_config_swaps_economics_only(self):
        scenario = build_rwm_scenario(seed=8, n_sensors=10, n_slots=4)
        modified = scenario.with_config(FleetConfig(lifetime=3))
        assert modified.trace is scenario.trace
        assert modified.fleet_config.lifetime == 3


class TestRncScenario:
    def test_build_and_presence(self):
        scenario = build_rnc_scenario(
            seed=11, n_sensors=150, target_presence=30.0, n_slots=10
        )
        assert scenario.name == "RNC"
        assert scenario.dmax == 10.0
        presence = scenario.trace.mean_presence(PAPER_RNC_WORKING_REGION)
        assert 0.5 * 30 <= presence <= 2.0 * 30

    def test_fleet_announces_inside_working_region(self):
        scenario = build_rnc_scenario(
            seed=11, n_sensors=150, target_presence=30.0, n_slots=10
        )
        fleet = scenario.make_fleet()
        for snap in fleet.announcements():
            assert scenario.working_region.contains(snap.location)


class TestIntelScenario:
    def test_build(self):
        world = build_intel_scenario(seed=13, n_sensors=10, n_slots=6)
        assert world.scenario.name == "INTEL"
        assert world.scenario.working_region.width == 20.0
        assert world.scenario.dmax == 2.0
        assert world.gp.kernel.variance > 0

    def test_field_and_gp_consistent_scale(self):
        world = build_intel_scenario(seed=13, n_sensors=10, n_slots=6)
        # Learned variance within an order of magnitude of the generator's.
        assert 0.05 <= world.gp.kernel.variance <= 20.0

    def test_invalid_training_fraction(self):
        with pytest.raises(ValueError):
            build_intel_scenario(seed=1, training_fraction=0.0)


class TestOzoneDataset:
    def test_build(self):
        data = build_ozone_dataset(seed=17, n_slots=50)
        assert len(data.series) == 50
        assert data.model().period == data.period

    def test_cached(self):
        assert build_ozone_dataset(seed=18) is build_ozone_dataset(seed=18)

    def test_values_array(self):
        data = build_ozone_dataset(seed=17)
        assert data.values.shape == (50,)
