"""Mobility model interface.

A mobility model owns the positions of a population of sensors and advances
them one time slot at a time.  The aggregator never controls movement
(uncontrolled mobility is the defining obstacle the paper tackles): it only
*observes* positions at the start of each slot, when the sensors announce
location and price.
"""

from __future__ import annotations

import abc
from typing import Sequence

from ..spatial import Location, Region

__all__ = ["MobilityModel"]


class MobilityModel(abc.ABC):
    """Positions of ``n_sensors`` sensors, advanced slot by slot."""

    @property
    @abc.abstractmethod
    def n_sensors(self) -> int:
        """Number of sensors driven by this model."""

    @property
    @abc.abstractmethod
    def region(self) -> Region:
        """The full movement region (sensors may roam outside the hotspot)."""

    @abc.abstractmethod
    def locations(self) -> Sequence[Location]:
        """Current location of every sensor, indexed by sensor index."""

    @abc.abstractmethod
    def advance(self) -> None:
        """Move every sensor one time slot forward."""

    # ------------------------------------------------------------------
    # conveniences shared by all models
    # ------------------------------------------------------------------
    def location_of(self, index: int) -> Location:
        """Current location of sensor ``index``."""
        return self.locations()[index]

    def present_in(self, region: Region) -> list[int]:
        """Indices of sensors currently inside ``region``.

        The aggregator restricts itself to the working subregion
        ("hotspot"): sensors outside it are invisible for the slot but may
        re-enter later (Section 4.2).
        """
        return [i for i, loc in enumerate(self.locations()) if region.contains(loc)]

    def run(self, n_slots: int) -> list[list[Location]]:
        """Record positions over ``n_slots`` slots (including the current one).

        Returns a list of per-slot position lists; useful for converting a
        generative model into a replayable trace.
        """
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        frames = [list(self.locations())]
        for _ in range(n_slots - 1):
            self.advance()
            frames.append(list(self.locations()))
        return frames
