"""Query model: one-shot and continuous query types plus workload generators."""

from .aggregate import AggregateOp, SpatialAggregateQuery, TrajectoryQuery, sensor_quality
from .base import (
    BatchGainState,
    GainBlock,
    Query,
    QueryType,
    SensorRoster,
    ValuationState,
    gain_block_trusted,
    new_query_id,
    resolve_batch_state,
    resolve_relevant_mask,
)
from .event import EventDetectionQuery, EventSlotQuery, detection_confidence
from .monitoring import ContinuousQuery, LocationMonitoringQuery, RegionMonitoringQuery
from .point import MultiSensorPointQuery, PointQuery, reading_quality
from .workload import (
    AggregateQueryWorkload,
    TrajectoryQueryWorkload,
    EventDetectionWorkload,
    LocationMonitoringWorkload,
    PointQueryWorkload,
    RegionMonitoringWorkload,
)

__all__ = [
    "Query",
    "QueryType",
    "ValuationState",
    "SensorRoster",
    "BatchGainState",
    "GainBlock",
    "new_query_id",
    "resolve_relevant_mask",
    "resolve_batch_state",
    "gain_block_trusted",
    "PointQuery",
    "MultiSensorPointQuery",
    "reading_quality",
    "SpatialAggregateQuery",
    "TrajectoryQuery",
    "AggregateOp",
    "sensor_quality",
    "ContinuousQuery",
    "LocationMonitoringQuery",
    "RegionMonitoringQuery",
    "EventDetectionQuery",
    "EventSlotQuery",
    "detection_confidence",
    "PointQueryWorkload",
    "AggregateQueryWorkload",
    "TrajectoryQueryWorkload",
    "LocationMonitoringWorkload",
    "RegionMonitoringWorkload",
    "EventDetectionWorkload",
]
