"""Reproduction of every figure in the paper's evaluation (Section 4).

Each ``figN`` function regenerates the corresponding figure's series — the
same x-axis sweep, the same algorithms, the same metrics — on the synthetic
scenario substitutes (see DESIGN.md).  All functions take an
:class:`~repro.experiments.config.ExperimentScale` so benches can run them
small (``ci``) or at the published size (``paper``).
"""

from __future__ import annotations

import numpy as np

from ..core import (
    BaselineAllocator,
    GreedyAllocator,
    LocalSearchPointAllocator,
    LocationMonitoringController,
    OptimalPointAllocator,
    RegionMonitoringController,
    event_detection_engine,
    location_monitoring_engine,
    mix_engine,
    one_shot_engine,
    region_monitoring_engine,
)
from ..datasets import (
    build_intel_scenario,
    build_ozone_dataset,
    build_rnc_scenario,
    build_rwm_scenario,
)
from ..queries import (
    AggregateQueryWorkload,
    EventDetectionWorkload,
    LocationMonitoringWorkload,
    PointQueryWorkload,
    RegionMonitoringWorkload,
)
from ..sensors import FleetConfig, FullTrust, UniformTrust
from .config import ExperimentScale, get_scale
from .runner import FigureResult, SeriesCollector, parallel_map

__all__ = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig_event",
    "trust_sweep",
    "ALL_FIGURES",
]

_POINT_ALGORITHMS = {
    "Optimal": OptimalPointAllocator,
    "LocalSearch": LocalSearchPointAllocator,
    "Baseline": BaselineAllocator,
}


def _point_sweep_cell(
    scenario,
    n_slots: int,
    n_queries: int,
    budget: float,
    budget_spread: float,
    algorithm: str,
    rng_seed: int,
) -> tuple[float, float]:
    """One independent sweep cell: a full engine run for one (x, algorithm).

    Module-level and fed only picklable arguments, so :func:`parallel_map`
    can dispatch cells to worker processes; each cell seeds its own rng,
    which makes parallel results bit-identical to the serial loop.
    """
    workload = PointQueryWorkload(
        scenario.working_region,
        n_queries=n_queries,
        budget=float(budget),
        budget_spread=budget_spread,
        dmax=scenario.dmax,
    )
    engine = one_shot_engine(
        scenario.make_fleet(),
        workload,
        _POINT_ALGORITHMS[algorithm](),
        np.random.default_rng(rng_seed),
    )
    summary = engine.run(n_slots)
    return summary.average_utility, summary.satisfaction_ratio


def _point_sweep(
    figure: FigureResult,
    scenario,
    scale: ExperimentScale,
    budgets,
    seed: int,
    budget_spread: float = 0.0,
    n_queries: int | None = None,
    max_workers: int | None = None,
) -> FigureResult:
    """Shared engine for Figures 2, 3, 4 and 6."""
    n_queries = scale.point_queries_per_slot if n_queries is None else n_queries
    with SeriesCollector(figure) as fig:
        fig.x_values = list(budgets)
        cells = [
            (
                scenario,
                scale.n_slots,
                n_queries,
                float(budget),
                budget_spread,
                name,
                seed + int(budget * 10),
            )
            for budget in budgets
            for name in _POINT_ALGORITHMS
        ]
        results = parallel_map(_point_sweep_cell, cells, max_workers)
        for cell, (avg_utility, satisfaction) in zip(cells, results):
            name = cell[5]
            fig.add(name, "avg_utility", avg_utility)
            fig.add(name, "satisfaction_ratio", satisfaction)
    return fig


def fig2(
    scale: ExperimentScale | None = None,
    seed: int = 2013,
    max_workers: int | None = None,
) -> FigureResult:
    """Figure 2: point queries on RWM — utility and satisfaction vs budget."""
    scale = scale or get_scale()
    scenario = build_rwm_scenario(seed, scale.rwm_sensors, scale.n_slots)
    figure = FigureResult(
        "fig2", "Single-sensor point queries, RWM", "query budget"
    )
    return _point_sweep(
        figure, scenario, scale, scale.budgets, seed, max_workers=max_workers
    )


def fig3(
    scale: ExperimentScale | None = None,
    seed: int = 2013,
    max_workers: int | None = None,
) -> FigureResult:
    """Figure 3: point queries on RNC — utility and satisfaction vs budget."""
    scale = scale or get_scale()
    scenario = build_rnc_scenario(
        seed, scale.rnc_sensors, scale.rnc_presence, scale.n_slots
    )
    figure = FigureResult(
        "fig3", "Single-sensor point queries, RNC", "query budget"
    )
    return _point_sweep(
        figure, scenario, scale, scale.budgets, seed, max_workers=max_workers
    )


def fig4(
    scale: ExperimentScale | None = None,
    seed: int = 2013,
    max_workers: int | None = None,
) -> FigureResult:
    """Figure 4: RNC with budgets drawn uniformly in mean +- 10."""
    scale = scale or get_scale()
    scenario = build_rnc_scenario(
        seed, scale.rnc_sensors, scale.rnc_presence, scale.n_slots
    )
    figure = FigureResult(
        "fig4", "Uniformly distributed budgets, RNC", "mean query budget"
    )
    return _point_sweep(
        figure, scenario, scale, scale.budgets, seed, budget_spread=10.0,
        max_workers=max_workers,
    )


def fig5(
    scale: ExperimentScale | None = None,
    seed: int = 2013,
    max_workers: int | None = None,
) -> FigureResult:
    """Figure 5: RNC, query budget fixed at 15, number of queries swept."""
    scale = scale or get_scale()
    scenario = build_rnc_scenario(
        seed, scale.rnc_sensors, scale.rnc_presence, scale.n_slots
    )
    figure = FigureResult(
        "fig5", "Varying the number of queries (budget 15), RNC", "number of queries"
    )
    with SeriesCollector(figure) as fig:
        fig.x_values = list(scale.query_counts)
        cells = [
            (scenario, scale.n_slots, count, 15.0, 0.0, name, seed + count)
            for count in scale.query_counts
            for name in _POINT_ALGORITHMS
        ]
        results = parallel_map(_point_sweep_cell, cells, max_workers)
        for cell, (avg_utility, satisfaction) in zip(cells, results):
            name = cell[5]
            fig.add(name, "avg_utility", avg_utility)
            fig.add(name, "satisfaction_ratio", satisfaction)
    return fig


def fig6(
    scale: ExperimentScale | None = None,
    seed: int = 2013,
    max_workers: int | None = None,
) -> FigureResult:
    """Figure 6: random privacy levels + linear energy cost, lifetime 50/25.

    Metrics carry a lifetime suffix: ``avg_utility_l50`` corresponds to
    Figure 6(a), ``satisfaction_ratio_l25`` to Figure 6(d), and so on.
    """
    scale = scale or get_scale()
    figure = FigureResult(
        "fig6",
        "Random privacy sensitivity + linear energy cost, RNC",
        "query budget",
    )
    with SeriesCollector(figure) as fig:
        fig.x_values = list(scale.budgets)
        cells = []
        for lifetime in (50, 25):
            config = FleetConfig(
                lifetime=lifetime,
                linear_energy=True,
                beta_range=(0.0, 4.0),
                random_privacy=True,
            )
            scenario = build_rnc_scenario(
                seed, scale.rnc_sensors, scale.rnc_presence, scale.n_slots,
                fleet_config=config,
            )
            for budget in scale.budgets:
                for name in _POINT_ALGORITHMS:
                    cells.append(
                        (
                            lifetime,
                            (
                                scenario,
                                scale.n_slots,
                                scale.point_queries_per_slot,
                                float(budget),
                                0.0,
                                name,
                                seed + int(budget * 10),
                            ),
                        )
                    )
        results = parallel_map(
            _point_sweep_cell, [cell for _, cell in cells], max_workers
        )
        for (lifetime, cell), (avg_utility, satisfaction) in zip(cells, results):
            name = cell[5]
            fig.add(name, f"avg_utility_l{lifetime}", avg_utility)
            fig.add(name, f"satisfaction_ratio_l{lifetime}", satisfaction)
    return fig


def fig7(scale: ExperimentScale | None = None, seed: int = 2013) -> FigureResult:
    """Figure 7: spatial aggregate queries — Greedy (Alg. 1) vs Baseline."""
    scale = scale or get_scale()
    scenario = build_rnc_scenario(
        seed, scale.rnc_sensors, scale.rnc_presence, scale.n_slots
    )
    algorithms = {"Greedy": GreedyAllocator, "Baseline": BaselineAllocator}
    figure = FigureResult("fig7", "Spatial aggregate queries, RNC", "budget factor")
    with SeriesCollector(figure) as fig:
        fig.x_values = list(scale.aggregate_budget_factors)
        for factor in scale.aggregate_budget_factors:
            for name, factory in algorithms.items():
                workload = AggregateQueryWorkload(
                    scenario.working_region,
                    budget_factor=float(factor),
                    mean_queries=scale.aggregate_mean_queries,
                    count_spread=min(10, scale.aggregate_mean_queries - 1),
                    sensing_range=scenario.dmax,
                )
                engine = one_shot_engine(
                    scenario.make_fleet(),
                    workload,
                    factory(),
                    np.random.default_rng(seed + int(factor * 10)),
                )
                summary = engine.run(scale.n_slots)
                fig.add(name, "avg_utility", summary.average_utility)
                fig.add(name, "avg_quality", summary.average_quality("aggregate"))
    return fig


def fig8(scale: ExperimentScale | None = None, seed: int = 2013) -> FigureResult:
    """Figure 8: location monitoring — Alg2-O / Alg2-LS / Baseline."""
    scale = scale or get_scale()
    scenario = build_rnc_scenario(
        seed, scale.rnc_sensors, scale.rnc_presence, scale.n_slots
    )
    ozone = build_ozone_dataset(seed, n_slots=max(50, scale.n_slots))
    variants = {
        "Alg2-O": (OptimalPointAllocator, LocationMonitoringController()),
        "Alg2-LS": (LocalSearchPointAllocator, LocationMonitoringController()),
        "Baseline": (
            BaselineAllocator,
            LocationMonitoringController(opportunistic=False, scheduled_only=True),
        ),
    }
    figure = FigureResult("fig8", "Location monitoring queries, RNC", "budget factor")
    with SeriesCollector(figure) as fig:
        fig.x_values = list(scale.monitoring_budget_factors)
        for factor in scale.monitoring_budget_factors:
            for name, (alloc_factory, controller_proto) in variants.items():
                workload = LocationMonitoringWorkload(
                    scenario.working_region,
                    ozone.values,
                    ozone.model(),
                    budget_factor=float(factor),
                    max_live=scale.lm_max_live,
                    arrivals_per_slot=scale.lm_arrivals_per_slot,
                    dmax=scenario.dmax,
                )
                controller = LocationMonitoringController(
                    alpha=controller_proto.alpha,
                    opportunistic=controller_proto.opportunistic,
                    scheduled_only=controller_proto.scheduled_only,
                )
                engine = location_monitoring_engine(
                    scenario.make_fleet(),
                    workload,
                    alloc_factory(),
                    np.random.default_rng(seed + int(factor * 10)),
                    controller=controller,
                )
                summary = engine.run(scale.n_slots)
                fig.add(name, "avg_utility", summary.average_utility)
                fig.add(
                    name, "avg_quality", summary.average_quality("location_monitoring")
                )
    return fig


def fig9(scale: ExperimentScale | None = None, seed: int = 2013) -> FigureResult:
    """Figure 9: region monitoring — Alg3 vs Baseline on the Intel field."""
    scale = scale or get_scale()
    world = build_intel_scenario(seed, scale.intel_sensors, scale.n_slots)
    variants = {
        "Alg3": (OptimalPointAllocator, RegionMonitoringController()),
        "Baseline": (
            BaselineAllocator,
            RegionMonitoringController(
                weight_fn=lambda k: 1.0, use_shared_sensors=False
            ),
        ),
    }
    figure = FigureResult("fig9", "Region monitoring queries, Intel field", "budget factor")
    with SeriesCollector(figure) as fig:
        fig.x_values = list(scale.monitoring_budget_factors)
        for factor in scale.monitoring_budget_factors:
            for name, (alloc_factory, controller_proto) in variants.items():
                workload = RegionMonitoringWorkload(
                    world.scenario.working_region,
                    world.gp,
                    budget_factor=float(factor),
                    sensing_radius=world.scenario.dmax,
                )
                controller = RegionMonitoringController(
                    alpha=controller_proto.alpha,
                    weight_fn=controller_proto.weight_fn,
                    use_shared_sensors=controller_proto.use_shared_sensors,
                )
                engine = region_monitoring_engine(
                    world.scenario.make_fleet(),
                    workload,
                    alloc_factory(),
                    np.random.default_rng(seed + int(factor * 10)),
                    controller=controller,
                )
                summary = engine.run(scale.n_slots)
                fig.add(name, "avg_utility", summary.average_utility)
                fig.add(
                    name, "avg_quality", summary.average_quality("region_monitoring")
                )
    return fig


def fig10(scale: ExperimentScale | None = None, seed: int = 2013) -> FigureResult:
    """Figure 10: the query mix — Algorithm 5 vs the sequential baseline.

    As in the paper: point + aggregate + location monitoring on RNC (region
    monitoring excluded — no measurement data), sensor lifetime 25, random
    privacy sensitivity, linear energy cost with beta ~ U[0, 4].
    """
    scale = scale or get_scale()
    config = FleetConfig(
        lifetime=25, linear_energy=True, beta_range=(0.0, 4.0), random_privacy=True
    )
    scenario = build_rnc_scenario(
        seed, scale.rnc_sensors, scale.rnc_presence, scale.n_slots, fleet_config=config
    )
    ozone = build_ozone_dataset(seed, n_slots=max(50, scale.n_slots))
    variants = {
        "Alg5": {},
        "Baseline": {
            "sequential": True,
            "lm_controller": LocationMonitoringController(
                opportunistic=False, scheduled_only=True
            ),
            "rm_controller": RegionMonitoringController(
                weight_fn=lambda k: 1.0, use_shared_sensors=False
            ),
        },
    }
    figure = FigureResult("fig10", "Query mix, RNC", "budget factor")
    with SeriesCollector(figure) as fig:
        fig.x_values = list(scale.mix_budget_factors)
        for factor in scale.mix_budget_factors:
            for name, mix_options in variants.items():
                point_wl = PointQueryWorkload(
                    scenario.working_region,
                    n_queries=scale.point_queries_per_slot,
                    budget=float(factor),
                    dmax=scenario.dmax,
                )
                agg_wl = AggregateQueryWorkload(
                    scenario.working_region,
                    budget_factor=float(factor),
                    mean_queries=scale.aggregate_mean_queries,
                    count_spread=min(10, scale.aggregate_mean_queries - 1),
                    sensing_range=scenario.dmax,
                )
                lm_wl = LocationMonitoringWorkload(
                    scenario.working_region,
                    ozone.values,
                    ozone.model(),
                    budget_factor=float(factor),
                    max_live=scale.lm_max_live,
                    arrivals_per_slot=scale.lm_arrivals_per_slot,
                    dmax=scenario.dmax,
                )
                engine = mix_engine(
                    scenario.make_fleet(),
                    point_wl,
                    agg_wl,
                    lm_wl,
                    np.random.default_rng(seed + int(factor * 10)),
                    **mix_options,
                )
                summary = engine.run(scale.n_slots)
                fig.add(name, "avg_utility", summary.average_utility)
                fig.add(name, "quality_point", summary.average_quality("point"))
                fig.add(name, "quality_aggregate", summary.average_quality("aggregate"))
                fig.add(
                    name,
                    "quality_location_monitoring",
                    summary.average_quality("location_monitoring"),
                )
    return fig


def fig_event(scale: ExperimentScale | None = None, seed: int = 2013) -> FigureResult:
    """Event-detection extension: latency / confidence attainment vs budget.

    The paper defers event detection (Section 2.3) but notes its data
    acquisition mirrors the monitoring queries with redundant sampling;
    this figure-style sweep exercises exactly that economics: per-slot
    budgets scale the redundant-witness pool, so a larger budget factor
    buys the requested confidence sooner.  A steady exceedance phenomenon
    (constant 75 against threshold 50) makes every confident sampled slot
    a detection, so the reported latency isolates *acquisition* delay —
    how many slots of sampling it takes to afford the confidence — from
    phenomenon dynamics.

    Metrics per budget factor, for Greedy (Algorithm 1 on the derived
    ``EventSlotQuery`` sets) vs the sequential Baseline:

    * ``avg_utility`` — slot utility as everywhere else;
    * ``confidence_attainment`` — mean per-slot ``min(1, achieved/alpha)``
      over the retired queries (their ``quality_of_results``);
    * ``detection_ratio`` — fraction of retired queries that fired;
    * ``detection_latency`` — mean slots from issue to first detection
      over the fired queries (``n_slots`` when nothing fired: the sweep's
      pessimistic ceiling, keeping the series comparable).
    """
    scale = scale or get_scale()
    scenario = build_rwm_scenario(seed, scale.rwm_sensors, scale.n_slots)

    def phenomenon(t, location):
        return 75.0  # steady exceedance of the threshold below

    variants = {"Greedy": GreedyAllocator, "Baseline": BaselineAllocator}
    figure = FigureResult(
        "fig_event", "Event detection (extension), RWM", "budget factor"
    )
    with SeriesCollector(figure) as fig:
        fig.x_values = list(scale.event_budget_factors)
        for factor in scale.event_budget_factors:
            for name, factory in variants.items():
                workload = EventDetectionWorkload(
                    scenario.working_region,
                    threshold=50.0,
                    confidence=0.8,
                    budget_factor=float(factor),
                    arrivals_per_slot=scale.event_arrivals_per_slot,
                    duration_range=(2, max(3, scale.n_slots // 2)),
                    # Events watch coarse phenomena: a wider sensing reach
                    # than the point queries' dmax, so the redundant
                    # witness pool is budget-limited, not geometry-limited.
                    dmax=3.0 * scenario.dmax,
                )
                engine = event_detection_engine(
                    scenario.make_fleet(),
                    workload,
                    factory(),
                    np.random.default_rng(seed + int(factor * 10)),
                    phenomenon=phenomenon,
                )
                summary = engine.run(scale.n_slots)
                fig.add(name, "avg_utility", summary.average_utility)
                fig.add(
                    name, "confidence_attainment", summary.average_quality("event")
                )
                fig.add(
                    name, "detection_ratio", summary.average_quality("event_detected")
                )
                latency = (
                    summary.average_quality("event_detection_latency")
                    if summary.quality_count("event_detection_latency")
                    else float(scale.n_slots)
                )
                fig.add(name, "detection_latency", latency)
    return fig


def trust_sweep(scale: ExperimentScale | None = None, seed: int = 2013) -> FigureResult:
    """Section 4.7 (text): utility grows with sensor trustworthiness."""
    scale = scale or get_scale()
    distributions = {
        "FullTrust": FullTrust(),
        "Uniform[0.5,1]": UniformTrust(0.5, 1.0),
        "Uniform[0,1]": UniformTrust(0.0, 1.0),
    }
    figure = FigureResult(
        "trust_sweep", "Trust distribution sensitivity (point queries, RNC)", "trust distribution"
    )
    with SeriesCollector(figure) as fig:
        fig.x_values = [0]
        for name, trust_model in distributions.items():
            config = FleetConfig(trust_model=trust_model)
            scenario = build_rnc_scenario(
                seed, scale.rnc_sensors, scale.rnc_presence, scale.n_slots,
                fleet_config=config,
            )
            workload = PointQueryWorkload(
                scenario.working_region,
                n_queries=scale.point_queries_per_slot,
                budget=15.0,
                dmax=scenario.dmax,
            )
            engine = one_shot_engine(
                scenario.make_fleet(),
                workload,
                LocalSearchPointAllocator(),
                np.random.default_rng(seed),
            )
            summary = engine.run(scale.n_slots)
            fig.add(name, "avg_utility", summary.average_utility)
            fig.add(name, "satisfaction_ratio", summary.satisfaction_ratio)
    return fig


ALL_FIGURES = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig_event": fig_event,
    "trust_sweep": trust_sweep,
}
