#!/usr/bin/env python
"""Fail if a junit XML report collected nothing or skipped anything.

CI runs the parity suites through this gate so an environment problem that
silently skips them (missing dataset, import error masked as a skip) fails
the job instead of green-washing it.

Usage:  python scripts/check_junit_no_skips.py REPORT.xml [LABEL]
"""

from __future__ import annotations

import sys
import xml.etree.ElementTree as ET


def main(argv: list[str]) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__, file=sys.stderr)
        return 2
    path = argv[1]
    label = argv[2] if len(argv) == 3 else path
    root = ET.parse(path).getroot()
    suite = root if root.tag == "testsuite" else root.find("testsuite")
    tests = int(suite.get("tests", 0))
    skipped = int(suite.get("skipped", 0))
    if tests == 0:
        print(f"{label}: collected no tests", file=sys.stderr)
        return 1
    if skipped:
        print(f"{label}: skipped {skipped}/{tests} tests", file=sys.stderr)
        return 1
    print(f"{label}: {tests} tests, 0 skipped")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
