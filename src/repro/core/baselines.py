"""Baseline allocators — the comparison points of Section 4.

The paper evaluates its algorithms against "sequential execution of queries
with data buffering": queries are processed one by one in arrival order,
each grabbing whatever maximizes *its own* utility; a sensor selected once
costs nothing for the rest of the slot (its data is buffered), and a sensor
answering a query at a location also answers every other query at that
location.

One engine covers both published baselines:

* Section 4.3 (point queries): each query picks the single sensor with the
  best ``v_q(s) - c_eff(s)``.
* Section 4.4 (aggregate queries): each query greedily grows its own sensor
  set while the marginal valuation exceeds the effective cost.

because a single-sensor point query *is* a set query whose second sensor
never adds value.

The implementation is array-native end to end: candidate sets come from the
kernel's sparse point rows or each query's vectorized
:meth:`~repro.queries.Query.relevant_mask` (scalar ``relevant`` scans
survive only as the fallback for query types without vectorized geometry),
per-round gains arrive through the batch-gain protocol, the paid/chosen
bookkeeping lives in boolean column arrays, and announcement snapshots are
materialized only for the sensors actually picked (``result.record`` /
``state.add`` time).  Sensor picks replicate the historical per-candidate
scan *exactly* — including its sequential "beats the incumbent by more than
``min_gain``" tie-breaking — so allocations are bit-identical to the
pre-vectorization implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..queries import PointQuery, Query
from ..queries.base import resolve_relevant_mask
from ..sensors import SensorSnapshot
from ..sensors.state import as_announcement_sequence
from .allocation import AllocationResult, check_distinct
from .valuation import ValuationKernel

__all__ = ["BaselineAllocator"]


class BaselineAllocator:
    """Sequential per-query execution with intra-slot data buffering.

    Args:
        min_gain: numerical floor for treating a marginal as positive.
        share_colocated: give a selected sensor to every other point query
            at the same location for free (the paper's point baseline does;
            disable to measure how much that sharing contributes).
    """

    name = "Baseline"
    supports_kernel = True

    def __init__(self, min_gain: float = 1e-9, share_colocated: bool = True) -> None:
        if min_gain < 0:
            raise ValueError("min_gain must be non-negative")
        self.min_gain = min_gain
        self.share_colocated = share_colocated

    def allocate(
        self,
        queries: Sequence[Query],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None = None,
    ) -> AllocationResult:
        check_distinct(queries, sensors)
        result = AllocationResult()
        if not queries or not len(sensors):
            return result
        # Keep an AnnouncementBatch lazy; copy only non-indexable inputs.
        sensors = as_announcement_sequence(sensors)
        kernel = ValuationKernel.ensure(kernel, sensors)
        n_all = len(sensors)

        # Vectorized Q_{l_s} prefilter + precomputed value rows for plain
        # point queries.  A sharding-capable kernel supplies per-query
        # sparse (columns, values) pairs — every omitted column is exactly
        # zero in the dense row, so the candidate sets below come out
        # identical.
        plain = [q for q in queries if type(q) is PointQuery]
        value_rows: dict[str, np.ndarray] = {}
        sparse_rows: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        sparse_fn = getattr(kernel, "sparse_single_values", None)
        view_of = getattr(kernel, "candidate_view", None)
        if plain:
            if sparse_fn is not None:
                for query, entry in zip(plain, sparse_fn(plain)):
                    sparse_rows[query.query_id] = entry
            else:
                rows = kernel.single_values(plain)
                value_rows = {q.query_id: rows[i] for i, q in enumerate(plain)}

        # Announced costs as one stacked column (the exact values the lazy
        # snapshots materialize from); snapshot lists pay one gather.
        announced_costs = getattr(sensors, "costs", None)
        if announced_costs is None:
            announced_costs = np.fromiter((s.cost for s in sensors), float, n_all)
        paid = np.zeros(n_all, dtype=bool)  # cost already covered (buffered)
        answered: set[str] = set()

        for query in queries:
            if query.query_id in answered:
                continue
            state = query.new_state()
            sparse = sparse_rows.get(query.query_id)
            row = value_rows.get(query.query_id)
            if sparse is not None:
                idx, vals = sparse
                positive = vals > 0.0
                candidate_idx = idx[positive]
                candidate_vals = vals[positive]
            elif row is not None:
                candidate_idx = np.flatnonzero(row > 0.0)
                candidate_vals = row[candidate_idx]
            else:
                # Non-point queries: one relevance-mask pass over the
                # candidate shards (or the full stacked arrays), ascending
                # column order either way so near-tie picks cannot diverge
                # from the historical full scan.
                view = view_of(query) if view_of is not None else None
                if view is not None:
                    cand, cand_xy, cand_gamma, cand_trust = view
                    mask = resolve_relevant_mask(query, cand_xy, cand_gamma, cand_trust)
                    if mask is not None:
                        candidate_idx = cand[mask]
                    else:
                        candidate_idx = np.fromiter(
                            (j for j in cand if query.relevant(sensors[j])), np.intp
                        )
                else:
                    mask = resolve_relevant_mask(
                        query, kernel.sensor_xy, kernel.gamma, kernel.trust
                    )
                    if mask is not None:
                        candidate_idx = np.flatnonzero(mask)
                    else:
                        candidate_idx = np.fromiter(
                            (j for j, s in enumerate(sensors) if query.relevant(s)),
                            np.intp,
                        )
                candidate_vals = None
            n_cand = len(candidate_idx)
            # Per-query roster over a lazy column view: the batch state
            # evaluates all of this query's candidates in one vectorized
            # pass per round, and no snapshot is built until a candidate
            # actually wins a round.
            roster = kernel.roster(candidate_idx, sensors)
            if candidate_vals is not None:
                roster.value_rows[query.query_id] = candidate_vals
            else:
                # The roster holds exactly this query's relevant sensors.
                roster.relevance_rows[query.query_id] = np.ones(n_cand, dtype=bool)
            batch = state.batch(roster)
            local_indices = roster.all_indices
            cand_costs = announced_costs[candidate_idx]
            chosen = np.zeros(n_cand, dtype=bool)
            while n_cand:
                gains = batch.gain_many(local_indices)
                effective = np.where(paid[candidate_idx], 0.0, cand_costs)
                nets = gains - effective
                # The historical pick scan, array-side: walk the candidates
                # in order, replacing the incumbent only when a net beats
                # it by more than min_gain.  Each record break is one
                # vectorized comparison over the remaining tail, so the
                # loop runs once per *strict improvement*, not per sensor.
                positions = np.flatnonzero((~chosen) & (gains > self.min_gain))
                best_pos = -1
                best_net = 0.0
                while positions.size:
                    hits = np.flatnonzero(nets[positions] > best_net + self.min_gain)
                    if hits.size == 0:
                        break
                    first = int(hits[0])
                    best_pos = int(positions[first])
                    best_net = float(nets[best_pos])
                    positions = positions[first + 1 :]
                if best_pos < 0:
                    break
                column = int(candidate_idx[best_pos])
                snapshot = roster.snapshots[best_pos]
                newly_paid = not paid[column]
                payment = float(cand_costs[best_pos]) if newly_paid else 0.0
                state.add(snapshot)
                chosen[best_pos] = True
                paid[column] = True
                result.record(query, snapshot, float(gains[best_pos]), payment)
            answered.add(query.query_id)

            # Point-query co-location sharing: "a sensor that is selected to
            # answer a query at a certain location is also assigned to all
            # other queries at that location" (Section 4.3).
            if self.share_colocated and isinstance(query, PointQuery) and chosen.any():
                chosen_snapshot = roster.snapshots[int(np.argmax(chosen))]
                for other in queries:
                    if (
                        isinstance(other, PointQuery)
                        and other.query_id not in answered
                        and other.location == query.location
                    ):
                        value = other.value_single(chosen_snapshot)
                        if value > 0.0:
                            result.record(other, chosen_snapshot, value, 0.0)
                            answered.add(other.query_id)

        result.verify()
        return result
