"""Tests for proportionate cost allocation (eq. 11) and contributions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import proportionate_shares, redistribute_contribution

value_maps = st.dictionaries(
    st.text(min_size=1, max_size=4),
    st.floats(0.01, 100.0, allow_nan=False),
    min_size=1,
    max_size=6,
)


class TestProportionateShares:
    def test_single_beneficiary_pays_everything(self):
        assert proportionate_shares({"q": 5.0}, 10.0) == {"q": 10.0}

    def test_split_is_proportional(self):
        shares = proportionate_shares({"a": 30.0, "b": 10.0}, 8.0)
        assert shares["a"] == pytest.approx(6.0)
        assert shares["b"] == pytest.approx(2.0)

    def test_empty_beneficiaries(self):
        assert proportionate_shares({}, 10.0) == {}

    def test_zero_cost(self):
        shares = proportionate_shares({"a": 1.0, "b": 1.0}, 0.0)
        assert shares == {"a": 0.0, "b": 0.0}

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            proportionate_shares({"a": 1.0}, -1.0)

    def test_non_positive_value_rejected(self):
        with pytest.raises(ValueError):
            proportionate_shares({"a": 0.0}, 1.0)

    @given(value_maps, st.floats(0, 50))
    @settings(max_examples=60)
    def test_shares_sum_to_cost(self, values, cost):
        shares = proportionate_shares(values, cost)
        assert sum(shares.values()) == pytest.approx(cost, abs=1e-9)

    @given(value_maps, st.floats(0, 50))
    @settings(max_examples=60)
    def test_share_order_follows_value_order(self, values, cost):
        shares = proportionate_shares(values, cost)
        ordered = sorted(values, key=values.get)
        share_values = [shares[k] for k in ordered]
        assert share_values == sorted(share_values)

    @given(value_maps)
    @settings(max_examples=60)
    def test_individual_utility_nonnegative_when_cost_below_total(self, values):
        """Theorem 1 property 3: when a sensor is selected because its total
        value exceeds its cost, every share is below the query's value."""
        total = sum(values.values())
        shares = proportionate_shares(values, total * 0.99)
        for qid, share in shares.items():
            assert share <= values[qid] + 1e-9


class TestRedistributeContribution:
    def test_partial_contribution_scales_payers(self):
        adjusted, applied = redistribute_contribution({"a": 6.0, "b": 4.0}, 5.0)
        assert applied == pytest.approx(5.0)
        assert adjusted["a"] == pytest.approx(3.0)
        assert adjusted["b"] == pytest.approx(2.0)

    def test_contribution_clamped_to_total(self):
        adjusted, applied = redistribute_contribution({"a": 3.0}, 10.0)
        assert applied == pytest.approx(3.0)
        assert adjusted["a"] == pytest.approx(0.0)

    def test_zero_contribution(self):
        adjusted, applied = redistribute_contribution({"a": 3.0}, 0.0)
        assert applied == 0.0
        assert adjusted == {"a": 3.0}

    def test_negative_contribution_rejected(self):
        with pytest.raises(ValueError):
            redistribute_contribution({"a": 1.0}, -1.0)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=3),
            st.floats(0.01, 20.0),
            min_size=1,
            max_size=5,
        ),
        st.floats(0, 40),
    )
    @settings(max_examples=60)
    def test_total_conserved(self, payments, contribution):
        """Sensor income is conserved: reduced payments + applied
        contribution always equals the original total."""
        adjusted, applied = redistribute_contribution(payments, contribution)
        before = sum(payments.values())
        after = sum(adjusted.values()) + applied
        assert after == pytest.approx(before, abs=1e-9)
