"""Observability for the streaming marketplace service.

The service's SLO story is latency + admission honesty: every tick it
feeds the engine's per-phase wall-times
(:attr:`~repro.core.engine.SlotEngine.last_timings`) into fixed
log-spaced latency histograms (:class:`LatencyHistogram`), counts every
submission outcome (admitted / rejected-by-reason / settled / answered),
and samples the queue depth — all O(1) per observation, so a month-long
service run holds constant-size aggregates plus one
:class:`SlotMetrics` snapshot per slot (mirroring the engine's own
one-:class:`~repro.core.metrics.SlotRecord`-per-slot growth).

:func:`summary_payload` is the one JSON serializer for run summaries:
``repro scenario --json``, ``repro scenario --out`` and the service's
:meth:`ServiceMetrics.payload` all emit it, so batch runs and service
runs are machine-comparable field for field.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..core.engine import PHASES
from ..core.metrics import RunningStat, SimulationSummary

__all__ = [
    "LatencyHistogram",
    "SlotMetrics",
    "ServiceMetrics",
    "phase_totals",
    "phase_allocs",
    "summary_payload",
]


class LatencyHistogram:
    """Fixed log-spaced latency buckets with streaming quantile estimates.

    Buckets span ``[lowest, highest]`` seconds at ``buckets_per_decade``
    resolution (defaults give ~7% relative bucket width), plus one
    overflow bucket.  :meth:`observe` is O(log buckets); quantiles are
    read from the cumulative counts and reported as the bucket's
    geometric midpoint clipped to the observed min/max — an estimate
    with bounded relative error, which is what an SLO dashboard needs
    (the exact per-slot timings stay available in the snapshots).
    """

    def __init__(
        self,
        lowest: float = 1e-6,
        highest: float = 600.0,
        buckets_per_decade: int = 15,
    ) -> None:
        if not (0 < lowest < highest):
            raise ValueError("need 0 < lowest < highest")
        decades = math.log10(highest / lowest)
        n = int(math.ceil(decades * buckets_per_decade)) + 1
        #: upper bound of each bucket; observations beyond the last bound
        #: land in the overflow bucket.
        self.bounds = lowest * np.power(10.0, np.arange(n) / buckets_per_decade)
        self.counts = np.zeros(n + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        idx = int(np.searchsorted(self.bounds, seconds, side="left"))
        self.counts[idx] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (0 with no observations)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, int(math.ceil(q * self.count)))
        cum = int(np.searchsorted(np.cumsum(self.counts), rank))
        if cum >= len(self.bounds):  # overflow bucket
            return self.max
        upper = float(self.bounds[cum])
        lower = float(self.bounds[cum - 1]) if cum > 0 else upper / 10.0
        mid = math.sqrt(lower * upper)
        return min(max(mid, self.min), self.max)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> dict[str, float]:
        return {
            "count": int(self.count),
            "mean_seconds": self.mean,
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
            "min_seconds": 0.0 if self.count == 0 else self.min,
            "max_seconds": self.max,
        }


@dataclass(frozen=True)
class SlotMetrics:
    """One tick's service-side snapshot (queue + admission + latency)."""

    slot: int
    admitted: int
    rejected: int
    queue_depth: int
    issued: int
    answered: int
    value: float
    cost: float
    slot_seconds: float
    timings: dict[str, float]
    #: cumulative slot-latency quantiles *as of this slot* — the rolling
    #: SLO a live dashboard would plot.
    p50_seconds: float
    p99_seconds: float
    #: per-phase ``(allocations, bytes)`` under an allocation-metering
    #: backend (:attr:`~repro.core.engine.SlotEngine.last_allocs`); empty
    #: on the plain numpy backend.
    allocs: dict[str, tuple[int, int]] = field(default_factory=dict)


@dataclass
class ServiceMetrics:
    """Aggregated service observability: counters, gauges, histograms.

    All counters are monotone; the queue-depth gauge and admission-wait
    stats stream through :class:`~repro.core.metrics.RunningStat`; the
    per-phase and whole-slot latency histograms are
    :class:`LatencyHistogram` instances keyed by
    :data:`~repro.core.engine.PHASES` (+ ``"slot"`` for the total).
    """

    submitted: int = 0
    admitted: int = 0
    settled: int = 0
    answered: int = 0
    rejected: dict[str, int] = field(default_factory=dict)
    queue_depth: RunningStat = field(default_factory=RunningStat)
    max_queue_depth: int = 0
    admission_wait_ticks: RunningStat = field(default_factory=RunningStat)
    max_admission_wait: int = 0
    phase_latency: dict[str, LatencyHistogram] = field(
        default_factory=lambda: {p: LatencyHistogram() for p in PHASES}
    )
    slot_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    slots: list[SlotMetrics] = field(default_factory=list)
    #: cumulative per-phase ``[allocations, bytes]`` across metered slots.
    phase_allocs: dict[str, list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def observe_submit(self, accepted: bool, reason: str | None = None) -> None:
        self.submitted += 1
        if not accepted:
            key = reason or "rejected"
            self.rejected[key] = self.rejected.get(key, 0) + 1

    def observe_admission(self, waits: list[int]) -> None:
        self.admitted += len(waits)
        for wait in waits:
            self.admission_wait_ticks.add(float(wait))
            if wait > self.max_admission_wait:
                self.max_admission_wait = int(wait)

    def observe_queue_depth(self, depth: int) -> None:
        self.queue_depth.add(float(depth))
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def observe_slot(
        self,
        slot: int,
        *,
        admitted: int,
        rejected: int,
        queue_depth: int,
        record,
        timings: dict[str, float],
        allocs: dict[str, tuple[int, int]] | None = None,
    ) -> SlotMetrics:
        """Fold one settled tick in and return its snapshot."""
        total = float(sum(timings.values()))
        for phase, seconds in timings.items():
            hist = self.phase_latency.get(phase)
            if hist is None:
                hist = self.phase_latency.setdefault(phase, LatencyHistogram())
            hist.observe(seconds)
        self.slot_latency.observe(total)
        if allocs:
            for phase, (count, nbytes) in allocs.items():
                totals = self.phase_allocs.setdefault(phase, [0, 0])
                totals[0] += int(count)
                totals[1] += int(nbytes)
        self.settled += record.issued
        self.answered += record.answered
        self.observe_queue_depth(queue_depth)
        snap = SlotMetrics(
            slot=slot,
            admitted=admitted,
            rejected=rejected,
            queue_depth=queue_depth,
            issued=record.issued,
            answered=record.answered,
            value=record.value,
            cost=record.cost,
            slot_seconds=total,
            timings=dict(timings),
            p50_seconds=self.slot_latency.p50,
            p99_seconds=self.slot_latency.p99,
            allocs=dict(allocs) if allocs else {},
        )
        self.slots.append(snap)
        return snap

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def payload(self) -> dict[str, Any]:
        """JSON-able snapshot: counters + SLO latencies + per-slot rows."""
        return {
            "counters": {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected": dict(sorted(self.rejected.items())),
                "rejected_total": self.rejected_total,
                "settled": self.settled,
                "answered": self.answered,
            },
            "queue": {
                "mean_depth": self.queue_depth.mean,
                "max_depth": self.max_queue_depth,
                "mean_admission_wait_ticks": self.admission_wait_ticks.mean,
                "max_admission_wait_ticks": self.max_admission_wait,
            },
            "latency": {
                "slot": self.slot_latency.snapshot(),
                "phases": {
                    phase: hist.snapshot()
                    for phase, hist in self.phase_latency.items()
                },
            },
            "allocs": {
                phase: {"count": totals[0], "bytes": totals[1]}
                for phase, totals in sorted(self.phase_allocs.items())
            },
            "slots": [
                {
                    "slot": s.slot,
                    "admitted": s.admitted,
                    "rejected": s.rejected,
                    "queue_depth": s.queue_depth,
                    "issued": s.issued,
                    "answered": s.answered,
                    "value": s.value,
                    "cost": s.cost,
                    "slot_seconds": s.slot_seconds,
                    "p50_seconds": s.p50_seconds,
                    "p99_seconds": s.p99_seconds,
                    **{f"t_{p}": s.timings.get(p, 0.0) for p in PHASES},
                    **(
                        {
                            key: int(value)
                            for p in PHASES
                            for key, value in (
                                (f"alloc_{p}_count", s.allocs.get(p, (0, 0))[0]),
                                (f"alloc_{p}_bytes", s.allocs.get(p, (0, 0))[1]),
                            )
                        }
                        if s.allocs
                        else {}
                    ),
                }
                for s in self.slots
            ],
        }

    def write_json(self, path: str | Path, *, extra: dict | None = None) -> None:
        payload = self.payload()
        if extra:
            payload = {**extra, "service": payload}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    def write_csv(self, path: str | Path) -> None:
        """Per-slot CSV: admission, queue depth, phase + rolling p50/p99.

        Metered runs (any slot observed with ``allocs``) append per-phase
        ``alloc_<phase>_count`` / ``alloc_<phase>_bytes`` columns.
        """
        metered = any(s.allocs for s in self.slots)
        with Path(path).open("w", newline="") as handle:
            writer = csv.writer(handle)
            header = (
                ["slot", "admitted", "rejected", "queue_depth", "issued",
                 "answered", "slot_seconds", "p50_seconds", "p99_seconds"]
                + [f"t_{p}" for p in PHASES]
            )
            if metered:
                for p in PHASES:
                    header += [f"alloc_{p}_count", f"alloc_{p}_bytes"]
            writer.writerow(header)
            for s in self.slots:
                row = (
                    [s.slot, s.admitted, s.rejected, s.queue_depth, s.issued,
                     s.answered, f"{s.slot_seconds:.9f}",
                     f"{s.p50_seconds:.9f}", f"{s.p99_seconds:.9f}"]
                    + [f"{s.timings.get(p, 0.0):.9f}" for p in PHASES]
                )
                if metered:
                    for p in PHASES:
                        count, nbytes = s.allocs.get(p, (0, 0))
                        row += [int(count), int(nbytes)]
                writer.writerow(row)


# ----------------------------------------------------------------------
# the shared run serializer (batch CLI + service exporter)
# ----------------------------------------------------------------------
def phase_totals(summary: SimulationSummary) -> dict[str, float]:
    """Total seconds per engine phase from profiled slot extras.

    Empty when the run was not profiled (``engine.profile`` off) — the
    ``t_<phase>`` extras simply are not there.
    """
    totals: dict[str, float] = {}
    for phase in PHASES:
        key = f"t_{phase}"
        seconds = [r.extras[key] for r in summary.slots if key in r.extras]
        if seconds:
            totals[phase] = float(sum(seconds))
    return totals


def phase_allocs(summary: SimulationSummary) -> dict[str, dict[str, int]]:
    """Total allocations/bytes per engine phase from profiled slot extras.

    Empty unless the run was profiled on an allocation-metering backend
    (the ``alloc_<phase>_count`` / ``alloc_<phase>_bytes`` extras only
    appear then).
    """
    totals: dict[str, dict[str, int]] = {}
    for phase in PHASES:
        count_key, bytes_key = f"alloc_{phase}_count", f"alloc_{phase}_bytes"
        counts = [r.extras[count_key] for r in summary.slots if count_key in r.extras]
        if counts:
            totals[phase] = {
                "count": int(sum(counts)),
                "bytes": int(
                    sum(r.extras.get(bytes_key, 0.0) for r in summary.slots)
                ),
            }
    return totals


def summary_payload(
    spec_dict: dict[str, Any] | None,
    n_slots: int,
    summary: SimulationSummary,
    *,
    name: str | None = None,
) -> dict[str, Any]:
    """The canonical machine-readable form of one run's summary.

    Shared by ``repro scenario --json`` / ``--out`` and the service
    metrics exporter, so batch and service runs serialize identically:
    headline metrics, per-label quality means, per-phase timing totals
    (when profiled), and the per-slot records.
    """
    payload: dict[str, Any] = {
        "name": name if name is not None else (spec_dict or {}).get("name"),
        "spec": spec_dict,
        "n_slots": n_slots,
        "average_utility": summary.average_utility,
        "satisfaction_ratio": summary.satisfaction_ratio,
        "egalitarian_ratio": summary.egalitarian_ratio,
        "quality": {
            label: summary.average_quality(label)
            for label in summary.quality_stats
        },
        "phase_timings": phase_totals(summary),
        "phase_allocs": phase_allocs(summary),
        "slots": [
            {
                "slot": r.slot,
                "value": r.value,
                "cost": r.cost,
                "issued": r.issued,
                "answered": r.answered,
                "extras": r.extras,
            }
            for r in summary.slots
        ],
    }
    return payload
