"""Benchmark configuration.

Figure benches run at the scale selected by ``REPRO_SCALE`` (default
``ci``); set ``REPRO_SCALE=paper`` to regenerate the published-size series
(minutes instead of seconds).  Every bench prints the reproduced series so
``pytest benchmarks/ --benchmark-only -s`` doubles as the results report.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    Figure reproductions are long deterministic sweeps — repeating them for
    statistics would multiply minutes for no insight.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
