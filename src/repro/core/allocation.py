"""Allocation results and the allocator interface.

Every scheduling algorithm in this package — optimal BILP, local search,
greedy, and the baselines — consumes a set of queries plus the slot's sensor
announcements and produces an :class:`AllocationResult`: which sensors were
selected, which queries they answer, the value each query obtained and the
payment each query owes each sensor (eq. 2's allocation ``M`` together with
the cost shares ``pi_{q,s}`` of Section 2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from ..queries import Query
from ..sensors import SensorSnapshot
from .errors import AllocationError, PaymentInvariantError

__all__ = ["AllocationResult", "Allocator", "check_distinct"]


def check_distinct(queries: Sequence[Query], sensors: Sequence[SensorSnapshot]) -> None:
    """Reject duplicate query ids / sensor ids early with a clear error.

    Announcement producers that guarantee unique sensor ids by construction
    (an :class:`~repro.sensors.AnnouncementBatch`, whose ids are fleet row
    indices) declare it via a truthy ``distinct_sensor_ids`` attribute and
    skip the O(n) duplicate scan — the slot path never walks the batch.
    """
    qids = [q.query_id for q in queries]
    if len(set(qids)) != len(qids):
        raise AllocationError("duplicate query ids in allocation input")
    if getattr(sensors, "distinct_sensor_ids", False):
        return
    sids = [s.sensor_id for s in sensors]
    if len(set(sids)) != len(sids):
        raise AllocationError("duplicate sensor ids in allocation input")


@dataclass
class AllocationResult:
    """Outcome of one slot's sensor selection.

    Attributes:
        selected: the chosen sensors (``Y(M)`` of eq. 2), by sensor id.
        assignments: per query, the ids of the sensors answering it
            (``M(q)``); queries absent from the mapping were not answered.
        values: per answered query, the achieved valuation ``v_q(M(q))``.
        payments: the cost shares ``pi_{q,s}``.
    """

    selected: dict[int, SensorSnapshot] = field(default_factory=dict)
    assignments: dict[str, tuple[int, ...]] = field(default_factory=dict)
    values: dict[str, float] = field(default_factory=dict)
    payments: dict[tuple[str, int], float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # aggregate accounting
    # ------------------------------------------------------------------
    @property
    def total_value(self) -> float:
        """``sum_q v_q(M(q))``."""
        return float(sum(self.values.values()))

    @property
    def total_cost(self) -> float:
        """``sum_{s in Y(M)} c_s``."""
        return float(sum(s.cost for s in self.selected.values()))

    @property
    def total_utility(self) -> float:
        """The slot's social welfare (the objective of eq. 2)."""
        return self.total_value - self.total_cost

    # ------------------------------------------------------------------
    # per-party accounting
    # ------------------------------------------------------------------
    def query_payment(self, query_id: str) -> float:
        return float(
            sum(p for (qid, _), p in self.payments.items() if qid == query_id)
        )

    def query_utility(self, query_id: str) -> float:
        """The answered query's net benefit ``v_q - sum_s pi_{q,s}``."""
        return self.values.get(query_id, 0.0) - self.query_payment(query_id)

    def sensor_income(self, sensor_id: int) -> float:
        return float(
            sum(p for (_, sid), p in self.payments.items() if sid == sensor_id)
        )

    def is_answered(self, query_id: str) -> bool:
        return query_id in self.assignments and bool(self.assignments[query_id])

    def answered_count(self) -> int:
        return sum(1 for sensors in self.assignments.values() if sensors)

    # ------------------------------------------------------------------
    # mutation helpers used by the algorithms
    # ------------------------------------------------------------------
    def record(
        self,
        query: Query | str,
        snapshot: SensorSnapshot,
        value_gain: float,
        payment: float,
    ) -> None:
        """Append one (query, sensor) grant to the result."""
        query_id = query if isinstance(query, str) else query.query_id
        self.selected.setdefault(snapshot.sensor_id, snapshot)
        current = self.assignments.get(query_id, ())
        if snapshot.sensor_id not in current:
            self.assignments[query_id] = current + (snapshot.sensor_id,)
        self.values[query_id] = self.values.get(query_id, 0.0) + value_gain
        key = (query_id, snapshot.sensor_id)
        self.payments[key] = self.payments.get(key, 0.0) + payment

    def merge(self, other: "AllocationResult") -> None:
        """Fold another result in (used by the query-mix pipeline)."""
        for sid, snap in other.selected.items():
            existing = self.selected.setdefault(sid, snap)
            if existing.cost != snap.cost:
                raise AllocationError(
                    f"sensor {sid} announced two different costs in one slot"
                )
        for qid, sensors in other.assignments.items():
            current = self.assignments.get(qid, ())
            merged = current + tuple(s for s in sensors if s not in current)
            self.assignments[qid] = merged
        for qid, value in other.values.items():
            self.values[qid] = self.values.get(qid, 0.0) + value
        for key, payment in other.payments.items():
            self.payments[key] = self.payments.get(key, 0.0) + payment

    # ------------------------------------------------------------------
    # invariants (Theorem 1 / Section 2.1)
    # ------------------------------------------------------------------
    def verify(self, tolerance: float = 1e-6) -> None:
        """Assert the settlement invariants; raise on violation.

        1. every payment is non-negative;
        2. every selected sensor recovers exactly its announced cost
           ("the total payment from the queries using that sensor is equal
           to c_s", Section 2.1);
        3. every query's utility is non-negative (Theorem 1, property 3);
        4. assignments only reference selected sensors.
        """
        # One grouping pass over the ledger instead of a full payments scan
        # per query/sensor (the helpers stay O(n) for ad-hoc callers, but
        # verify runs on every slot of every engine).  Per-key accumulation
        # follows the ledger's insertion order, so the sums are bit-equal
        # to what query_payment / sensor_income return.
        query_paid: dict[str, float] = {}
        sensor_paid: dict[int, float] = {}
        for (qid, sid), payment in self.payments.items():
            if payment < -tolerance:
                raise PaymentInvariantError(
                    f"negative payment {payment} from {qid} to sensor {sid}"
                )
            query_paid[qid] = query_paid.get(qid, 0.0) + payment
            sensor_paid[sid] = sensor_paid.get(sid, 0.0) + payment
        for sid, snapshot in self.selected.items():
            income = sensor_paid.get(sid, 0.0)
            if abs(income - snapshot.cost) > max(tolerance, tolerance * snapshot.cost):
                raise PaymentInvariantError(
                    f"sensor {sid} income {income:.6f} != cost {snapshot.cost:.6f}"
                )
        for qid, value in self.values.items():
            utility = value - query_paid.get(qid, 0.0)
            if utility < -max(tolerance, tolerance * abs(value)):
                raise PaymentInvariantError(
                    f"query {qid} has negative utility {utility:.6f}"
                )
        for qid, assigned in self.assignments.items():
            for sid in assigned:
                if sid not in self.selected:
                    raise PaymentInvariantError(
                        f"query {qid} assigned unselected sensor {sid}"
                    )


class Allocator(Protocol):
    """The common interface of all per-slot scheduling algorithms.

    Allocators may additionally accept a ``kernel`` keyword (a
    :class:`~repro.core.valuation.ValuationKernel` built once per slot from
    the same announcements) to skip restacking the slot's sensor arrays;
    the engine only passes it to allocators that declare support via a
    truthy ``supports_kernel`` attribute.
    """

    def allocate(
        self, queries: Sequence[Query], sensors: Sequence[SensorSnapshot]
    ) -> AllocationResult: ...
