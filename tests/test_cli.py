"""Tests for the command-line interface."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import CI
from repro.experiments.reporting import ascii_chart
from repro.experiments.runner import FigureResult


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.command == "figures"
        assert args.figure is None
        assert not args.all

    def test_figures_repeatable(self):
        args = build_parser().parse_args(
            ["figures", "--figure", "fig2", "--figure", "fig3"]
        )
        assert args.figure == ["fig2", "fig3"]

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figures", "--scale", "giant"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "repro" in out

    def test_unknown_figure_exits_2(self, capsys):
        assert main(["figures", "--figure", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_figures_runs_and_dumps_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        # Shrink further via a micro scale injected through the registry.
        import repro.cli as cli_module
        from repro.experiments import fig2

        micro = dataclasses.replace(
            CI, n_slots=2, point_queries_per_slot=20, rwm_sensors=30, budgets=(7, 35)
        )
        monkeypatch.setattr(
            cli_module, "ALL_FIGURES", {"fig2": lambda scale, seed: fig2(micro, seed)}
        )
        code = main(["figures", "--figure", "fig2", "--out", str(tmp_path), "--chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "avg_utility" in out
        payload = json.loads((tmp_path / "fig2_ci.json").read_text())
        assert payload["figure_id"] == "fig2"
        assert "Optimal" in payload["series"]


class TestAsciiChart:
    def _result(self):
        result = FigureResult("figX", "demo", "budget", x_values=[1, 2, 3])
        for v in (1.0, 2.0, 3.0):
            result.add("A", "m", v)
        for v in (3.0, 2.0, 1.0):
            result.add("B", "m", v)
        return result

    def test_chart_contains_symbols_and_ranges(self):
        chart = ascii_chart(self._result(), "m", width=20, height=6)
        assert "o=A" in chart and "x=B" in chart
        assert "y: 1 .. 3" in chart
        assert "x: 1 .. 3" in chart

    def test_chart_missing_metric(self):
        assert "no series" in ascii_chart(self._result(), "missing")

    def test_chart_flat_series(self):
        result = FigureResult("f", "t", "x", x_values=[1])
        result.add("A", "m", 5.0)
        chart = ascii_chart(result, "m")
        assert "o=A" in chart
