"""Unit coverage for the marketplace service layer: admission control
and backpressure, config validation, SLO metrics, the loadgen's seeded
determinism, and the asyncio ticker."""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.datasets import ScenarioSpec, StreamSpec
from repro.service import (
    REJECT_NOT_ACCEPTING,
    REJECT_QUEUE_FULL,
    BurstyProfile,
    LatencyHistogram,
    LoadGenerator,
    MarketplaceService,
    PoissonProfile,
    ServiceConfig,
    WorkloadArrivals,
    profile_from_payload,
    service_engine,
    summary_payload,
)


def make_spec(**knobs):
    defaults = dict(
        name="svc-unit",
        dataset="rwm",
        seed=21,
        n_sensors=300,
        n_slots=6,
        allocator="greedy",
        streams=[StreamSpec("point", {"n_queries": 4, "budget": 12.0})],
    )
    defaults.update(knobs)
    return ScenarioSpec(**defaults)


# ----------------------------------------------------------------------
# config
# ----------------------------------------------------------------------
def test_service_config_defaults_and_payload():
    config = ServiceConfig.from_payload(None)
    assert config.max_queue_depth == 1024
    assert config.max_admitted_per_tick == 256
    config = ServiceConfig.from_payload(
        {"tick_interval": 0.5, "max_queue_depth": 32,
         "arrivals": {"profile": "bursty", "rate": 4, "burst_rate": 40}}
    )
    assert config.tick_interval == 0.5
    assert config.max_queue_depth == 32
    profile, seed = profile_from_payload(config.arrivals)
    assert isinstance(profile, BurstyProfile) and seed == 0


@pytest.mark.parametrize(
    "payload",
    [
        {"max_queue_depth": 0},
        {"max_admitted_per_tick": -1},
        {"tick_interval": -0.1},
        {"unknown_knob": 3},
        {"arrivals": {"profile": "square_wave"}},
        {"arrivals": {"profile": "poisson", "bogus": 1}},
    ],
    ids=lambda p: next(iter(p)),
)
def test_service_config_rejects_bad_payloads(payload):
    with pytest.raises(ValueError):
        ServiceConfig.from_payload(payload)


def test_spec_service_block_is_validated_and_round_trips():
    spec = make_spec(service={"max_queue_depth": 16})
    assert ScenarioSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
    with pytest.raises(ValueError):
        make_spec(service={"max_queue_depth": "many"})


def test_service_engine_rejects_continuous_streams():
    spec = make_spec(
        streams=[
            StreamSpec("point", {"n_queries": 2}),
            StreamSpec("event", {}),
        ]
    )
    with pytest.raises(ValueError, match="one-shot"):
        service_engine(spec)


# ----------------------------------------------------------------------
# admission control + backpressure
# ----------------------------------------------------------------------
def test_tickets_number_every_arrival_and_reject_when_full():
    service = MarketplaceService.from_spec(
        make_spec(), max_queue_depth=3, max_admitted_per_tick=2
    )
    queries = service.workloads[0][1].generate(0, np.random.default_rng(0))
    assert len(queries) == 4
    tickets = [service.submit(q) for q in queries]
    assert [t.accepted for t in tickets] == [True, True, True, False]
    # Rejected arrivals still consume a sequence number (arrival order).
    assert [t.seq for t in tickets] == [0, 1, 2, 3]
    assert tickets[3].reason == REJECT_QUEUE_FULL
    assert service.metrics.rejected == {REJECT_QUEUE_FULL: 1}

    record = service.tick_once()
    assert record.issued == 2  # admission cap
    assert service.metrics.slots[0].admitted == 2
    assert service.metrics.slots[0].queue_depth == 1  # still queued

    service.stop()
    ticket = service.submit(queries[0])
    assert not ticket.accepted and ticket.reason == REJECT_NOT_ACCEPTING


def test_queued_arrivals_carry_over_and_wait_is_observed():
    service = MarketplaceService.from_spec(make_spec(), max_admitted_per_tick=1)
    queries = service.workloads[0][1].generate(0, np.random.default_rng(0))
    for q in queries[:2]:
        service.submit(q)
    service.tick_once()
    service.tick_once()
    assert [s.admitted for s in service.metrics.slots] == [1, 1]
    # The second query waited one tick in the queue.
    assert service.metrics.max_admission_wait == 1
    assert service.metrics.settled == 2


def test_tick_property_tracks_fleet_clock():
    service = MarketplaceService.from_spec(make_spec())
    assert service.tick == 0
    service.tick_once()
    assert service.tick == 1 and service.ticks == 1


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_latency_histogram_quantiles_bracket_observations():
    hist = LatencyHistogram()
    for v in [0.001, 0.002, 0.004, 0.008, 0.1]:
        hist.observe(v)
    assert hist.count == 5
    assert 0.001 <= hist.p50 <= 0.008
    assert hist.p99 <= 0.1 * 1.2 + 1e-9
    snap = hist.snapshot()
    assert snap["count"] == 5 and snap["max_seconds"] == pytest.approx(0.1)
    assert LatencyHistogram().p50 == 0.0  # empty histogram is defined


def test_metrics_export_json_and_csv(tmp_path):
    spec = make_spec()
    service = MarketplaceService.from_spec(spec)
    generator = LoadGenerator(PoissonProfile(6.0), service.workloads, seed=1)
    generator.drive(service, 3)

    payload = service.metrics.payload()
    assert payload["counters"]["admitted"] == service.metrics.admitted
    assert set(payload["latency"]["phases"]) == {
        "announce", "kernel", "allocate", "settle"
    }

    out = tmp_path / "m.json"
    extra = summary_payload(spec.to_dict(), 3, service.summary)
    service.metrics.write_json(out, extra=extra)
    data = json.loads(out.read_text())
    assert data["service"]["counters"]["settled"] == service.metrics.settled
    assert data["n_slots"] == 3 and "phase_timings" in data

    csv_path = tmp_path / "m.csv"
    service.metrics.write_csv(csv_path)
    lines = csv_path.read_text().strip().splitlines()
    assert len(lines) == 4  # header + one row per slot
    assert lines[0].startswith("slot,admitted,rejected,queue_depth")


# ----------------------------------------------------------------------
# loadgen
# ----------------------------------------------------------------------
def test_profiles_are_deterministic_and_bursty_peaks():
    rng = np.random.default_rng(3)
    bursty = BurstyProfile(rate=1.0, burst_rate=50.0, period=4, burst_length=1)
    counts = [bursty.count(t, rng) for t in range(8)]
    assert counts[0] > counts[1] and counts[4] > counts[5]
    with pytest.raises(ValueError):
        BurstyProfile(rate=1.0, burst_rate=2.0, period=0)
    with pytest.raises(ValueError):
        PoissonProfile(-1.0)


def test_schedule_is_reproducible_and_matches_drive():
    spec = make_spec()
    service = MarketplaceService.from_spec(spec)
    generator = LoadGenerator(PoissonProfile(5.0), service.workloads, seed=4)
    a = generator.schedule(4)
    b = generator.schedule(4)
    assert [len(batch) for batch in a] == [len(batch) for batch in b]
    for qa, qb in zip(
        (q for batch in a for q in batch), (q for batch in b for q in batch)
    ):
        # Fresh objects/ids, identical parameters.
        assert qa is not qb and qa.query_id != qb.query_id
        assert qa.budget == qb.budget
        assert (qa.location.x, qa.location.y) == (qb.location.x, qb.location.y)

    generator.drive(service, 4)
    assert service.metrics.submitted == sum(len(batch) for batch in a)


def test_workload_arrivals_deals_round_robin_and_survives_dry_streams():
    class Dry:
        def generate(self, t, rng):
            return []

    spec = make_spec(
        streams=[
            StreamSpec("point", {"n_queries": 2, "budget": 12.0}),
            StreamSpec("aggregate", {"mean_queries": 2, "count_spread": 0,
                                     "min_side": 5.0, "max_side": 10.0}),
        ]
    )
    _, _, workloads = service_engine(spec)
    dealer = WorkloadArrivals(workloads)
    rng = np.random.default_rng(0)
    out = dealer.take(6, 0, rng)
    assert len(out) == 6
    assert len({type(q).__name__ for q in out}) == 2  # both streams dealt

    dry_dealer = WorkloadArrivals([("a", Dry()), ("b", Dry())])
    assert dry_dealer.take(5, 0, rng) == []
    with pytest.raises(ValueError):
        WorkloadArrivals([])


# ----------------------------------------------------------------------
# asyncio ticker
# ----------------------------------------------------------------------
def test_async_serve_ticks_and_interleaves_submissions():
    spec = make_spec()
    service = MarketplaceService.from_spec(spec)
    generator = LoadGenerator(PoissonProfile(5.0), service.workloads, seed=2)

    async def run():
        await asyncio.gather(
            service.serve(3), generator.drive_async(service, 3)
        )

    asyncio.run(run())
    assert service.ticks == 3
    assert len(service.metrics.slots) == 3
    assert service.metrics.submitted > 0


def test_serve_stop_ends_open_ended_loop():
    service = MarketplaceService.from_spec(make_spec())

    async def run():
        async def stopper():
            await asyncio.sleep(0)
            service.stop()

        await asyncio.gather(service.serve(), stopper())

    asyncio.run(run())
    assert service.ticks >= 1
    assert not service._accepting
