"""Mobility model interface.

A mobility model owns the positions of a population of sensors and advances
them one time slot at a time.  The aggregator never controls movement
(uncontrolled mobility is the defining obstacle the paper tackles): it only
*observes* positions at the start of each slot, when the sensors announce
location and price.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..spatial import Location, Region

__all__ = ["MobilityModel"]


class MobilityModel(abc.ABC):
    """Positions of ``n_sensors`` sensors, advanced slot by slot."""

    @property
    @abc.abstractmethod
    def n_sensors(self) -> int:
        """Number of sensors driven by this model."""

    @property
    @abc.abstractmethod
    def region(self) -> Region:
        """The full movement region (sensors may roam outside the hotspot)."""

    @abc.abstractmethod
    def locations(self) -> Sequence[Location]:
        """Current location of every sensor, indexed by sensor index."""

    @abc.abstractmethod
    def advance(self) -> None:
        """Move every sensor one time slot forward."""

    def locations_xy(self) -> np.ndarray:
        """Current positions as an ``(n, 2)`` float array.

        The array-backed fleet consumes positions through this method so
        the slot path never builds per-sensor :class:`Location` objects.
        The base implementation converts :meth:`locations`; array-native
        models override it with a zero-copy view.  Callers must treat the
        result as **read-only** (and copy before storing — a model may
        reuse or mutate its buffer on :meth:`advance`).
        """
        return np.asarray([(loc.x, loc.y) for loc in self.locations()], dtype=float)

    # ------------------------------------------------------------------
    # conveniences shared by all models
    # ------------------------------------------------------------------
    def location_of(self, index: int) -> Location:
        """Current location of sensor ``index``."""
        return self.locations()[index]

    def present_in(self, region: Region) -> list[int]:
        """Indices of sensors currently inside ``region``.

        The aggregator restricts itself to the working subregion
        ("hotspot"): sensors outside it are invisible for the slot but may
        re-enter later (Section 4.2).
        """
        return [i for i, loc in enumerate(self.locations()) if region.contains(loc)]

    def run(self, n_slots: int) -> list[list[Location]]:
        """Record positions over ``n_slots`` slots (including the current one).

        Returns a list of per-slot position lists; useful for converting a
        generative model into a replayable trace.
        """
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        frames = [list(self.locations())]
        for _ in range(n_slots - 1):
            self.advance()
            frames.append(list(self.locations()))
        return frames

    def run_xy(self, n_slots: int) -> list[np.ndarray]:
        """Array-native :meth:`run`: per-slot ``(n, 2)`` position copies.

        The world-setup hot path: recording a metro-scale trace this way
        never builds a :class:`Location` (pair with
        :meth:`MobilityTrace.from_xy
        <repro.mobility.trace.MobilityTrace.from_xy>`, whose frames stay
        lazy).  Positions are copied per slot because models may mutate
        their buffer on :meth:`advance`.
        """
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        frames = [np.array(self.locations_xy(), dtype=float, copy=True)]
        for _ in range(n_slots - 1):
            self.advance()
            frames.append(np.array(self.locations_xy(), dtype=float, copy=True))
        return frames
