"""Spatial sharding of one slot's announcements — the 10^5-sensor path.

After the batch-gain rollout the dominant slot cost is the dense
``ValuationKernel.single_values`` build: every announced sensor is scored
against every query even though a point query with reach ``dmax`` can only
ever be served by the sensors within ``dmax`` of its location.
Participatory-sensing platforms are urban-scale with *localized* queries,
so that dense pass wastes almost all of its work on pairs whose value is
exactly zero.

:class:`ShardedKernel` keeps the dense kernel's contract — same stacked
arrays, same ``matches``/``ensure`` reuse protocol, same
``single_values``/``value_rows``/``roster`` signatures with bit-identical
outputs — but partitions the announcement columns into uniform grid cells
(:class:`~repro.spatial.index.UniformGridIndex`) and resolves each query
against only its *candidate shards*:

* point-flavoured queries (``PointQuery``, ``MultiSensorPointQuery``,
  ``EventSlotQuery``) touch the shards their ``dmax`` disk can reach;
* region-flavoured queries (``SpatialAggregateQuery``,
  ``TrajectoryQuery``) touch the shards intersecting the queried region
  padded by ``sensing_range``;
* anything else falls back to the full roster (always correct).

Candidate sets are cell supersets of the truly relevant sensors, and every
omitted (query, sensor) pair has value exactly ``0.0`` under the dense
formulas (beyond ``dmax`` / outside the padded region), so sharded value
matrices — and therefore allocations — are bit-identical to dense ones.
The parity suite (``tests/test_sharding_parity.py``) pins this.

Allocators consume the kernel through two capability hooks discovered by
``getattr`` (so the dense kernel and user-supplied kernels keep working
unchanged):

``sparse_single_values(queries)``
    per-query ``(candidate columns, values)`` pairs from one fused
    vectorized pass over the concatenated (query, candidate) pairs —
    the sharded replacement for the dense ``(q, n)`` block;
``candidate_indices(query)``
    the candidate column superset for one query (or ``None`` for unknown
    query types), used to restrict scalar ``Query.relevant`` scans;

``candidate_view(query)``
    :meth:`candidate_indices` plus the gathered ``(xy, gamma, trust)``
    array blocks of those columns, memoized per distinct cell range — the
    sharded entry point of the batch-relevance protocol
    (:meth:`~repro.queries.Query.relevant_mask`).  Region-heavy slots
    evaluate per-query relevance masks and coverage-mask matrices on these
    per-shard blocks, so many large region queries sharing a neighbourhood
    stop rasterizing against the whole fleet and reuse one gather.

The slot's shared :class:`~repro.spatial.WorldRaster` is inherited from
the dense kernel unchanged: a sharded kernel built zero-copy from an
announcement batch resolves ``kernel.raster`` to the *same* instance as
every other consumer of that batch (the raster attaches to the batch and
is keyed by the full-fleet coordinate block), so fused aggregate gain
blocks index one set of world CSR coverage rows whether the slot ran dense
or sharded — rosters carry ``kernel_columns`` to map their candidate
columns back to world columns.  Candidate-view relevance masks stay
per-view on purpose: they evaluate on the gathered candidate blocks, and
routing them through a full-fleet raster pass would undo the sharding win.

Per-cell state lives in :class:`FleetShard`: the sorted member columns,
plus a lazily built shard-local :class:`ValuationKernel` over just those
sensors for direct per-shard consumers (the allocator paths themselves
always gather candidate columns and compute against the parent's stacked
arrays — one fused pass beats per-shard kernel dispatch).  Queries whose
reach stays inside a single shard resolve against that shard's member
array directly; only boundary-straddling queries merge members across
shards (one sorted concatenation, memoized per cell range).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..backend import xp
from ..queries import (
    EventSlotQuery,
    MultiSensorPointQuery,
    PointQuery,
    Query,
    SpatialAggregateQuery,
    TrajectoryQuery,
)
from ..sensors import SensorSnapshot
from ..sensors.state import as_announcement_sequence
from ..spatial.index import UniformGridIndex
from .valuation import ValuationKernel, delta_old_to_new

__all__ = [
    "FleetShard",
    "ShardedKernel",
    "normalize_sharding",
    "resolve_cell_size",
]

_EMPTY = np.zeros(0, dtype=xp.index_dtype)

#: Query types whose relevant sensors all lie within ``dmax`` of
#: ``location`` (their reading quality is zero beyond that disk).
_DISK_TYPES = (PointQuery, MultiSensorPointQuery, EventSlotQuery)
#: Query types whose relevant sensors all lie within ``sensing_range`` of
#: ``region`` (aggregate eq.-5 eligibility; the trajectory corridor's 2r
#: reach is covered because its ``region`` is already the r-padded bbox).
_RECT_TYPES = (SpatialAggregateQuery, TrajectoryQuery)


def normalize_sharding(setting) -> "float | str | None":
    """Canonicalize a sharding knob value, shared by every declaring layer.

    ``None``/``False`` → ``None`` (dense kernel); ``True``/``"auto"`` →
    ``"auto"`` (density-heuristic cell size); a positive number → the shard
    cell side as ``float``.  Anything else raises ``ValueError`` — the
    engine, :class:`~repro.datasets.ScenarioSpec` and the CLI all validate
    through here so their accepted vocabularies cannot drift apart.
    """
    if setting is None or setting is False:
        return None
    if setting is True or setting == "auto":
        return "auto"
    if isinstance(setting, (int, float)) and not isinstance(setting, bool):
        if setting <= 0:
            raise ValueError("sharding cell size must be positive")
        return float(setting)
    raise ValueError(f"unknown sharding setting {setting!r}")


def resolve_cell_size(xy: np.ndarray, target_occupancy: float = 4.0) -> float:
    """Heuristic shard cell size: ~``target_occupancy`` sensors per cell.

    Derived from the announcement bounding box, so shard granularity tracks
    fleet density rather than a fixed world size; degenerate extents
    (single sensor, colinear fleet) fall back to a unit cell along the
    collapsed axis.
    """
    n = len(xy)
    if n == 0:
        return 1.0
    width = float(np.ptp(xy[:, 0]))
    height = float(np.ptp(xy[:, 1]))
    if width <= 0.0 and height <= 0.0:
        return 1.0
    area = (width if width > 0.0 else 1.0) * (height if height > 0.0 else 1.0)
    return float(np.sqrt(target_occupancy * area / n))


@dataclass
class FleetShard:
    """One grid cell's slice of the fleet.

    Attributes:
        cell: the ``(col, row)`` grid cell.
        indices: sorted parent-kernel columns bucketed in this cell.
    """

    cell: tuple[int, int]
    indices: np.ndarray
    _parent: "ShardedKernel" = field(repr=False)
    _kernel: ValuationKernel | None = field(default=None, repr=False)

    @property
    def n_sensors(self) -> int:
        return len(self.indices)

    @property
    def kernel(self) -> ValuationKernel:
        """Shard-local dense kernel over this cell's sensors (lazy).

        A convenience for direct per-shard consumers (stats, per-cell
        experiments) — the sharded allocator paths compute against the
        parent's stacked arrays instead.  Column ``j`` of the shard kernel
        is parent column ``indices[j]``.  Snapshots (and their costs) are
        the parent's build-time batch — the same staleness caveat as the
        parent kernel's ``costs``.
        """
        if self._kernel is None:
            p = self._parent
            idx = self.indices
            self._kernel = ValuationKernel(
                [p.sensors[j] for j in idx],
                p.sensor_xy[idx],
                p.gamma[idx],
                p.trust[idx],
                p.costs[idx],
            )
        return self._kernel


@dataclass
class ShardedKernel(ValuationKernel):
    """Grid-sharded drop-in for :class:`ValuationKernel`.

    Args:
        cell_size: shard cell side; ``None`` defers to
            :func:`resolve_cell_size` at first use.

    The grid index, the per-cell :class:`FleetShard` objects and the merged
    boundary-straddling candidate sets are all built lazily and memoized —
    a slot that never queries a neighbourhood never pays for it.  All
    caches key on geometry only, which the ``matches``/``ensure`` reuse
    protocol guarantees stable (re-announcements may change costs, never
    positions), so a reused kernel keeps its warm shards.
    """

    cell_size: float | None = None
    _index: UniformGridIndex | None = field(
        default=None, repr=False, compare=False
    )
    _shards: dict = field(default_factory=dict, repr=False, compare=False)
    _range_cache: dict = field(default_factory=dict, repr=False, compare=False)
    #: per cell-range gathered (xy, gamma, trust) blocks — the batch-
    #: relevance/coverage-mask working set, reused across queries whose
    #: reach resolves to the same cell range (see :meth:`candidate_view`).
    _gather_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------
    # construction / reuse
    # ------------------------------------------------------------------
    @classmethod
    def from_sensors(
        cls, sensors: Sequence[SensorSnapshot], cell_size: float | None = None
    ) -> "ShardedKernel":
        base = ValuationKernel.from_sensors(sensors)
        kernel = cls(
            base.sensors,
            base.sensor_xy,
            base.gamma,
            base.trust,
            base.costs,
            cell_size=cell_size,
        )
        kernel._stamp = base._stamp  # batch producers keep O(1) reuse checks
        return kernel

    @classmethod
    def from_batch(cls, batch, cell_size: float | None = None) -> "ShardedKernel":
        """Zero-copy sharded kernel over an
        :class:`~repro.sensors.AnnouncementBatch` (see
        :meth:`ValuationKernel.from_batch`)."""
        if getattr(batch, "kernel_arrays", None) is None:
            raise TypeError(
                "from_batch needs an AnnouncementBatch-like producer "
                "(kernel_arrays/token); use from_sensors for snapshot lists"
            )
        return cls.from_sensors(batch, cell_size=cell_size)

    @classmethod
    def ensure(
        cls,
        kernel: "ValuationKernel | None",
        sensors: Sequence[SensorSnapshot],
        cell_size: float | None = None,
    ) -> "ShardedKernel":
        """Reuse a matching *sharded* kernel (warm shards included), else
        build a fresh one; a matching dense kernel is still rebuilt sharded
        — this is the engine's entry point when the sharding knob is on."""
        if isinstance(kernel, ShardedKernel) and kernel.matches(sensors):
            if sensors is not kernel.sensors:
                kernel.sensors = as_announcement_sequence(sensors)
                # Same stamp-preservation rule as ValuationKernel.ensure:
                # a token-less list proved identity-equal, so the existing
                # stamp stays valid for future O(1) batch comparisons.
                stamp = getattr(sensors, "token", None)
                if stamp is not None:
                    kernel._stamp = stamp
            return kernel
        return cls.from_sensors(sensors, cell_size=cell_size)

    @classmethod
    def ensure_delta(
        cls,
        kernel: "ValuationKernel | None",
        batch,
        delta,
        cell_size: float | None = None,
    ) -> "ShardedKernel":
        """Differential :meth:`ensure` (see
        :meth:`ValuationKernel.ensure_delta`): on a chained delta the new
        kernel additionally inherits the old grid index via an incremental
        bucket splice (:meth:`~repro.spatial.index.UniformGridIndex.updated`)
        — shard membership is re-bucketed only for dirty sensors, under the
        old index's frozen geometry (candidate supersets, hence
        allocations, stay bit-identical).  The per-range shard/gather
        caches are dropped and refill lazily against the patched index.
        The delta's ``crossed`` rows are filled as a side effect: the
        moved survivors whose grid bucket actually changed.
        """
        if isinstance(kernel, ShardedKernel) and kernel.matches(batch):
            if batch is not kernel.sensors:
                kernel.sensors = as_announcement_sequence(batch)
                stamp = getattr(batch, "token", None)
                if stamp is not None:
                    kernel._stamp = stamp
            return kernel
        new = cls.from_batch(batch, cell_size=cell_size)
        if (
            isinstance(kernel, ShardedKernel)
            and delta is not None
            and delta.prev_token == kernel._stamp
        ):
            raster = kernel._carry_raster(batch, delta)
            if raster is not None:
                new._raster = raster
            old_index = kernel._index
            if old_index is not None:
                old_to_new = delta_old_to_new(delta, len(kernel.sensor_xy))
                inserted = np.asarray(delta.fresh_cols, dtype=xp.index_dtype)
                patched = old_index.updated(batch.xy, old_to_new, inserted)
                if patched is not None:
                    new._index = patched
                    moved_cols = inserted[delta.kept_src[inserted] >= 0]
                    if moved_cols.size:
                        old_keys = old_index.cell_keys_of(
                            kernel.sensor_xy[delta.kept_src[moved_cols]]
                        )
                        new_keys = old_index.cell_keys_of(batch.xy[moved_cols])
                        delta.crossed = np.asarray(batch.ids)[
                            moved_cols[old_keys != new_keys]
                        ]
                    else:
                        delta.crossed = np.zeros(0, dtype=xp.int64_dtype)
        return new

    # ------------------------------------------------------------------
    # the shard structure
    # ------------------------------------------------------------------
    @property
    def resolved_cell_size(self) -> float:
        """The shard cell side actually in use (heuristic if not given)."""
        return self.index.cell_size

    @property
    def index(self) -> UniformGridIndex:
        if self._index is None:
            cell = (
                self.cell_size
                if self.cell_size is not None
                else resolve_cell_size(self.sensor_xy)
            )
            self._index = UniformGridIndex(self.sensor_xy, cell)
        return self._index

    @property
    def n_shards(self) -> int:
        return self.index.n_shards

    def shard(self, cell: tuple[int, int]) -> FleetShard:
        """The (memoized) shard of one grid cell; empty cells give an
        empty shard."""
        shard = self._shards.get(cell)
        if shard is None:
            shard = FleetShard(cell, self.index.members(cell), self)
            self._shards[cell] = shard
        return shard

    def shards(self) -> Iterator[FleetShard]:
        """Iterate the non-empty shards."""
        for cell, members in self.index.shards():
            shard = self._shards.get(cell)
            if shard is None:
                shard = FleetShard(cell, members, self)
                self._shards[cell] = shard
            yield shard

    def _query_box(
        self, query: Query
    ) -> tuple[float, float, float, float] | None:
        """The axis-aligned reach box of a known query type, else ``None``.

        The geometric contracts behind the known types are exact-type
        checks on purpose, since a subclass may override ``relevant``
        arbitrarily.
        """
        t = type(query)
        if t in _DISK_TYPES:
            location, reach = query.location, query.dmax
            return (
                location.x - reach,
                location.x + reach,
                location.y - reach,
                location.y + reach,
            )
        if t in _RECT_TYPES:
            region, pad = query.region, query.sensing_range
            return (
                region.x_min - pad,
                region.x_max + pad,
                region.y_min - pad,
                region.y_max + pad,
            )
        return None

    def _range_candidates(self, rng) -> np.ndarray:
        """Sorted candidate columns for one cell range (memoized).

        A reach inside one cell is that shard's member array as-is; only
        boundary-straddling reaches pay the sorted merge, once per distinct
        cell range (localized workloads re-hit the same neighbourhoods).
        """
        if rng is None:
            return _EMPTY
        c0, c1, r0, r1 = rng
        if c0 == c1 and r0 == r1:
            return self.shard((c0, r0)).indices
        cached = self._range_cache.get(rng)
        if cached is None:
            cached = self.index.indices_in_cell_range(c0, c1, r0, r1)
            self._range_cache[rng] = cached
        return cached

    def _box_candidates(
        self, x_min: float, x_max: float, y_min: float, y_max: float
    ) -> np.ndarray:
        """Sorted candidate columns for a box reach, memoized per cell range."""
        return self._range_candidates(
            self.index.cell_range(x_min, x_max, y_min, y_max)
        )

    def candidate_indices(self, query: Query) -> np.ndarray | None:
        """Superset of the kernel columns ``query`` could find relevant.

        ``None`` means "unknown query type — scan the full roster" (see
        :meth:`_query_box` for the exact-type contract).
        """
        box = self._query_box(query)
        return None if box is None else self._box_candidates(*box)

    def candidate_view(
        self, query: Query
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """``(columns, xy, gamma, trust)`` of the query's candidate shards.

        The gathered array blocks are memoized per distinct cell range
        (the same key space as the candidate-column cache), so a slot with
        many region queries over the same neighbourhood pays each gather
        once: every query sharing the range evaluates its relevance mask —
        and, downstream, its coverage-mask matrix — on the same arrays
        instead of re-rasterizing against the whole fleet.  ``None``
        follows :meth:`candidate_indices`' unknown-type contract.  The
        blocks are per-kernel caches: callers must treat them as
        read-only.
        """
        box = self._query_box(query)
        if box is None:
            return None
        rng = self.index.cell_range(*box)
        idx = self._range_candidates(rng)
        cached = self._gather_cache.get(rng)
        if cached is None:
            cached = (self.sensor_xy[idx], self.gamma[idx], self.trust[idx])
            self._gather_cache[rng] = cached
        return (idx, *cached)

    # ------------------------------------------------------------------
    # sharded valuation
    # ------------------------------------------------------------------
    def sparse_single_values(
        self, queries: Sequence[PointQuery]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-query ``(candidate columns, eq.-(3) values)``, one fused pass.

        The returned values are bit-identical to the same positions of the
        dense :meth:`single_values` matrix, and every omitted column is
        exactly ``0.0`` there (outside ``dmax`` by construction).  All
        queries' candidate pairs are concatenated and evaluated in a single
        vectorized pass, so the cost is proportional to sensors-near-
        queries, not fleet size.
        """
        q = len(queries)
        if q == 0:
            return []
        cands: list[np.ndarray] = []
        all_cols: np.ndarray | None = None
        for query in queries:
            idx = self.candidate_indices(query)
            if idx is None:
                if all_cols is None:
                    all_cols = np.arange(self.n_sensors, dtype=xp.index_dtype)
                idx = all_cols
            cands.append(idx)
        counts = np.fromiter((len(c) for c in cands), xp.index_dtype, q)
        total = int(counts.sum())
        if total == 0:
            return [(c, np.zeros(0)) for c in cands]
        idx_cat = np.concatenate(cands)
        rep = np.repeat(np.arange(q), counts)
        qx = np.fromiter((query.location.x for query in queries), float, q)
        qy = np.fromiter((query.location.y for query in queries), float, q)
        budgets = np.fromiter((query.budget for query in queries), float, q)
        theta_mins = np.fromiter((query.theta_min for query in queries), float, q)
        dmaxes = np.fromiter((query.dmax for query in queries), float, q)
        # Exactly the dense single_values operation sequence, per pair.
        dist = np.hypot(
            self.sensor_xy[idx_cat, 0] - qx[rep],
            self.sensor_xy[idx_cat, 1] - qy[rep],
        )
        dmax_rep = dmaxes[rep]
        theta = (1.0 - self.gamma)[idx_cat] * (1.0 - dist / dmax_rep)
        theta *= self.trust[idx_cat]
        theta[dist > dmax_rep] = 0.0
        values = budgets[rep] * theta
        values[theta < theta_mins[rep]] = 0.0
        splits = np.split(values, np.cumsum(counts)[:-1])
        return list(zip(cands, splits))

    def single_values(self, queries: Sequence[PointQuery]) -> np.ndarray:
        """Dense-shaped ``(q, n)`` matrix, computed shard-sparsely.

        Kept for protocol compatibility (parity checks, ad-hoc consumers);
        sharding-aware allocators use :meth:`sparse_single_values` and never
        materialize this.
        """
        out = np.zeros((len(queries), self.n_sensors), dtype=xp.float_dtype)
        for i, (idx, vals) in enumerate(self.sparse_single_values(queries)):
            out[i, idx] = vals
        return out

    def value_matrix(
        self,
        query_xy: np.ndarray,
        budgets: np.ndarray,
        theta_mins: np.ndarray,
        dmaxes: np.ndarray,
    ) -> np.ndarray:
        """The matrix path (eq. 9/12 formula), restricted to candidate shards.

        Row arithmetic replicates the dense :meth:`ValuationKernel.value_matrix`
        operation sequence exactly on the candidate columns; all other
        columns are beyond ``dmax`` and therefore exactly ``0.0`` in the
        dense matrix too.
        """
        q = len(query_xy)
        n = self.n_sensors
        out = np.zeros((q, n), dtype=xp.float_dtype)
        if q == 0 or n == 0:
            return out
        quality_scale = (1.0 - self.gamma) * self.trust
        for i in range(q):
            x, y, reach = float(query_xy[i, 0]), float(query_xy[i, 1]), float(dmaxes[i])
            idx = self._box_candidates(x - reach, x + reach, y - reach, y + reach)
            if len(idx) == 0:
                continue
            dx = self.sensor_xy[idx, 0] - x
            np.multiply(dx, dx, out=dx)
            dy = self.sensor_xy[idx, 1] - y
            np.multiply(dy, dy, out=dy)
            dist = dx
            dist += dy
            np.sqrt(dist, out=dist)
            quality = dist / dmaxes[i]
            np.subtract(1.0, quality, out=quality)
            np.multiply(quality_scale[idx], quality, out=quality)
            quality[dist > dmaxes[i]] = 0.0
            quality[quality < theta_mins[i]] = 0.0
            np.multiply(budgets[i], quality, out=quality)
            out[i, idx] = quality
        return out
