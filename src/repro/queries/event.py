"""Event-detection queries — the extension the paper sketches but defers.

Section 2.3: "we don't specifically deal with event detection queries.
However, ... data acquisition for this type of continuous queries is very
similar to data acquisition for monitoring queries.  The main difference is
that redundant sampling might be needed to ensure the confidence requested
by the queries."

This module implements exactly that difference: an
:class:`EventDetectionQuery` (query Q3 of the paper: *notify me when
phenomenon > x with confidence > alpha at location l during [t1, t2]*)
derives, each slot, a redundant-sampling point query whose valuation pays
for additional readings only until the requested confidence is reached.

Confidence model: each reading is an independent witness whose reliability
is its eq.-(4) quality ``theta_i``; the probability that at least one
witness is faithful is ``conf(S) = 1 - prod_i (1 - theta_i)``.  The slot
valuation is ``B_slot * min(1, conf(S) / alpha)`` — monotone and submodular
in the witness set (verified by property tests), so the greedy machinery of
Algorithm 1 applies unchanged.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sensors import SensorSnapshot
from ..spatial import Location
from .base import (
    BatchGainState,
    GainBlock,
    Query,
    QueryType,
    SensorRoster,
    ValuationState,
    new_query_id,
)
from .monitoring import ContinuousQuery
from .point import _quality_gated_mask, _quality_row, reading_quality

__all__ = ["EventDetectionQuery", "EventSlotQuery", "detection_confidence"]


def detection_confidence(qualities: Sequence[float]) -> float:
    """``1 - prod(1 - theta_i)``: confidence from redundant readings."""
    confidence = 1.0
    for theta in qualities:
        if not (0.0 <= theta <= 1.0):
            raise ValueError("reading qualities must lie in [0, 1]")
        confidence *= 1.0 - theta
    return 1.0 - confidence


class _EventBatch(BatchGainState):
    """Event-slot batch gains via the running ``prod(1 - theta)`` update.

    The scalar valuation rebuilds the witness-failure product from scratch
    per candidate; the live state already carries that product over the
    committed witnesses, so a candidate's new confidence is one multiply:
    ``1 - prod * (1 - theta_cand)``.  The product accumulates in exactly
    the scalar :func:`detection_confidence` multiplication order, so only
    the candidate quality itself can differ from the scalar path in the
    final ulp (``np.hypot`` vs ``math.hypot``, as for all point-flavoured
    batch states).
    """

    def __init__(self, state: "_EventState", roster: SensorRoster) -> None:
        super().__init__(state, roster)
        query = state.query
        theta = _quality_row(query.location, query.dmax, roster)
        theta[theta < query.theta_min] = 0.0
        self._qualities = theta

    def gain_many(self, indices: np.ndarray) -> np.ndarray:
        state = self.state
        query = state.query
        theta = self._qualities[indices]
        confidence = 1.0 - state._failure_prod * (1.0 - theta)
        value_new = query.budget * np.minimum(
            1.0, confidence / query.required_confidence
        )
        return value_new - state.value

    @classmethod
    def block(cls, members) -> GainBlock:
        return _EventBlock(members)


class _EventBlock(GainBlock):
    """Fused event-slot gains: stacked quality rows, live failure products.

    Per pair this performs :meth:`_EventBatch.gain_many`'s exact scalar
    chain — ``1 - prod * (1 - theta)``, then the clipped confidence ratio
    scaled by the budget — with the per-member failure products and values
    gathered live each call, so fused and per-row gains are bit-identical.
    """

    def __init__(self, members) -> None:
        super().__init__(members)
        n = members[0].roster.n_sensors if members else 0
        self._qualities = np.empty((len(self.members), n), dtype=float)
        self._budgets = np.empty(len(self.members), dtype=float)
        self._required = np.empty(len(self.members), dtype=float)
        for p, member in enumerate(self.members):
            self._qualities[p] = member._qualities
            self._budgets[p] = member.state.query.budget
            self._required[p] = member.state.query.required_confidence

    def gain_many_block(
        self, member_idx: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        failure = np.fromiter(
            (m.state._failure_prod for m in self.members), float, len(self.members)
        )
        values = np.fromiter(
            (m.state.value for m in self.members), float, len(self.members)
        )
        theta = self._qualities[member_idx, indices]
        confidence = 1.0 - failure[member_idx] * (1.0 - theta)
        value_new = self._budgets[member_idx] * np.minimum(
            1.0, confidence / self._required[member_idx]
        )
        return value_new - values[member_idx]


class _EventState(ValuationState):
    """Incremental event-slot valuation: one running failure product.

    Tracks ``prod(1 - theta_i)`` over the committed witnesses with
    positive quality — the same multiplication sequence the scalar
    :meth:`EventSlotQuery.value` performs from scratch, so gains stay
    bit-identical to the generic recomputing state.
    """

    def __init__(self, query: "EventSlotQuery") -> None:
        super().__init__(query)
        self._failure_prod = 1.0

    def _value_at(self, failure_prod: float) -> float:
        confidence = 1.0 - failure_prod
        return self.query.budget * min(
            1.0, confidence / self.query.required_confidence
        )

    def _prod_with(self, snapshot: SensorSnapshot) -> float:
        theta = self.query.quality(snapshot)
        if theta > 0:
            return self._failure_prod * (1.0 - theta)
        return self._failure_prod

    def gain(self, snapshot: SensorSnapshot) -> float:
        return self._value_at(self._prod_with(snapshot)) - self.value

    def add(self, snapshot: SensorSnapshot) -> float:
        prod = self._prod_with(snapshot)
        gain = self._value_at(prod) - self.value
        self._failure_prod = prod
        self.selected.append(snapshot)
        self.value += gain
        return gain

    def batch(self, roster: SensorRoster) -> BatchGainState:
        return _EventBatch(self, roster)


class EventSlotQuery(Query):
    """The per-slot redundant-sampling query derived from an event query."""

    def __init__(
        self,
        location: Location,
        budget: float,
        required_confidence: float,
        theta_min: float,
        dmax: float,
        parent_id: str,
        issued_at: int = 0,
    ) -> None:
        super().__init__(budget, new_query_id("ev"), issued_at)
        if not (0.0 < required_confidence <= 1.0):
            raise ValueError("required confidence must be in (0, 1]")
        self.location = location
        self.required_confidence = required_confidence
        self.theta_min = theta_min
        self.dmax = dmax
        self.parent_id = parent_id

    @property
    def query_type(self) -> QueryType:
        return QueryType.EVENT

    def quality(self, snapshot: SensorSnapshot) -> float:
        theta = reading_quality(snapshot, self.location, self.dmax)
        return theta if theta >= self.theta_min else 0.0

    def value(self, snapshots: Sequence[SensorSnapshot]) -> float:
        qualities = [self.quality(s) for s in snapshots if self.quality(s) > 0]
        confidence = detection_confidence(qualities)
        return self.budget * min(1.0, confidence / self.required_confidence)

    def relevant(self, snapshot: SensorSnapshot) -> bool:
        return self.quality(snapshot) > 0.0

    def relevant_mask(
        self,
        xy: np.ndarray,
        gamma: np.ndarray | None = None,
        trust: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`relevant`: thresholded quality row ``> 0``."""
        return _quality_gated_mask(self, xy, gamma, trust)

    def new_state(self) -> ValuationState:
        return _EventState(self)


class EventDetectionQuery(ContinuousQuery):
    """Q3: notify when the phenomenon exceeds ``threshold`` at ``location``.

    Args:
        location: the watched location.
        threshold: the trigger level ``x``.
        confidence: the requested detection confidence ``alpha``.
        budget: total budget over the query lifetime; each slot spends at
            most ``budget / duration`` on redundant readings.
    """

    def __init__(
        self,
        location: Location,
        t1: int,
        t2: int,
        threshold: float,
        confidence: float,
        budget: float,
        theta_min: float = 0.2,
        dmax: float = 5.0,
        query_id: str | None = None,
    ) -> None:
        super().__init__(budget, t1, t2, query_id)
        if not (0.0 < confidence <= 1.0):
            raise ValueError("confidence must be in (0, 1]")
        self.location = location
        self.threshold = threshold
        self.confidence = confidence
        self.theta_min = theta_min
        self.dmax = dmax
        self.detections: list[tuple[int, float, float]] = []  # (slot, estimate, confidence)
        self.confidence_history: list[float] = []  # achieved confidence per sampled slot
        self.value_accrued = 0.0  # realized eq.-style slot values over the lifetime

    def slot_budget(self) -> float:
        """Per-slot spending cap: the remaining budget spread over the
        remaining lifetime (so early overspending cannot starve the tail)."""
        return self.budget / self.duration

    def create_slot_query(self, t: int) -> EventSlotQuery:
        """The redundant-sampling point query for slot ``t``."""
        if not self.active(t):
            raise ValueError(f"query {self.query_id} is not active at slot {t}")
        return EventSlotQuery(
            location=self.location,
            budget=min(self.slot_budget(), self.remaining_budget),
            required_confidence=self.confidence,
            theta_min=self.theta_min,
            dmax=self.dmax,
            parent_id=self.query_id,
            issued_at=t,
        )

    def apply_readings(
        self,
        t: int,
        readings: Sequence[tuple[float, float]],
        payment: float,
    ) -> bool:
        """Evaluate the slot's readings; returns True when the event fires.

        Args:
            t: the slot.
            readings: (value, quality) pairs from the allocated sensors.
            payment: what the slot's sampling cost the query.

        The estimate is the quality-weighted mean reading; the event fires
        when the estimate exceeds the threshold *and* the achieved
        confidence meets the request.
        """
        self.spent += payment
        if not readings:
            self.confidence_history.append(0.0)
            return False
        qualities = [q for _, q in readings]
        weight_sum = sum(qualities)
        achieved = detection_confidence(qualities)
        self.confidence_history.append(achieved)
        if weight_sum <= 0:
            return False
        estimate = sum(v * q for v, q in readings) / weight_sum
        if estimate > self.threshold and achieved >= self.confidence:
            self.detections.append((t, estimate, achieved))
            return True
        return False

    def record_slot(
        self,
        t: int,
        readings: Sequence[tuple[float, float]],
        achieved_value: float,
        payment: float,
    ) -> bool:
        """One slot's full settlement: readings plus the realized value the
        allocation attributed to the derived slot query.  Returns whether
        the event fired this slot."""
        self.value_accrued += achieved_value
        return self.apply_readings(t, readings, payment)

    def achieved_value(self) -> float:
        """Total realized slot value over the lifetime so far."""
        return self.value_accrued

    def quality_of_results(self) -> float:
        """Mean per-slot confidence attainment ``min(1, achieved / alpha)``
        over the slots that were sampled (0.0 when never sampled)."""
        if not self.confidence_history:
            return 0.0
        total = sum(
            min(1.0, achieved / self.confidence)
            for achieved in self.confidence_history
        )
        return total / len(self.confidence_history)
