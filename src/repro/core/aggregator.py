"""The aggregator service: the paper's central entity as a library API.

"The sensing devices communicate with a server, which is called the
*aggregator* ... End users (or applications) submit queries to the
aggregator.  The aggregator periodically collects the queries and tries to
optimally answer them" (Section 2).

:class:`Aggregator` is that server: applications :meth:`submit` queries of
any supported type at any time; each :meth:`run_slot` call collects the
current announcements, executes Algorithm 5 over everything live, settles
payments into per-user and per-sensor accounts, and advances the world.
The simulation engines of :mod:`repro.core.simulation` remain the slim
harness used by the benchmark reproductions; the aggregator is the API a
downstream application would actually embed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..queries import (
    EventDetectionQuery,
    LocationMonitoringQuery,
    PointQuery,
    Query,
    RegionMonitoringQuery,
)
from ..sensors import SensorFleet
from .errors import AllocationError
from .mix import BaselineMixAllocator, MixAllocator, MixOutcome

__all__ = ["Aggregator", "QueryReceipt", "SlotDigest", "UserAccount"]


@dataclass
class QueryReceipt:
    """What a submitting application can poll about its query."""

    query_id: str
    user_id: str
    query_type: str
    submitted_at: int
    answered: bool = False
    value: float = 0.0
    paid: float = 0.0
    completed_at: int | None = None

    @property
    def utility(self) -> float:
        return self.value - self.paid


@dataclass
class UserAccount:
    """Running account of one application/user at the aggregator."""

    user_id: str
    budget: float = math.inf
    spent: float = 0.0
    value_received: float = 0.0
    queries: list[str] = field(default_factory=list)

    @property
    def remaining_budget(self) -> float:
        return self.budget - self.spent

    @property
    def utility(self) -> float:
        return self.value_received - self.spent


@dataclass
class SlotDigest:
    """Per-slot outcome summary returned by :meth:`Aggregator.run_slot`."""

    slot: int
    utility: float
    total_value: float
    total_cost: float
    answered: int
    sensors_used: int
    events_fired: int = 0


class Aggregator:
    """Long-running data-acquisition service over a sensor fleet.

    Args:
        fleet: the sensor population (announcements + settlement side).
        mix: the per-slot scheduling policy; Algorithm 5 by default, the
            sequential baseline if you want to feel the difference.

    Lifecycle: ``submit()`` any number of queries (at any slot), then call
    ``run_slot()`` once per time slot.  One-shot queries live for exactly
    the next slot; continuous queries stay until they expire.
    """

    def __init__(
        self,
        fleet: SensorFleet,
        mix: MixAllocator | BaselineMixAllocator | None = None,
        ground_truth=None,
    ) -> None:
        self.fleet = fleet
        self.mix = mix if mix is not None else MixAllocator()
        #: optional callable Location -> float giving the phenomenon value;
        #: event-detection queries can only *fire* when it is provided.
        self.ground_truth = ground_truth
        self._owner: dict[str, str] = {}
        self._pending_points: list[PointQuery] = []
        self._pending_one_shot: list[Query] = []
        self._live_lm: list[LocationMonitoringQuery] = []
        self._live_rm: list[RegionMonitoringQuery] = []
        self._live_events: list[EventDetectionQuery] = []
        self.receipts: dict[str, QueryReceipt] = {}
        self.accounts: dict[str, UserAccount] = {}
        self.digests: list[SlotDigest] = []

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        return self.fleet.clock

    def open_account(self, user_id: str, budget: float = math.inf) -> UserAccount:
        """Register a user with an optional hard spending budget."""
        if user_id in self.accounts:
            raise AllocationError(f"user {user_id!r} already has an account")
        account = UserAccount(user_id=user_id, budget=budget)
        self.accounts[user_id] = account
        return account

    def submit(self, query, user_id: str = "anonymous") -> QueryReceipt:
        """Register a query for execution starting next ``run_slot``.

        Accepts every query type of Figure 1: point / multi-sensor point /
        aggregate / trajectory (one-shot), and location monitoring, region
        monitoring, event detection (continuous).
        """
        if isinstance(query, LocationMonitoringQuery):
            bucket, kind = self._live_lm, "location_monitoring"
        elif isinstance(query, RegionMonitoringQuery):
            bucket, kind = self._live_rm, "region_monitoring"
        elif isinstance(query, EventDetectionQuery):
            bucket, kind = self._live_events, "event"
        elif isinstance(query, PointQuery):
            bucket, kind = self._pending_points, "point"
        elif isinstance(query, Query):
            bucket, kind = self._pending_one_shot, query.query_type.value
        else:
            raise AllocationError(f"unsupported query object: {type(query).__name__}")

        account = self.accounts.get(user_id)
        if account is None:
            account = self.open_account(user_id)
        if query.query_id in self.receipts:
            raise AllocationError(f"query {query.query_id} was already submitted")
        bucket.append(query)

        receipt = QueryReceipt(
            query_id=query.query_id,
            user_id=user_id,
            query_type=kind,
            submitted_at=self.clock,
        )
        self.receipts[query.query_id] = receipt
        account.queries.append(query.query_id)
        self._owner[query.query_id] = user_id
        return receipt

    # ------------------------------------------------------------------
    # the slot protocol
    # ------------------------------------------------------------------
    def run_slot(self) -> SlotDigest:
        """Execute one time slot end to end and settle all payments."""
        t = self.clock
        self._expire_continuous(t)
        sensors = self.fleet.announcements()

        points = self._drain_affordable(self._pending_points)
        one_shot = self._drain_affordable(self._pending_one_shot)
        event_children = [
            q.create_slot_query(t) for q in self._live_events if q.active(t)
        ]
        event_parents = {c.query_id: p for c, p in zip(
            event_children, [q for q in self._live_events if q.active(t)]
        )}

        outcome: MixOutcome = self.mix.allocate_slot(
            t,
            points,
            list(one_shot) + list(event_children),
            self._live_lm,
            self._live_rm,
            sensors,
        )
        result = outcome.result

        events_fired = self._settle_events(t, outcome, event_parents)
        self._settle_one_shot(t, points + one_shot, outcome)
        self._settle_continuous(outcome)

        self.fleet.record_measurements(list(result.selected))
        self.fleet.advance()

        digest = SlotDigest(
            slot=t,
            utility=outcome.total_utility,
            total_value=outcome.total_utility + result.total_cost,
            total_cost=result.total_cost,
            answered=result.answered_count(),
            sensors_used=len(result.selected),
            events_fired=events_fired,
        )
        self.digests.append(digest)
        return digest

    def run(self, n_slots: int) -> list[SlotDigest]:
        """Run several slots; returns their digests."""
        return [self.run_slot() for _ in range(n_slots)]

    # ------------------------------------------------------------------
    # settlement internals
    # ------------------------------------------------------------------
    def _drain_affordable(self, pending: list) -> list:
        """Pop pending one-shot queries whose owner still has budget."""
        admitted, skipped = [], []
        for query in pending:
            account = self.accounts[self._owner[query.query_id]]
            if account.remaining_budget > 0:
                admitted.append(query)
            else:
                skipped.append(query)
        pending.clear()
        pending.extend(skipped)  # re-queue until budget frees up
        return admitted

    def _charge(self, query_id: str, value: float, paid: float, t: int) -> None:
        receipt = self.receipts[query_id]
        receipt.answered = receipt.answered or value > 0
        receipt.value += value
        receipt.paid += paid
        account = self.accounts[receipt.user_id]
        account.spent += paid
        account.value_received += value

    def _settle_one_shot(self, t: int, queries: Sequence[Query], outcome: MixOutcome) -> None:
        result = outcome.result
        for query in queries:
            value = result.values.get(query.query_id, 0.0)
            paid = result.query_payment(query.query_id)
            self._charge(query.query_id, value, paid, t)
            self.receipts[query.query_id].completed_at = t

    def _settle_continuous(self, outcome: MixOutcome) -> None:
        result = outcome.result
        # Location monitoring: charge the realized deltas through children.
        for child in outcome.lm_children:
            paid = result.query_payment(child.query_id)
            value = result.values.get(child.query_id, 0.0)
            self._charge(child.parent_id, value, paid, self.clock)
        for rm_outcome in outcome.rm_outcomes:
            self._charge(
                rm_outcome.query_id,
                rm_outcome.achieved_value,
                rm_outcome.paid,
                self.clock,
            )

    def _settle_events(self, t: int, outcome: MixOutcome, parents: dict) -> int:
        result = outcome.result
        fired = 0
        for child_id, parent in parents.items():
            paid = result.query_payment(child_id)
            value = result.values.get(child_id, 0.0)
            sensor_ids = result.assignments.get(child_id, ())
            readings = []
            if self.ground_truth is not None:
                for sid in sensor_ids:
                    snapshot = result.selected[sid]
                    truth = self.ground_truth(snapshot.location)
                    # Witness reliability = the derived query's eq.-4 quality.
                    quality = max(
                        0.0, min(1.0, (1.0 - snapshot.inaccuracy) * snapshot.trust)
                    )
                    readings.append((truth, quality))
            if parent.apply_readings(t, readings, paid):
                fired += 1
            self._charge(parent.query_id, value, paid, t)
        return fired

    def _expire_continuous(self, t: int) -> None:
        for bucket in (self._live_lm, self._live_rm, self._live_events):
            expired = [q for q in bucket if q.expired(t)]
            for query in expired:
                receipt = self.receipts[query.query_id]
                receipt.completed_at = t - 1
            bucket[:] = [q for q in bucket if not q.expired(t)]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def total_utility(self) -> float:
        return float(sum(d.utility for d in self.digests))

    def live_query_count(self) -> int:
        return len(self._live_lm) + len(self._live_rm) + len(self._live_events)
