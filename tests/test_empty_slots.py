"""Zero-query and all-rejected slots settle cleanly.

A streaming service regularly ticks slots that admit nothing (quiet
arrivals) or whose every query the allocator turns away (unaffordable
budgets).  :meth:`SlotEngine.step` and every :class:`QueryStream` must
treat those as ordinary slots — empty allocation, zeroed record, no
crash, summary still coherent — because the service ticker cannot skip
them without drifting off the fleet clock.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GreedyAllocator, SimulationSummary, SlotEngine
from repro.core.engine import (
    EventDetectionStream,
    LocationMonitoringStream,
    OneShotStream,
    RegionMonitoringStream,
)
from repro.datasets import build_rwm_scenario
from repro.queries import PointQuery
from repro.spatial import Location


class NothingWorkload:
    """A workload whose every slot is empty."""

    def generate(self, t, rng, **_):
        return []


class UnaffordableWorkload:
    """Point queries priced below any sensor's cost: emitted, never won."""

    def __init__(self, region, n=3):
        self.region = region
        self.n = n

    def generate(self, t, rng, **_):
        return [
            PointQuery(
                Location(
                    rng.uniform(self.region.x_min, self.region.x_max),
                    rng.uniform(self.region.y_min, self.region.y_max),
                ),
                budget=1e-9,
                dmax=5.0,
            )
            for _ in range(self.n)
        ]


def make_engine(streams, **kwargs):
    scenario = build_rwm_scenario(seed=11, n_sensors=60, n_slots=4)
    return SlotEngine(
        scenario.make_fleet(),
        streams,
        GreedyAllocator(),
        np.random.default_rng(5),
        **kwargs,
    )


STREAM_FACTORIES = {
    "one_shot": lambda: OneShotStream(NothingWorkload(), kind="point"),
    "location_monitoring": lambda: LocationMonitoringStream(NothingWorkload()),
    "region_monitoring": lambda: RegionMonitoringStream(NothingWorkload()),
    "event": lambda: EventDetectionStream(NothingWorkload()),
}


@pytest.mark.parametrize("kind", sorted(STREAM_FACTORIES), ids=str)
def test_zero_query_slots_settle_cleanly(kind):
    engine = make_engine([STREAM_FACTORIES[kind]()])
    summary = SimulationSummary()
    for t in range(3):
        record = engine.step(summary)
        assert record.slot == t
        assert record.issued == 0 and record.answered == 0
        assert record.value == 0.0
        assert engine.last_result is not None
        assert not engine.last_result.selected
        assert set(engine.last_timings) == {
            "announce", "kernel", "allocate", "settle"
        }
    for stream in engine.streams:
        stream.flush(summary)
    assert summary.n_slots == 3
    assert summary.total_queries == 0


def test_zero_query_slots_settle_cleanly_with_sharding_and_incremental():
    engine = make_engine(
        [OneShotStream(NothingWorkload(), kind="point")],
        sharding="auto",
        incremental="auto",
    )
    summary = SimulationSummary()
    for _ in range(3):
        record = engine.step(summary)
        assert record.issued == 0
    assert summary.n_slots == 3


def test_all_rejected_slots_settle_cleanly():
    """Queries emitted but none answered: issued counts, answered stays
    zero, utilities are recorded as plain losses (here 0 — nothing
    spent), and the next slot proceeds."""
    scenario = build_rwm_scenario(seed=11, n_sensors=60, n_slots=4)
    stream = OneShotStream(
        UnaffordableWorkload(scenario.working_region), kind="point"
    )
    engine = SlotEngine(
        scenario.make_fleet(), [stream], GreedyAllocator(),
        np.random.default_rng(5),
    )
    summary = SimulationSummary()
    for _ in range(3):
        record = engine.step(summary)
        assert record.issued == 3
        assert record.answered == 0
        assert record.value == 0.0
        assert not engine.last_result.selected
        assert not engine.last_result.payments
    assert summary.total_queries == 9
    assert summary.satisfaction_ratio == 0.0


def test_service_ticks_through_empty_and_all_rejected_slots():
    """The marketplace service settles slots that admit nothing and
    slots whose admitted queries are all turned away, and its admission
    trace still replays to identical signatures."""
    from repro.datasets import ScenarioSpec, StreamSpec
    from repro.service import MarketplaceService, replay_admission_trace

    spec = ScenarioSpec(
        name="svc-empty",
        dataset="rwm",
        seed=11,
        n_sensors=60,
        n_slots=4,
        allocator="greedy",
        streams=[StreamSpec("point", {"n_queries": 2, "budget": 10.0})],
    )
    service = MarketplaceService.from_spec(spec)
    template = service.workloads[0][1]
    rng = np.random.default_rng(9)

    # Slot 0: nothing submitted.  Slot 1: unaffordable queries.  Slot 2:
    # a normal batch.
    service.tick_once()
    rejected_batch = template.generate(1, rng)
    for query in rejected_batch:
        query.budget = 1e-9
        service.submit(query)
    service.tick_once()
    normal_batch = template.generate(2, rng)
    for query in normal_batch:
        service.submit(query)
    service.tick_once()

    slots = service.metrics.slots
    assert [s.admitted for s in slots] == [0, len(rejected_batch), len(normal_batch)]
    assert slots[0].issued == 0
    assert slots[1].answered == 0
    assert service.metrics.settled == len(rejected_batch) + len(normal_batch)

    replayed = replay_admission_trace(spec, service.trace)
    assert replayed == service.slot_signatures
