"""The curated ``examples/specs/`` scenario files: loadable, round-trippable,
runnable, and sweepable via ``compare_scenarios``."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.datasets import ScenarioSpec
from repro.experiments import compare_scenarios

SPEC_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"
SPEC_FILES = sorted(SPEC_DIR.glob("*.json"))
EXPECTED = {
    "adversarial_pricing.json",
    "dense_urban.json",
    "metro_burst.json",
    "metro_scale.json",
    "region_heavy.json",
    "region_storm.json",
    "rush_hour_burst.json",
    "sparse_rural.json",
    "stationary_churn.json",
    "trust_churn.json",
}


def test_curated_set_is_complete():
    assert {p.name for p in SPEC_FILES} >= EXPECTED


@pytest.mark.parametrize("path", SPEC_FILES, ids=lambda p: p.stem)
def test_spec_loads_and_round_trips(path):
    spec = ScenarioSpec.from_json(path)
    assert spec.name
    # to_dict -> from_dict is the CLI/worker wire format.
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    # The file itself stays minimal JSON (no trailing spec fields we drop).
    payload = json.loads(path.read_text())
    assert ScenarioSpec.from_dict(payload) == spec


@pytest.mark.parametrize(
    "name", ["trust_churn.json", "adversarial_pricing.json", "sparse_rural.json"]
)
def test_cheap_specs_run(name):
    spec = ScenarioSpec.from_json(SPEC_DIR / name)
    summary = spec.run(2)
    assert summary.n_slots == 2


def test_metro_scale_spec_declares_the_batch_sharded_path():
    """The metro spec wires 10^5 sensors through auto-sharding; a scaled-
    down build of the same spec must drive the sharded kernel from the
    fleet's AnnouncementBatch (the loop-free slot path it showcases)."""
    import dataclasses

    from repro.core import ShardedKernel
    from repro.sensors import AnnouncementBatch

    spec = ScenarioSpec.from_json(SPEC_DIR / "metro_scale.json")
    assert spec.n_sensors >= 100_000
    assert spec.sharding == "auto"
    small = dataclasses.replace(spec, n_sensors=1500, n_slots=2)
    engine = small.build()
    assert isinstance(engine.fleet.announcements(), AnnouncementBatch)
    summary = engine.run(2)
    assert summary.n_slots == 2
    kernel = engine._kernel
    assert isinstance(kernel, ShardedKernel)
    assert isinstance(kernel.sensors, AnnouncementBatch)


def test_region_heavy_spec_exercises_the_mask_path():
    """The region-heavy spec declares 20k sensors under many large
    aggregate queries with auto-sharding; a scaled-down build must route
    those queries through the sharded kernel's candidate views and the
    batch-relevance masks (no per-sensor scans), and run."""
    import dataclasses

    from repro.core import ShardedKernel
    from repro.queries import SpatialAggregateQuery
    from repro.sensors import AnnouncementBatch

    spec = ScenarioSpec.from_json(SPEC_DIR / "region_heavy.json")
    assert spec.n_sensors >= 20_000
    assert spec.sharding == "auto"
    assert any(s.kind == "aggregate" for s in spec.streams)
    small = dataclasses.replace(spec, n_sensors=1500, n_slots=2)
    engine = small.build()
    summary = engine.run(2)
    assert summary.n_slots == 2
    assert summary.total_queries > 0
    kernel = engine._kernel
    assert isinstance(kernel, ShardedKernel)
    assert isinstance(kernel.sensors, AnnouncementBatch)
    # The kernel resolved aggregate candidate views (the memoized
    # per-cell-range gathers behind the sharded mask path).
    probe = SpatialAggregateQuery(
        spec_region(small), budget=10.0, sensing_range=5.0, coverage_radius=2.5
    )
    view = kernel.candidate_view(probe)
    assert view is not None and len(view) == 4


def test_region_storm_spec_exercises_the_fused_pipeline():
    """The region-storm spec piles 128 overlapping aggregate queries on
    20k sensors with both sharding and the fused block pipeline on auto;
    a scaled-down build must propagate ``fused`` to the allocator, share
    one world raster across the slot, and run."""
    import dataclasses

    from repro.core import ShardedKernel
    from repro.sensors import AnnouncementBatch
    from repro.spatial import get_raster

    spec = ScenarioSpec.from_json(SPEC_DIR / "region_storm.json")
    assert spec.n_sensors >= 20_000
    assert spec.sharding == "auto"
    assert spec.fused == "auto"
    assert any(s.kind == "aggregate" for s in spec.streams)
    small = dataclasses.replace(spec, n_sensors=1500, n_slots=2)
    engine = small.build()
    assert engine.fused == "auto"
    assert engine.allocation.allocator.fused == "auto"
    summary = engine.run(2)
    assert summary.n_slots == 2
    assert summary.total_queries > 0
    kernel = engine._kernel
    assert isinstance(kernel, ShardedKernel)
    batch = kernel.sensors
    assert isinstance(batch, AnnouncementBatch)
    # The slot's kernel raster is the per-batch cached one: every
    # aggregate query indexed the same covered-cell CSR rows.
    assert kernel.raster is get_raster(batch, batch.xy)


def test_metro_burst_spec_drives_the_marketplace_service():
    """The metro-burst spec declares 10^5 sensors plus a ``service``
    block (bounded queue, per-tick admission cap, bursty arrivals); a
    scaled-down build must honour the admission config under the
    declared burst profile and keep per-slot allocations bit-identical
    to an offline SlotEngine replay of the recorded admission trace."""
    import dataclasses

    from repro.service import (
        BurstyProfile,
        LoadGenerator,
        MarketplaceService,
        replay_admission_trace,
    )

    spec = ScenarioSpec.from_json(SPEC_DIR / "metro_burst.json")
    assert spec.n_sensors >= 100_000
    assert spec.sharding == "auto" and spec.fused == "auto"
    assert spec.service is not None
    assert spec.service["arrivals"]["profile"] == "bursty"

    small = dataclasses.replace(spec, n_sensors=1200, n_slots=4)
    service = MarketplaceService.from_spec(small)
    assert service.config.max_queue_depth == 256
    assert service.config.max_admitted_per_tick == 96
    generator = LoadGenerator.for_service(service)
    assert isinstance(generator.profile, BurstyProfile)

    n_ticks = 4
    generator.drive(service, n_ticks)
    assert service.metrics.submitted > 0
    # Admission control: never more than the cap per tick, queue bounded.
    assert all(s.admitted <= 96 for s in service.metrics.slots)
    assert service.metrics.max_queue_depth <= 256

    flat = [q for batch in generator.schedule(n_ticks) for q in batch]
    replayed = replay_admission_trace(small, service.trace, flat)
    assert replayed == service.slot_signatures


def spec_region(spec):
    """A sub-rectangle of the built world's working region for probing."""
    from repro.datasets import build_rwm_scenario
    from repro.spatial import Region

    region = build_rwm_scenario(spec.seed, spec.n_sensors, spec.n_slots).working_region
    return Region.centered_in(region, region.width / 2, region.height / 2)


def test_compare_scenarios_sweeps_spec_files():
    import dataclasses

    storm = ScenarioSpec.from_json(SPEC_DIR / "region_storm.json")
    specs = [
        ScenarioSpec.from_json(SPEC_DIR / "trust_churn.json"),
        ScenarioSpec.from_json(SPEC_DIR / "sparse_rural.json"),
        # The fused-pipeline storm spec, shrunk to sweep size.
        dataclasses.replace(storm, n_sensors=800, n_slots=2),
    ]
    figure = compare_scenarios(specs, n_slots=2)
    assert set(figure.series) == {"trust-churn", "sparse-rural", "region-storm"}
    for series in figure.series.values():
        assert "avg_utility" in series and "satisfaction_ratio" in series


def test_stationary_churn_spec_exercises_the_incremental_path():
    """The stationary-churn spec declares 20k near-stationary sensors
    (~1% relocating per slot, recorded as a replayable trace) with the
    incremental slot state on; a scaled-down build must drive the
    differential announce path — per-slot deltas whose churn matches the
    declared fraction — and produce bit-identical allocations vs a full
    rebuild of the same spec."""
    import dataclasses

    from repro.core.metrics import SimulationSummary
    from repro.experiments import allocation_signature
    from repro.mobility import TraceMobility
    from repro.sensors import SlotDelta

    spec = ScenarioSpec.from_json(SPEC_DIR / "stationary_churn.json")
    assert spec.n_sensors >= 20_000
    assert spec.incremental == "auto"
    assert spec.mobility == {"kind": "churn", "fraction": 0.01}
    small = dataclasses.replace(spec, n_sensors=1500, n_slots=3)
    engine = small.build()
    assert engine.incremental == "auto"
    # The mobility override recorded the churn model into a trace.
    assert isinstance(engine.fleet.mobility, TraceMobility)

    full = dataclasses.replace(small, incremental=False).build()
    churns = []
    inc_summary, full_summary = SimulationSummary(), SimulationSummary()
    for t in range(3):
        engine.step(inc_summary)
        full.step(full_summary)
        if t == 0:
            # No previous batch to difference against: the first slot is
            # a full announce (delta-free by design).
            assert engine.last_delta is None
        else:
            assert isinstance(engine.last_delta, SlotDelta)
            churns.append(engine.last_delta.churn_fraction)
        assert allocation_signature(engine.last_result) == allocation_signature(
            full.last_result
        )
    # Warm slots see ~the declared 1% churn (announced-subset sampling
    # keeps it the same order of magnitude).
    assert churns and all(c <= 0.05 for c in churns)
