"""Tests for multi-seed replication and the shape-validation checklists."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments import (
    CI,
    CHECKLISTS,
    FigureResult,
    fig2,
    ordering_robustness,
    replicate,
    validate_figure,
)

MICRO = dataclasses.replace(
    CI, n_slots=3, point_queries_per_slot=30, rwm_sensors=40, budgets=(7, 35)
)


def fake_figure(scale, seed=0):
    """Deterministic stand-in figure: A beats B by a seed-dependent margin."""
    rng = np.random.default_rng(seed)
    result = FigureResult("fake", "t", "x", x_values=[1, 2])
    for x in (1.0, 2.0):
        base = x * 10 + rng.uniform(0, 1)
        result.add("A", "util", base + 5)
        result.add("B", "util", base)
    return result


class TestReplicate:
    def test_aggregates_mean_and_std(self):
        replicated = replicate(fake_figure, CI, seeds=[1, 2, 3])
        mean = replicated.mean("A", "util")
        std = replicated.std("A", "util")
        assert mean.shape == (2,)
        assert (std >= 0).all()
        assert mean[1] > mean[0]

    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            replicate(fake_figure, CI, seeds=[])

    def test_ordering_robustness(self):
        replicated = replicate(fake_figure, CI, seeds=[1, 2, 3, 4])
        assert ordering_robustness(replicated, "A", "B", "util") == 1.0
        assert ordering_robustness(replicated, "B", "A", "util") == 0.0

    def test_format(self):
        replicated = replicate(fake_figure, CI, seeds=[1, 2])
        text = replicated.format("util")
        assert "±" in text and "A" in text

    def test_real_figure_ordering_robust_across_seeds(self):
        """The fig2 headline ordering holds for every micro-scale seed."""
        replicated = replicate(fig2, MICRO, seeds=[11, 22, 33])
        assert ordering_robustness(replicated, "Optimal", "Baseline", "avg_utility") == 1.0


class TestValidation:
    def test_fig2_checklist_passes_on_real_run(self):
        result = fig2(MICRO, seed=5)
        report = validate_figure(result)
        assert report, "fig2 must have a checklist"
        failures = [c for c in report if not c.passed]
        assert not failures, [c.format() for c in failures]

    def test_checklist_detects_violation(self):
        result = fig2(MICRO, seed=5)
        # Sabotage: make the baseline win everywhere.
        result.series["Baseline"]["avg_utility"] = [
            v + 10_000 for v in result.series["Baseline"]["avg_utility"]
        ]
        report = validate_figure(result)
        assert any(not c.passed for c in report)

    def test_unknown_figure_gets_empty_report(self):
        result = FigureResult("not_a_figure", "t", "x")
        assert validate_figure(result) == []

    def test_every_declared_checklist_is_nonempty(self):
        for name, checks in CHECKLISTS.items():
            assert checks, f"empty checklist for {name}"

    def test_check_format(self):
        result = fig2(MICRO, seed=5)
        report = validate_figure(result)
        assert all(c.format().startswith("[PASS]") or c.format().startswith("[FAIL]")
                   for c in report)
