"""Lint driver: scoping config, rule execution, suppression/baseline folds.

``run_lint`` builds the shared :class:`~repro.analysis.index.RepoIndex`
(one ``ast.parse`` per file), runs every selected rule against every
module, then folds out per-line ``# reprolint: disable=...`` suppressions
and the committed baseline.  The whole pass is O(repo) and fast enough
for CI and pre-commit.

Rows (CHANGES-style):
    LintConfig - repo root + per-rule path scopes (defaults = this repo)
    LintResult - active / suppressed / baselined findings + stale entries
    run_lint   - index once, run rules, fold suppressions and baseline
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import apply_baseline, load_baseline
from .index import RepoIndex
from .rules import RULES, Finding

__all__ = ["LintConfig", "LintResult", "run_lint"]


@dataclass(frozen=True)
class LintConfig:
    """Where to look and which paths each rule treats as in-scope.

    All scope entries are ``/``-separated paths relative to ``root``; an
    entry matches itself and everything beneath it.  The defaults encode
    this repository's layout, so ``LintConfig(root=repo_root)`` is the
    CI configuration.
    """

    root: Path = field(default_factory=Path.cwd)
    #: trees indexed and linted
    paths: tuple[str, ...] = ("src/repro",)
    #: where getattr capability probes are checked (REP001)
    capability_scope: tuple[str, ...] = ("src/repro/core",)
    #: declared hot modules: no scalar sensor-axis loops (REP005)
    hot_scope: tuple[str, ...] = (
        "src/repro/core",
        "src/repro/spatial",
        "src/repro/sensors/state.py",
    )
    #: iterable names treated as sensor-indexed by REP005
    hot_iterables: tuple[str, ...] = (
        "sensors",
        "snapshots",
        "candidates",
        "announcements",
    )
    #: async service code: no blocking calls in coroutines (REP006)
    async_scope: tuple[str, ...] = ("src/repro/service",)
    #: modules whose raw numpy allocators must route through the
    #: workspace/backend seam (REP007)
    hot_alloc_scope: tuple[str, ...] = (
        "src/repro/core/greedy.py",
        "src/repro/core/valuation.py",
        "src/repro/spatial/raster.py",
        "src/repro/queries/base.py",
    )
    #: entry points exempt from the determinism rule (REP003)
    determinism_exempt: tuple[str, ...] = (
        "src/repro/cli.py",
        "src/repro/__main__.py",
    )
    #: modules implementing the dispatch guards themselves — direct
    #: batch-hook calls are their job (REP002)
    dispatch_modules: tuple[str, ...] = (
        "src/repro/dispatch.py",
        "src/repro/queries/base.py",
        "src/repro/spatial/coverage.py",
    )
    #: extra attribute names REP001 accepts beyond the indexed tree
    extra_capabilities: tuple[str, ...] = ()
    #: committed baseline of grandfathered findings (None = no baseline)
    baseline_path: Path | None = None
    #: rule-id subset to run (None = all registered rules)
    rules: tuple[str, ...] | None = None


@dataclass
class LintResult:
    """What the pass produced, already folded and deterministically sorted."""

    findings: list[Finding]
    suppressed: list[tuple[Finding, str | None]]
    baselined: list[Finding]
    stale_baseline: Counter
    modules: int

    @property
    def ok(self) -> bool:
        return not self.findings


def select_rules(config: LintConfig):
    if config.rules is None:
        return list(RULES.values())
    unknown = [r for r in config.rules if r not in RULES]
    if unknown:
        raise ValueError(
            f"unknown lint rule(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(RULES))})"
        )
    return [RULES[r] for r in config.rules]


def run_lint(config: LintConfig) -> LintResult:
    repo = RepoIndex.build(Path(config.root), config.paths)
    rules = select_rules(config)
    raw: list[Finding] = []
    for module in repo.modules:
        for rule in rules:
            raw.extend(rule.check(module, repo, config))
    raw.sort()

    by_path = {module.relpath: module for module in repo.modules}
    active: list[Finding] = []
    suppressed: list[tuple[Finding, str | None]] = []
    for finding in raw:
        pragmas = by_path[finding.path].suppressions.get(finding.line, {})
        if finding.rule in pragmas or "all" in pragmas:
            suppressed.append(
                (finding, pragmas.get(finding.rule, pragmas.get("all")))
            )
        else:
            active.append(finding)

    baseline = (
        load_baseline(config.baseline_path)
        if config.baseline_path is not None
        else Counter()
    )
    new, grandfathered, stale = apply_baseline(active, baseline)
    return LintResult(
        findings=new,
        suppressed=suppressed,
        baselined=grandfathered,
        stale_baseline=stale,
        modules=len(repo.modules),
    )
