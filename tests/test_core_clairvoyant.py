"""Tests for the eq. 1 clairvoyant reference solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    OptimalPointAllocator,
    simulate_myopic_gap,
    solve_clairvoyant,
)
from repro.queries import PointQuery
from repro.sensors import (
    FixedEnergyCost,
    PrivacyCostModel,
    PrivacySensitivity,
    Sensor,
)
from repro.spatial import Location


def tiny_world(
    n_slots=3,
    n_sensors=3,
    lifetime=10,
    privacy=PrivacySensitivity.ZERO,
    seed=0,
):
    rng = np.random.default_rng(seed)
    sensors = [
        Sensor(
            i,
            inaccuracy=0.0,
            trust=1.0,
            lifetime=lifetime,
            energy_model=FixedEnergyCost(10.0),
            privacy_model=PrivacyCostModel(privacy, base_price=10.0, window=3),
        )
        for i in range(n_sensors)
    ]
    positions, queries = [], []
    for t in range(n_slots):
        positions.append([Location(float(rng.uniform(0, 10)), 0.0) for _ in sensors])
        queries.append(
            [
                PointQuery(
                    Location(float(rng.uniform(0, 10)), 0.0),
                    budget=float(rng.uniform(15, 30)),
                    theta_min=0.0,
                    dmax=6.0,
                )
                for _ in range(3)
            ]
        )
    return queries, positions, sensors


class TestClairvoyant:
    def test_guard_limits(self):
        queries, positions, sensors = tiny_world(n_sensors=3)
        with pytest.raises(ValueError):
            solve_clairvoyant(queries, positions, sensors, max_sensors=2)
        with pytest.raises(ValueError):
            solve_clairvoyant(queries, positions, sensors, max_slots=2)

    def test_misaligned_slots_rejected(self):
        queries, positions, sensors = tiny_world()
        with pytest.raises(ValueError):
            solve_clairvoyant(queries[:-1], positions, sensors)

    def test_plan_covers_all_slots(self):
        queries, positions, sensors = tiny_world()
        plan = solve_clairvoyant(queries, positions, sensors)
        assert len(plan.per_slot_selected) == len(queries)
        assert plan.total_utility >= 0.0

    def test_without_coupling_matches_per_slot_optimum(self):
        """With ample lifetime and zero privacy, eq. 1 decomposes into
        independent slots, so the clairvoyant total equals the sum of
        per-slot BILP optima."""
        queries, positions, sensors = tiny_world(lifetime=50)
        myopic, clairvoyant = simulate_myopic_gap(
            queries, positions, sensors, OptimalPointAllocator()
        )
        assert myopic == pytest.approx(clairvoyant, abs=1e-6)

    def test_myopic_never_beats_clairvoyant(self):
        for seed in range(5):
            queries, positions, sensors = tiny_world(
                lifetime=1, privacy=PrivacySensitivity.HIGH, seed=seed
            )
            myopic, clairvoyant = simulate_myopic_gap(
                queries, positions, sensors, OptimalPointAllocator()
            )
            assert myopic <= clairvoyant + 1e-6

    def test_lifetime_coupling_creates_gap(self):
        """With lifetime 1, spending a sensor early can forfeit a better
        future use; a myopic gap must exist on at least one seed."""
        gaps = []
        for seed in range(8):
            queries, positions, sensors = tiny_world(lifetime=1, seed=seed)
            myopic, clairvoyant = simulate_myopic_gap(
                queries, positions, sensors, OptimalPointAllocator()
            )
            gaps.append(clairvoyant - myopic)
        assert max(gaps) > 1e-9
