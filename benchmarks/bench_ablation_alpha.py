"""Ablation: the alpha budget-carryover control of Algorithms 2/3.

Section 3.3 introduces alpha as "a fraction of the extra budget ... to be
able to keep some extra budget for uncertain future samples" and fixes it
at 0.5 in the experiments.  This sweep shows what the knob buys: alpha = 0
disables opportunistic sampling entirely, alpha = 1 spends every surplus
immediately.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.core import (
    LocationMonitoringController,
    LocationMonitoringSimulation,
    OptimalPointAllocator,
)
from repro.datasets import build_ozone_dataset, build_rnc_scenario
from repro.queries import LocationMonitoringWorkload

ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def sweep(scale):
    scenario = build_rnc_scenario(
        2013, scale.rnc_sensors, scale.rnc_presence, scale.n_slots
    )
    ozone = build_ozone_dataset(2013, n_slots=max(50, scale.n_slots))
    rows = []
    for alpha in ALPHAS:
        workload = LocationMonitoringWorkload(
            scenario.working_region,
            ozone.values,
            ozone.model(),
            budget_factor=15.0,
            max_live=scale.lm_max_live,
            arrivals_per_slot=scale.lm_arrivals_per_slot,
            dmax=scenario.dmax,
        )
        sim = LocationMonitoringSimulation(
            scenario.make_fleet(),
            workload,
            OptimalPointAllocator(),
            np.random.default_rng(2013),
            controller=LocationMonitoringController(alpha=alpha),
        )
        summary = sim.run(scale.n_slots)
        rows.append(
            (alpha, summary.average_utility, summary.average_quality("location_monitoring"))
        )
    return rows


def test_alpha_ablation(benchmark, scale):
    rows = run_once(benchmark, sweep, scale)
    print("\nalpha  avg_utility  avg_quality")
    for alpha, utility, quality in rows:
        print(f"{alpha:5.2f}  {utility:11.2f}  {quality:11.3f}")
    # Opportunistic sampling (alpha > 0) must not hurt result quality
    # relative to alpha = 0 at the same budget.
    q0 = rows[0][2]
    assert max(q for _, _, q in rows[1:]) >= q0 - 1e-9
