"""Online trust assessment — the mechanism the paper assumes exists.

Section 4.1: "Since the trust or reputation assessment of sensors is not
the focus of this work, we assume that there is a trust assessment
mechanism in place which assigns trustworthiness values to the sensors upon
initialization."  This module supplies such a mechanism so deployments (and
our extension benches) do not have to assume oracle trust values:

:class:`BetaReputationTracker` maintains the classic Beta-reputation
posterior per sensor.  Each delivered reading is scored against a reference
(redundant co-located readings or ground truth where available); agreements
accumulate as ``alpha`` pseudo-counts, disagreements as ``beta``, and the
published trust is the posterior mean ``alpha / (alpha + beta)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["BetaReputationTracker", "ReputationRecord"]


@dataclass
class ReputationRecord:
    """Beta-posterior state of one sensor."""

    alpha: float = 1.0  # prior pseudo-count of agreements
    beta: float = 1.0  # prior pseudo-count of disagreements

    @property
    def trust(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    @property
    def observations(self) -> float:
        return self.alpha + self.beta - 2.0


@dataclass
class BetaReputationTracker:
    """Per-sensor Beta reputation with exponential forgetting.

    Args:
        prior_alpha / prior_beta: initial pseudo-counts; (1, 1) is the
            uniform prior (trust 0.5), (9, 1) starts sensors off trusted.
        tolerance: absolute deviation from the reference below which a
            reading counts as an agreement.
        forgetting: per-update decay applied to both counts, so stale
            behaviour washes out and a compromised sensor loses trust
            quickly (1.0 = never forget).
    """

    prior_alpha: float = 1.0
    prior_beta: float = 1.0
    tolerance: float = 1.0
    forgetting: float = 0.98
    records: dict[int, ReputationRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.prior_alpha <= 0 or self.prior_beta <= 0:
            raise ValueError("priors must be positive")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if not (0.0 < self.forgetting <= 1.0):
            raise ValueError("forgetting must be in (0, 1]")

    def record_of(self, sensor_id: int) -> ReputationRecord:
        if sensor_id not in self.records:
            self.records[sensor_id] = ReputationRecord(self.prior_alpha, self.prior_beta)
        return self.records[sensor_id]

    def trust_of(self, sensor_id: int) -> float:
        """Current published trust (posterior mean)."""
        return self.record_of(sensor_id).trust

    def observe(self, sensor_id: int, reading: float, reference: float) -> float:
        """Score one reading against a reference value; returns new trust."""
        record = self.record_of(sensor_id)
        record.alpha *= self.forgetting
        record.beta *= self.forgetting
        if abs(reading - reference) <= self.tolerance:
            record.alpha += 1.0
        else:
            record.beta += 1.0
        return record.trust

    def observe_redundant(self, readings: dict[int, float]) -> dict[int, float]:
        """Score a co-located redundant batch against its own median.

        This is how a PS aggregator assesses trust without ground truth:
        redundant measurements of the same phenomenon vouch for (or against)
        each other.  Needs at least three readings; returns updated trusts.
        """
        if len(readings) < 3:
            raise ValueError("redundant scoring needs at least 3 readings")
        values = sorted(readings.values())
        mid = len(values) // 2
        if len(values) % 2:
            median = values[mid]
        else:
            median = 0.5 * (values[mid - 1] + values[mid])
        return {
            sensor_id: self.observe(sensor_id, reading, median)
            for sensor_id, reading in readings.items()
        }

    def snapshot(self) -> dict[int, float]:
        """Current trust of every tracked sensor."""
        return {sid: record.trust for sid, record in self.records.items()}
