"""Point queries (Section 2.2.1): eqs. (3) and (4).

A *single-sensor* point query wants one reading of the phenomenon at a
location ``l_q`` and values a sensor ``s`` by eq. (3)::

    v_q(s) = B_q * theta_{q,s}   if theta_min <= theta_{q,s} <= 1, else 0

where the reading quality (eq. 4) discounts distance, inherent inaccuracy
and trust::

    theta_q(s, l_q) = (1 - gamma_s) * (1 - |l_s - l_q| / dmax) * tau_s
                      if |l_s - l_q| <= dmax, else 0

A *multiple-sensor* point query asks for k redundant readings (e.g. to
assess trustworthiness, Section 2.2.1) and values a set by the average of
its k best qualities scaled by the fill ratio.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..sensors import SensorSnapshot
from ..spatial import Location, as_xy
from .base import (
    BatchGainState,
    GainBlock,
    Query,
    QueryType,
    SensorRoster,
    ValuationState,
)

__all__ = ["reading_quality", "PointQuery", "MultiSensorPointQuery"]


def reading_quality(snapshot: SensorSnapshot, location: Location, dmax: float) -> float:
    """Eq. (4): quality of a reading from ``snapshot`` for ``location``."""
    if dmax <= 0:
        raise ValueError("dmax must be positive")
    distance = snapshot.location.distance_to(location)
    if distance > dmax:
        return 0.0
    return (1.0 - snapshot.inaccuracy) * (1.0 - distance / dmax) * snapshot.trust


def _quality_values(
    location: Location,
    dmax: float,
    xy: np.ndarray,
    gamma: np.ndarray,
    trust: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`reading_quality` over stacked announcement arrays.

    Same operation sequence as the scalar path (``(1-gamma) * (1-d/dmax)``
    then ``* tau``, zeroed beyond ``dmax``); distances go through
    ``np.hypot`` where the scalar path uses ``math.hypot``, which may
    differ in the final ulp (see :mod:`repro.core.valuation`).
    """
    dist = np.hypot(xy[:, 0] - location.x, xy[:, 1] - location.y)
    theta = (1.0 - gamma) * (1.0 - dist / dmax)
    theta *= trust
    theta[dist > dmax] = 0.0
    return theta


def _quality_row(location: Location, dmax: float, roster: SensorRoster) -> np.ndarray:
    """:func:`_quality_values` over a roster's candidates."""
    return _quality_values(location, dmax, roster.xy, roster.gamma, roster.trust)


def _require_quality_columns(
    query, gamma: np.ndarray | None, trust: np.ndarray | None
) -> None:
    """Quality-gated relevance masks need the full announcement columns."""
    if gamma is None or trust is None:
        raise ValueError(
            f"{type(query).__name__}.relevant_mask needs the gamma and trust "
            "columns: its relevance is quality-gated, not purely geometric"
        )


def _quality_gated_mask(
    query,
    xy: np.ndarray,
    gamma: np.ndarray | None,
    trust: np.ndarray | None,
) -> np.ndarray:
    """Thresholded eq.-4 relevance row shared by the quality-gated types.

    ``query`` needs ``location``, ``dmax`` and ``theta_min`` — the shape
    multi-point, event-slot and location-monitoring relevance share:
    quality zeroed below ``theta_min``, relevant where positive.
    """
    _require_quality_columns(query, gamma, trust)
    theta = _quality_values(query.location, query.dmax, as_xy(xy), gamma, trust)
    theta[theta < query.theta_min] = 0.0
    return theta > 0.0


def _single_value_row(query: "PointQuery", roster: SensorRoster) -> np.ndarray:
    """Eq. (3) value row for one query — `ValuationKernel.single_values`
    restricted to a roster, for allocators without a slot kernel block."""
    theta = _quality_row(query.location, query.dmax, roster)
    values = query.budget * theta
    values[theta < query.theta_min] = 0.0
    return values


class _BestSensorBatch(BatchGainState):
    """Point-query batch gains: one value row clipped at the current best."""

    def __init__(self, state: "_BestSensorState", roster: SensorRoster) -> None:
        super().__init__(state, roster)
        row = roster.value_rows.get(state.query.query_id)
        self._row = row if row is not None else _single_value_row(state.query, roster)

    def gain_many(self, indices: np.ndarray) -> np.ndarray:
        return np.maximum(self._row[indices] - self.state.value, 0.0)

    @classmethod
    def block(cls, members) -> GainBlock:
        return _BestSensorBlock(members)


class _BestSensorBlock(GainBlock):
    """Fused point-query gains: the stacked value rows clipped per member.

    Per pair this is exactly :meth:`_BestSensorBatch.gain_many`'s
    ``max(row[j] - state.value, 0)`` — the member values are gathered live
    per call, the rows once at construction — so the fused and per-row
    paths are bit-identical.
    """

    def __init__(self, members) -> None:
        super().__init__(members)
        n = members[0].roster.n_sensors if members else 0
        self._rows = np.empty((len(self.members), n), dtype=float)
        for p, member in enumerate(self.members):
            self._rows[p] = member._row

    def gain_many_block(
        self, member_idx: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        values = np.fromiter(
            (m.state.value for m in self.members), float, len(self.members)
        )
        return np.maximum(
            self._rows[member_idx, indices] - values[member_idx], 0.0
        )


class _BestSensorState(ValuationState):
    """O(1) incremental state for max-semantics point queries."""

    def gain(self, snapshot: SensorSnapshot) -> float:
        return max(0.0, self.query.value_single(snapshot) - self.value)

    def add(self, snapshot: SensorSnapshot) -> float:
        gain = self.gain(snapshot)
        self.selected.append(snapshot)
        self.value += gain
        return gain

    def batch(self, roster: SensorRoster) -> BatchGainState:
        return _BestSensorBatch(self, roster)


class _TopKBatch(BatchGainState):
    """Multi-sensor point-query batch gains: vectorized top-k average.

    Re-sorts the (small) selected-quality list against every candidate
    quality at once and sums the k best columns *sequentially*, which
    replicates the scalar ``sum(sorted(...)[:k])`` addition order exactly;
    only the candidate quality itself can differ from the scalar path in
    the final ulp (``np.hypot`` vs ``math.hypot``).
    """

    def __init__(self, state: "_TopKState", roster: SensorRoster) -> None:
        super().__init__(state, roster)
        query = state.query
        theta = _quality_row(query.location, query.dmax, roster)
        theta[theta < query.theta_min] = 0.0
        self._qualities = theta

    def gain_many(self, indices: np.ndarray) -> np.ndarray:
        state = self.state
        query = state.query
        selected = [query.quality(s) for s in state.selected]
        m = len(selected)
        stacked = np.empty((len(indices), m + 1), dtype=float)
        stacked[:, :m] = selected
        stacked[:, m] = self._qualities[indices]
        stacked = np.sort(stacked, axis=1)[:, ::-1]
        k = min(query.n_readings, m + 1)
        total = stacked[:, 0].copy()
        for j in range(1, k):
            total += stacked[:, j]
        value_new = query.budget * total / query.n_readings
        return value_new - state.value

    @classmethod
    def block(cls, members) -> GainBlock:
        return _TopKBlock(members)


class _TopKBlock(GainBlock):
    """Fused multi-sensor point-query gains over padded quality matrices.

    Candidate qualities are stacked once; each call pads every pair's row
    to the widest dirty member's selected count with ``-1`` sentinels
    (real qualities are ``>= 0``, so after the descending sort the padding
    sits strictly below every real entry and a pair's leading ``m + 1``
    sorted entries equal :meth:`_TopKBatch.gain_many`'s exactly), then a
    row ``cumsum`` — sequential addition, the same order as the per-row
    loop — is sampled at each pair's own ``k - 1``.  Bit-identical to the
    per-member path.
    """

    def __init__(self, members) -> None:
        super().__init__(members)
        n = members[0].roster.n_sensors if members else 0
        self._qualities = np.empty((len(self.members), n), dtype=float)
        for p, member in enumerate(self.members):
            self._qualities[p] = member._qualities

    def gain_many_block(
        self, member_idx: np.ndarray, indices: np.ndarray
    ) -> np.ndarray:
        members = self.members
        dirty = np.unique(member_idx)
        selected = {}
        for u in dirty:
            state = members[u].state
            query = state.query
            selected[u] = [query.quality(s) for s in state.selected]
        width = max(len(selected[u]) for u in dirty) + 1
        stacked = np.full((len(member_idx), width), -1.0)
        k_of = np.empty(len(members), dtype=np.intp)
        values = np.zeros(len(members), dtype=float)
        budgets = np.empty(len(members), dtype=float)
        n_readings = np.empty(len(members), dtype=float)
        for u in dirty:
            rows = member_idx == u
            qualities = selected[u]
            if qualities:
                stacked[rows, : len(qualities)] = qualities
            stacked[rows, len(qualities)] = self._qualities[u][indices[rows]]
            state = members[u].state
            k_of[u] = min(state.query.n_readings, len(qualities) + 1)
            values[u] = state.value
            budgets[u] = state.query.budget
            n_readings[u] = state.query.n_readings
        stacked = np.sort(stacked, axis=1)[:, ::-1]
        csum = np.cumsum(stacked, axis=1)
        total = csum[np.arange(len(member_idx)), k_of[member_idx] - 1]
        value_new = budgets[member_idx] * total / n_readings[member_idx]
        return value_new - values[member_idx]


class _TopKState(ValuationState):
    """Generic scalar state for multi-sensor point queries, plus batch gains."""

    def batch(self, roster: SensorRoster) -> BatchGainState:
        return _TopKBatch(self, roster)


class PointQuery(Query):
    """Single-sensor point query with the eq. (3) valuation.

    Attributes:
        location: the queried location ``l_q``.
        theta_min: minimum acceptable quality (paper experiments: 0.2).
        dmax: maximum distance at which sensors can provide data (paper:
            5 on RWM, 10 on RNC).
        parent_id: set when the query was generated on behalf of a
            continuous query by Algorithm 2/3 — lets the controllers route
            execution results back.
    """

    def __init__(
        self,
        location: Location,
        budget: float,
        theta_min: float = 0.2,
        dmax: float = 5.0,
        query_id: str | None = None,
        issued_at: int = 0,
        parent_id: str | None = None,
    ) -> None:
        super().__init__(budget, query_id, issued_at)
        if not (0.0 <= theta_min <= 1.0):
            raise ValueError("theta_min must be in [0, 1]")
        if dmax <= 0:
            raise ValueError("dmax must be positive")
        self.location = location
        self.theta_min = theta_min
        self.dmax = dmax
        self.parent_id = parent_id

    @property
    def query_type(self) -> QueryType:
        return QueryType.POINT

    # ------------------------------------------------------------------
    # valuation
    # ------------------------------------------------------------------
    def quality(self, snapshot: SensorSnapshot) -> float:
        """Eq. (4) quality of ``snapshot`` for this query's location."""
        return reading_quality(snapshot, self.location, self.dmax)

    def value_single(self, snapshot: SensorSnapshot) -> float:
        """Eq. (3): the value of one reading."""
        theta = self.quality(snapshot)
        if theta < self.theta_min:
            return 0.0
        return self.budget * theta

    def value(self, snapshots: Sequence[SensorSnapshot]) -> float:
        """A single-sensor query uses the best available reading."""
        if not snapshots:
            return 0.0
        return max(self.value_single(s) for s in snapshots)

    def best_sensor(self, snapshots: Sequence[SensorSnapshot]) -> SensorSnapshot | None:
        """The snapshot achieving :meth:`value`, or None if all worthless."""
        best, best_value = None, 0.0
        for snapshot in snapshots:
            v = self.value_single(snapshot)
            if v > best_value:
                best, best_value = snapshot, v
        return best

    def relevant(self, snapshot: SensorSnapshot) -> bool:
        return self.value_single(snapshot) > 0.0

    def relevant_mask(
        self,
        xy: np.ndarray,
        gamma: np.ndarray | None = None,
        trust: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`relevant`: the eq. (3) value row ``> 0``.

        Matches :meth:`~repro.core.valuation.ValuationKernel.single_values`
        positively/zero-wise (``np.hypot`` path; see the module note on the
        last-ulp caveat versus the scalar ``math.hypot``).
        """
        _require_quality_columns(self, gamma, trust)
        theta = _quality_values(self.location, self.dmax, as_xy(xy), gamma, trust)
        values = self.budget * theta
        values[theta < self.theta_min] = 0.0
        return values > 0.0

    def new_state(self) -> ValuationState:
        return _BestSensorState(self)


class MultiSensorPointQuery(Query):
    """Point query asking for ``k`` redundant readings (Section 2.2.1).

    Values a set ``S`` as ``B_q * (sum of the k best qualities) / k``: the
    budget is attained only with k high-quality readings, extra sensors
    beyond k add nothing, and fewer sensors earn the pro-rated fraction.
    This is a weighted rank-truncated sum — monotone submodular, which the
    property tests verify.
    """

    def __init__(
        self,
        location: Location,
        budget: float,
        n_readings: int,
        theta_min: float = 0.2,
        dmax: float = 5.0,
        query_id: str | None = None,
        issued_at: int = 0,
    ) -> None:
        super().__init__(budget, query_id, issued_at)
        if n_readings < 1:
            raise ValueError("n_readings must be >= 1")
        if not (0.0 <= theta_min <= 1.0):
            raise ValueError("theta_min must be in [0, 1]")
        if dmax <= 0:
            raise ValueError("dmax must be positive")
        self.location = location
        self.n_readings = n_readings
        self.theta_min = theta_min
        self.dmax = dmax

    @property
    def query_type(self) -> QueryType:
        return QueryType.MULTI_POINT

    def quality(self, snapshot: SensorSnapshot) -> float:
        theta = reading_quality(snapshot, self.location, self.dmax)
        return theta if theta >= self.theta_min else 0.0

    def value(self, snapshots: Sequence[SensorSnapshot]) -> float:
        qualities = sorted((self.quality(s) for s in snapshots), reverse=True)
        top = qualities[: self.n_readings]
        return self.budget * sum(top) / self.n_readings

    def relevant(self, snapshot: SensorSnapshot) -> bool:
        return self.quality(snapshot) > 0.0

    def relevant_mask(
        self,
        xy: np.ndarray,
        gamma: np.ndarray | None = None,
        trust: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`relevant`: thresholded quality row ``> 0``."""
        return _quality_gated_mask(self, xy, gamma, trust)

    def new_state(self) -> ValuationState:
        return _TopKState(self)
