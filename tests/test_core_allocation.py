"""Tests for AllocationResult bookkeeping and its Theorem-1 invariants."""

from __future__ import annotations

import pytest

from helpers import make_point_query, make_snapshot
from repro.core import AllocationError, AllocationResult, PaymentInvariantError, check_distinct


class TestRecordAndAccounting:
    def test_record_accumulates(self):
        result = AllocationResult()
        snap = make_snapshot(0, cost=10.0)
        result.record("q1", snap, value_gain=8.0, payment=6.0)
        result.record("q2", snap, value_gain=6.0, payment=4.0)
        assert result.total_value == pytest.approx(14.0)
        assert result.total_cost == pytest.approx(10.0)
        assert result.total_utility == pytest.approx(4.0)
        assert result.sensor_income(0) == pytest.approx(10.0)
        assert result.query_payment("q1") == pytest.approx(6.0)
        assert result.query_utility("q1") == pytest.approx(2.0)

    def test_record_same_pair_twice_merges(self):
        result = AllocationResult()
        snap = make_snapshot(0, cost=10.0)
        result.record("q1", snap, 5.0, 5.0)
        result.record("q1", snap, 5.0, 5.0)
        assert result.assignments["q1"] == (0,)
        assert result.values["q1"] == pytest.approx(10.0)

    def test_is_answered_and_count(self):
        result = AllocationResult()
        assert not result.is_answered("q1")
        result.record("q1", make_snapshot(0, cost=0.0), 1.0, 0.0)
        assert result.is_answered("q1")
        assert result.answered_count() == 1

    def test_record_accepts_query_objects(self):
        query = make_point_query(query_id="qx")
        result = AllocationResult()
        result.record(query, make_snapshot(0, cost=0.0), 1.0, 0.0)
        assert result.is_answered("qx")


class TestVerify:
    def test_valid_result_passes(self):
        result = AllocationResult()
        snap = make_snapshot(0, cost=10.0)
        result.record("q1", snap, 12.0, 10.0)
        result.verify()

    def test_cost_recovery_violation(self):
        result = AllocationResult()
        snap = make_snapshot(0, cost=10.0)
        result.record("q1", snap, 12.0, 7.0)  # underpays the sensor
        with pytest.raises(PaymentInvariantError):
            result.verify()

    def test_negative_utility_violation(self):
        result = AllocationResult()
        snap = make_snapshot(0, cost=10.0)
        result.record("q1", snap, 5.0, 10.0)  # pays more than its value
        with pytest.raises(PaymentInvariantError):
            result.verify()

    def test_negative_payment_violation(self):
        result = AllocationResult()
        snap = make_snapshot(0, cost=0.0)
        result.record("q1", snap, 5.0, -1.0)
        with pytest.raises(PaymentInvariantError):
            result.verify()

    def test_unselected_sensor_assignment_violation(self):
        result = AllocationResult()
        result.assignments["q1"] = (99,)
        result.values["q1"] = 1.0
        with pytest.raises(PaymentInvariantError):
            result.verify()

    def test_empty_result_passes(self):
        AllocationResult().verify()

    def test_tolerance_scales_with_cost(self):
        # A relative rounding error on a large cost must not trip the
        # absolute tolerance: the check scales by the announced cost.
        result = AllocationResult()
        cost = 1e9
        snap = make_snapshot(0, cost=cost)
        result.record("q1", snap, 2e9, cost * (1.0 + 1e-8))
        result.verify()

    def test_overpaid_sensor_is_also_a_violation(self):
        # Cost recovery is an equality: a sensor may not profit either.
        result = AllocationResult()
        snap = make_snapshot(0, cost=10.0)
        result.record("q1", snap, 30.0, 14.0)
        with pytest.raises(PaymentInvariantError):
            result.verify()


class TestMerge:
    def test_merge_combines_ledgers(self):
        a, b = AllocationResult(), AllocationResult()
        s0, s1 = make_snapshot(0, cost=10.0), make_snapshot(1, cost=10.0)
        a.record("q1", s0, 12.0, 10.0)
        b.record("q1", s1, 4.0, 0.0)
        b.record("q2", s1, 11.0, 10.0)
        a.merge(b)
        assert set(a.selected) == {0, 1}
        assert a.assignments["q1"] == (0, 1)
        assert a.values["q1"] == pytest.approx(16.0)
        a.verify()

    def test_merge_rejects_conflicting_costs(self):
        a, b = AllocationResult(), AllocationResult()
        a.record("q1", make_snapshot(0, cost=10.0), 12.0, 10.0)
        b.record("q2", make_snapshot(0, cost=5.0), 6.0, 5.0)
        with pytest.raises(AllocationError):
            a.merge(b)

    def test_merge_conflict_leaves_no_partial_sensor_overwrite(self):
        # The conflicting snapshot must not silently replace the original.
        a, b = AllocationResult(), AllocationResult()
        a.record("q1", make_snapshot(0, cost=10.0), 12.0, 10.0)
        b.record("q2", make_snapshot(0, cost=5.0), 6.0, 5.0)
        with pytest.raises(AllocationError):
            a.merge(b)
        assert a.selected[0].cost == pytest.approx(10.0)

    def test_merge_accepts_same_cost_reannouncement(self):
        a, b = AllocationResult(), AllocationResult()
        snap = make_snapshot(0, cost=10.0)
        a.record("q1", snap, 12.0, 6.0)
        b.record("q2", make_snapshot(0, cost=10.0), 8.0, 4.0)
        a.merge(b)
        assert a.sensor_income(0) == pytest.approx(10.0)
        a.verify()

    def test_merge_accumulates_same_pair_payments(self):
        a, b = AllocationResult(), AllocationResult()
        snap = make_snapshot(0, cost=10.0)
        a.record("q1", snap, 6.0, 4.0)
        b.record("q1", make_snapshot(0, cost=10.0), 7.0, 6.0)
        a.merge(b)
        assert a.values["q1"] == pytest.approx(13.0)
        assert a.payments[("q1", 0)] == pytest.approx(10.0)
        assert a.assignments["q1"] == (0,)
        a.verify()

    def test_merge_into_empty_result(self):
        a, b = AllocationResult(), AllocationResult()
        b.record("q1", make_snapshot(3, cost=2.0), 5.0, 2.0)
        a.merge(b)
        assert a.total_value == pytest.approx(5.0)
        assert a.total_cost == pytest.approx(2.0)
        a.verify()


class TestCheckDistinct:
    def test_duplicate_query_ids_rejected(self):
        queries = [make_point_query(query_id="dup"), make_point_query(query_id="dup")]
        with pytest.raises(AllocationError):
            check_distinct(queries, [])

    def test_duplicate_sensor_ids_rejected(self):
        sensors = [make_snapshot(1), make_snapshot(1, x=2)]
        with pytest.raises(AllocationError):
            check_distinct([], sensors)

    def test_distinct_inputs_pass(self):
        check_distinct([make_point_query()], [make_snapshot(0), make_snapshot(1)])
