"""Query-mix data acquisition — Algorithm 5 (Section 3.4) and its baseline.

Algorithm 5's four stages map to :meth:`MixAllocator.allocate_slot`:

1. *Point query creation*: Algorithms 2/3 derive point queries for the live
   location/region monitoring queries.
2. *Sensor selection*: user point queries, aggregate queries and all the
   derived point queries go jointly into Algorithm 1.
3. *Result application*: Algorithms 2/3 fold the outcomes back.
4. *Payment adjustment & accounting*: region-monitoring cost contributions
   rebalance the ledger; the caller then charges users and pays sensors.

The baseline (Section 4.7) instead executes sequentially with data
buffering: aggregates first through the Section 4.4 baseline, then point
queries (user-issued plus monitoring-derived at desired times only) through
the Section 4.3 baseline, with stage-1 sensors costing zero in stage 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..queries import (
    LocationMonitoringQuery,
    PointQuery,
    Query,
    RegionMonitoringQuery,
)
from ..sensors import SensorSnapshot
from .allocation import AllocationResult, Allocator
from .baselines import BaselineAllocator
from .engine import call_allocator
from .greedy import GreedyAllocator
from .monitoring import (
    LocationMonitoringController,
    RegionMonitoringController,
    RegionSlotOutcome,
)
from .valuation import ValuationKernel

__all__ = ["MixOutcome", "MixAllocator", "BaselineMixAllocator"]


@dataclass
class MixOutcome:
    """Everything the accounting layer needs from one mixed slot."""

    result: AllocationResult
    lm_children: list[PointQuery] = field(default_factory=list)
    rm_children: list[PointQuery] = field(default_factory=list)
    lm_samples: int = 0
    lm_value_delta: float = 0.0
    rm_outcomes: list[RegionSlotOutcome] = field(default_factory=list)

    @property
    def child_ids(self) -> set[str]:
        ids = {c.query_id for c in self.lm_children}
        ids.update(c.query_id for c in self.rm_children)
        return ids

    @property
    def total_utility(self) -> float:
        """Slot social welfare: one-shot + monitoring values minus costs.

        Monitoring children's allocated values are replaced by the realized
        quantities: the parents' eq. 16 value deltas for location
        monitoring, and the achieved slot values (which include the shared
        ``A_{r,t}`` sensors) for region monitoring.
        """
        child_ids = self.child_ids
        one_shot = sum(
            v for qid, v in self.result.values.items() if qid not in child_ids
        )
        rm_value = sum(o.achieved_value for o in self.rm_outcomes)
        return one_shot + self.lm_value_delta + rm_value - self.result.total_cost


class MixAllocator:
    """Algorithm 5: joint data acquisition for a mix of query types.

    Args:
        joint: the stage-2 allocator (paper: Algorithm 1 / greedy).
        lm_controller / rm_controller: the Algorithm 2/3 controllers.
    """

    name = "Alg5"

    def __init__(
        self,
        joint: Allocator | None = None,
        lm_controller: LocationMonitoringController | None = None,
        rm_controller: RegionMonitoringController | None = None,
    ) -> None:
        self.joint = joint if joint is not None else GreedyAllocator()
        self.lm_controller = (
            lm_controller if lm_controller is not None else LocationMonitoringController()
        )
        self.rm_controller = (
            rm_controller if rm_controller is not None else RegionMonitoringController()
        )

    def allocate_slot(
        self,
        t: int,
        point_queries: Sequence[PointQuery],
        aggregate_queries: Sequence[Query],
        lm_queries: Sequence[LocationMonitoringQuery],
        rm_queries: Sequence[RegionMonitoringQuery],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None = None,
    ) -> MixOutcome:
        # Stage 1: point-query creation for continuous queries.
        lm_children = self.lm_controller.create_point_queries(lm_queries, t)
        rm_children, plans = self.rm_controller.create_point_queries(
            rm_queries, sensors, t
        )
        # Stage 2: joint sensor selection over every query at once.
        all_queries: list[Query] = []
        all_queries.extend(aggregate_queries)
        all_queries.extend(point_queries)
        all_queries.extend(lm_children)
        all_queries.extend(rm_children)
        result = call_allocator(self.joint, all_queries, sensors, kernel)
        # Stage 3: apply the outcomes to the continuous queries.
        lm_samples, lm_value_delta = self.lm_controller.apply_results(
            lm_queries, lm_children, result, t
        )
        rm_outcomes = self.rm_controller.apply_results(
            rm_queries, rm_children, plans, result, t
        )
        # Stage 4: payment adjustment for the shared-sensor contributions.
        self.rm_controller.adjust_payments(result, rm_outcomes)
        result.verify()
        return MixOutcome(
            result=result,
            lm_children=lm_children,
            rm_children=rm_children,
            lm_samples=lm_samples,
            lm_value_delta=lm_value_delta,
            rm_outcomes=rm_outcomes,
        )


class BaselineMixAllocator:
    """The Section 4.7 baseline: sequential per-type execution.

    Aggregates run first through the Section 4.4 baseline; their sensors
    then cost nothing for the point stage ("the cost of selected sensors is
    set to zero for subsequent queries"), which runs user point queries and
    desired-time-only monitoring point queries through the Section 4.3
    baseline.
    """

    name = "BaselineMix"

    def __init__(self) -> None:
        self.aggregate_stage = BaselineAllocator()
        self.point_stage = BaselineAllocator()
        self.lm_controller = LocationMonitoringController(
            opportunistic=False, scheduled_only=True
        )
        self.rm_controller = RegionMonitoringController(
            weight_fn=lambda k: 1.0, use_shared_sensors=False
        )

    def allocate_slot(
        self,
        t: int,
        point_queries: Sequence[PointQuery],
        aggregate_queries: Sequence[Query],
        lm_queries: Sequence[LocationMonitoringQuery],
        rm_queries: Sequence[RegionMonitoringQuery],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None = None,
    ) -> MixOutcome:
        result = AllocationResult()
        stage1 = call_allocator(
            self.aggregate_stage, list(aggregate_queries), sensors, kernel
        )
        result.merge(stage1)

        # Stage-1 sensors are buffered: re-announce them at zero cost.
        zeroed = {
            sid: SensorSnapshot(
                sensor_id=snap.sensor_id,
                location=snap.location,
                cost=0.0,
                inaccuracy=snap.inaccuracy,
                trust=snap.trust,
            )
            for sid, snap in stage1.selected.items()
        }
        stage2_sensors = [zeroed.get(s.sensor_id, s) for s in sensors]

        lm_children = self.lm_controller.create_point_queries(lm_queries, t)
        rm_children, plans = self.rm_controller.create_point_queries(
            rm_queries, stage2_sensors, t
        )
        stage2_queries: list[Query] = list(point_queries) + lm_children + rm_children
        stage2 = call_allocator(self.point_stage, stage2_queries, stage2_sensors, kernel)

        lm_samples, lm_value_delta = self.lm_controller.apply_results(
            lm_queries, lm_children, stage2, t
        )
        rm_outcomes = self.rm_controller.apply_results(
            rm_queries, rm_children, plans, stage2, t
        )

        # Merge stage 2, restoring original cost snapshots so the combined
        # ledger still shows each sensor recovering its true cost (paid
        # once, in stage 1).
        restored = AllocationResult(
            selected={
                sid: (stage1.selected[sid] if sid in stage1.selected else snap)
                for sid, snap in stage2.selected.items()
            },
            assignments=stage2.assignments,
            values=stage2.values,
            payments=stage2.payments,
        )
        result.merge(restored)
        result.verify()
        return MixOutcome(
            result=result,
            lm_children=lm_children,
            rm_children=rm_children,
            lm_samples=lm_samples,
            lm_value_delta=lm_value_delta,
            rm_outcomes=rm_outcomes,
        )
