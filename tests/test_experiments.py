"""Tests for the experiment harness (config, runner, reporting)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import (
    CI,
    PAPER,
    FigureResult,
    format_figure,
    format_metric_table,
    get_scale,
)


class TestScales:
    def test_paper_matches_section4(self):
        assert PAPER.n_slots == 50
        assert PAPER.point_queries_per_slot == 300
        assert PAPER.rwm_sensors == 200
        assert PAPER.rnc_sensors == 635
        assert PAPER.budgets == (7, 10, 15, 20, 25, 30, 35)
        assert PAPER.monitoring_budget_factors == (7, 10, 15, 20, 25)
        assert PAPER.query_counts == (250, 500, 750, 1000)

    def test_ci_is_smaller_everywhere(self):
        assert CI.n_slots < PAPER.n_slots
        assert CI.point_queries_per_slot < PAPER.point_queries_per_slot
        assert CI.rnc_sensors < PAPER.rnc_sensors

    def test_get_scale_by_name(self):
        assert get_scale("paper") is PAPER
        assert get_scale("CI") is CI

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert get_scale() is PAPER
        monkeypatch.delenv("REPRO_SCALE")
        assert get_scale() is CI

    def test_get_scale_unknown(self):
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(CI, n_slots=0)


def sample_result() -> FigureResult:
    result = FigureResult("figX", "demo", "budget", x_values=[7, 15])
    for alg, values in [("A", [10.0, 20.0]), ("B", [5.0, 25.0])]:
        for v in values:
            result.add(alg, "util", v)
    return result


class TestFigureResult:
    def test_add_and_metric(self):
        result = sample_result()
        assert result.metric("A", "util") == [10.0, 20.0]

    def test_dominates(self):
        result = sample_result()
        assert not result.dominates("A", "B", "util")
        assert result.dominates("A", "B", "util", slack=5.0)

    def test_mean_advantage(self):
        result = sample_result()
        assert result.mean_advantage("A", "B", "util") == pytest.approx(0.0)


class TestReporting:
    def test_metric_table_contains_values(self):
        table = format_metric_table(sample_result(), "util")
        assert "budget" in table
        assert "10.000" in table and "25.000" in table

    def test_metric_table_missing_metric(self):
        assert "no series" in format_metric_table(sample_result(), "nope")

    def test_format_figure_lists_all_metrics(self):
        result = sample_result()
        result.add("A", "quality", 0.5)
        result.add("A", "quality", 0.6)
        text = format_figure(result)
        assert "[util]" in text and "[quality]" in text
        assert "figX" in text

    def test_format_figure_notes(self):
        result = sample_result()
        result.notes = "hello world"
        assert "hello world" in format_figure(result)
