"""Tests for the Matérn kernel family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phenomena import GaussianProcessField, MaternKernel, RBFKernel
from repro.spatial import Location


def grid(nx: int, ny: int) -> list[Location]:
    return [Location(float(x), float(y)) for x in range(nx) for y in range(ny)]


class TestMaternKernel:
    @pytest.mark.parametrize("nu", [0.5, 1.5, 2.5])
    def test_diagonal_is_variance(self, nu):
        k = MaternKernel(variance=2.0, length_scale=1.5, nu=nu)
        mat = k.matrix(grid(3, 2))
        assert np.allclose(np.diag(mat), 2.0)

    @pytest.mark.parametrize("nu", [0.5, 1.5, 2.5])
    def test_decay_with_distance(self, nu):
        k = MaternKernel(nu=nu)
        near = k.matrix([Location(0, 0)], [Location(0.3, 0)])[0, 0]
        far = k.matrix([Location(0, 0)], [Location(4, 0)])[0, 0]
        assert near > far > 0.0

    def test_smoothness_ordering_near_origin(self):
        """Rougher kernels (smaller nu) decay faster at short range."""
        d = [Location(0, 0)], [Location(0.5, 0)]
        v_05 = MaternKernel(nu=0.5).matrix(*d)[0, 0]
        v_15 = MaternKernel(nu=1.5).matrix(*d)[0, 0]
        v_25 = MaternKernel(nu=2.5).matrix(*d)[0, 0]
        assert v_05 < v_15 < v_25

    def test_approaches_rbf_for_high_nu(self):
        """nu=2.5 is closer to the RBF than nu=0.5 everywhere."""
        a, b = [Location(0, 0)], [Location(1.0, 0)]
        rbf = RBFKernel().matrix(a, b)[0, 0]
        err_25 = abs(MaternKernel(nu=2.5).matrix(a, b)[0, 0] - rbf)
        err_05 = abs(MaternKernel(nu=0.5).matrix(a, b)[0, 0] - rbf)
        assert err_25 < err_05

    @pytest.mark.parametrize("nu", [0.5, 1.5, 2.5])
    def test_positive_semidefinite(self, nu):
        k = MaternKernel(variance=1.0, length_scale=1.0, nu=nu)
        eigvals = np.linalg.eigvalsh(k.matrix(grid(4, 4)))
        assert eigvals.min() > -1e-8

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MaternKernel(variance=0.0)
        with pytest.raises(ValueError):
            MaternKernel(length_scale=-1.0)
        with pytest.raises(ValueError):
            MaternKernel(nu=2.0)

    def test_usable_inside_gp_field(self):
        gp = GaussianProcessField(MaternKernel(nu=1.5), noise=0.2)
        targets = grid(4, 3)
        reduction = gp.variance_reduction([Location(1, 1)], targets)
        assert 0.0 < reduction <= gp.prior_variance(targets)

    def test_variance_reduction_monotone_with_matern(self):
        gp = GaussianProcessField(MaternKernel(nu=0.5), noise=0.2)
        targets = grid(4, 3)
        one = gp.variance_reduction([Location(1, 1)], targets)
        two = gp.variance_reduction([Location(1, 1), Location(3, 2)], targets)
        assert two >= one
