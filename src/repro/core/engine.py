"""The unified slot engine — one composable implementation of the paper's
Section 2.1 / 4.1 protocol.

Every experiment family used to own a near-identical simulation loop
(one-shot, location monitoring, region monitoring, query mix).  The
:class:`SlotEngine` factors that loop out once::

    announce -> generate queries -> allocate -> settle -> advance

and delegates everything family-specific to pluggable
:class:`QueryStream` components:

* :class:`OneShotStream` — fresh point/aggregate queries per slot;
* :class:`LocationMonitoringStream` — live continuous queries driven
  through Algorithm 2's controller;
* :class:`RegionMonitoringStream` — Algorithm 3's controller over a GP
  field.

Each stream owns its arrivals, retirement, and quality accounting; the
engine owns the clock, the announcements, the per-slot
:class:`~repro.core.valuation.ValuationKernel` (built once and shared by
every allocator consulted in the slot) and the
:class:`~repro.core.metrics.SimulationSummary`.

How the emitted queries are turned into an
:class:`~repro.core.allocation.AllocationResult` is itself pluggable:

* :class:`JointSlotAllocation` — all streams' queries go into a single
  allocator call (Algorithm 5's joint stage, or the single-family
  engines);
* :class:`SequentialBufferedAllocation` — the Section 4.7 baseline:
  stage-1 query kinds run first, their sensors are re-announced at zero
  cost (data buffering), and the remaining kinds run second.

Arbitrary mixes of streams, fleets and allocators can therefore be
declared and run — see :class:`repro.datasets.scenario.ScenarioSpec` for
the declarative layer on top.
"""

from __future__ import annotations

import abc
import time
from typing import Iterable, Protocol, Sequence

import numpy as np

from ..backend import normalize_workspace, resolve_backend, use_backend
from ..queries import (
    EventDetectionQuery,
    EventSlotQuery,
    LocationMonitoringQuery,
    PointQuery,
    Query,
    RegionMonitoringQuery,
)
from ..sensors import SensorFleet, SensorSnapshot
from .allocation import AllocationResult, Allocator
from .greedy import normalize_fused
from .metrics import SimulationSummary, SlotRecord
from .monitoring import LocationMonitoringController, RegionMonitoringController
from .sharding import ShardedKernel, normalize_sharding
from .valuation import ValuationKernel

__all__ = [
    "FLUSH_SLOT",
    "PHASES",
    "QueryStream",
    "OneShotStream",
    "LocationMonitoringStream",
    "RegionMonitoringStream",
    "EventDetectionStream",
    "SlotAllocation",
    "JointSlotAllocation",
    "SequentialBufferedAllocation",
    "SlotEngine",
    "normalize_incremental",
    "quality_of",
    "call_allocator",
    "one_shot_engine",
    "location_monitoring_engine",
    "region_monitoring_engine",
    "event_detection_engine",
    "mix_engine",
]

#: Retirement timestamp that expires every continuous query (end-of-run flush).
FLUSH_SLOT = 10**9

#: The engine's per-slot phase labels, in protocol order (profiling/replay).
PHASES = ("announce", "kernel", "allocate", "settle")


def normalize_incremental(setting) -> "bool | str":
    """Canonicalize an incremental-slot-state knob value.

    ``None``/``False`` → ``False`` (full per-slot rebuilds, the historical
    behavior); ``True``/``"auto"`` → ``"auto"`` (differential announce +
    kernel/raster/index patching, bit-identical allocations).  Anything
    else raises ``ValueError`` — the engine,
    :class:`~repro.datasets.ScenarioSpec` and the CLI all validate through
    here, mirroring :func:`~repro.core.sharding.normalize_sharding`.
    """
    if setting is None or setting is False:
        return False
    if setting is True or setting == "auto":
        return "auto"
    raise ValueError(f"unknown incremental setting {setting!r}")


def quality_of(query: Query, value: float) -> float:
    """Achieved value over the query's reference maximum."""
    if query.max_value <= 0:
        return 0.0
    return value / query.max_value


def call_allocator(
    allocator: Allocator,
    queries: Sequence[Query],
    sensors: Sequence[SensorSnapshot],
    kernel: ValuationKernel | None,
) -> AllocationResult:
    """Invoke ``allocator``, forwarding the slot kernel when supported."""
    if kernel is not None and getattr(allocator, "supports_kernel", False):
        return allocator.allocate(queries, sensors, kernel=kernel)
    return allocator.allocate(queries, sensors)


# ----------------------------------------------------------------------
# streams
# ----------------------------------------------------------------------
class QueryStream(abc.ABC):
    """One source of queries inside a slot engine.

    A stream owns the full lifecycle of its queries: per-slot arrivals
    (and retirement of expired continuous queries), the queries it emits
    into the slot's allocation, and folding the allocation outcome back
    into its own accounting.

    Class attributes tune how a stream composes with others:

    ``allocation_rank``
        Sort key for concatenating emissions into the joint allocation
        (aggregates first reproduces Algorithm 5's input order).
    ``settle_rank``
        Sort key for settlement; monitoring streams settle first so their
        payment adjustments land before one-shot streams read per-query
        utilities from the ledger.
    """

    kind: str = "stream"
    allocation_rank: int = 0
    settle_rank: int = 0

    @abc.abstractmethod
    def begin_slot(
        self, t: int, rng: np.random.Generator, summary: SimulationSummary
    ) -> None:
        """Retire expired queries and draw this slot's arrivals."""

    @abc.abstractmethod
    def emit(self, t: int, sensors: Sequence[SensorSnapshot]) -> list[Query]:
        """The queries this stream submits to the slot's allocation."""

    @abc.abstractmethod
    def settle(
        self,
        t: int,
        result: AllocationResult,
        record: SlotRecord,
        summary: SimulationSummary,
    ) -> None:
        """Fold the allocation outcome into stream + summary accounting."""

    def flush(self, summary: SimulationSummary) -> None:
        """End-of-run: retire everything still live."""


class OneShotStream(QueryStream):
    """Fresh one-shot queries per slot (point or aggregate workloads).

    Args:
        workload: any ``generate(t, rng) -> list[Query]`` source.
        kind: label used by allocation strategies to stage streams.
        count_issued / count_answered: whether this stream's queries count
            towards the slot's issued/answered totals (the paper's mix
            figure counts only user point queries).
        record_slot_qualities: additionally append per-slot quality samples
            to the :class:`SlotRecord` (the single-family engines do).
        quality_label: summary label for quality samples; defaults to each
            query's ``query_type.value``.
    """

    def __init__(
        self,
        workload,
        kind: str = "one_shot",
        allocation_rank: int = 0,
        count_issued: bool = True,
        count_answered: bool = True,
        record_slot_qualities: bool = True,
        quality_label: str | None = None,
    ) -> None:
        self.workload = workload
        self.kind = kind
        self.allocation_rank = allocation_rank
        self.count_issued = count_issued
        self.count_answered = count_answered
        self.record_slot_qualities = record_slot_qualities
        self.quality_label = quality_label
        self.current: list[Query] = []

    def begin_slot(self, t, rng, summary):
        self.current = list(self.workload.generate(t, rng))

    def emit(self, t, sensors):
        return list(self.current)

    def settle(self, t, result, record, summary):
        if self.count_issued:
            record.issued += len(self.current)
        value = 0.0
        for query in self.current:
            if result.is_answered(query.query_id):
                if self.count_answered:
                    record.answered += 1
                achieved = result.values[query.query_id]
                value += achieved
                quality = quality_of(query, achieved)
                if self.record_slot_qualities:
                    record.qualities.append(quality)
                label = self.quality_label or query.query_type.value
                summary.add_quality(label, quality)
            summary.record_query_outcome(result.query_utility(query.query_id))
        record.value += value


class LocationMonitoringStream(QueryStream):
    """Live location-monitoring queries driven by Algorithm 2's controller."""

    kind = "location_monitoring"
    allocation_rank = 2
    settle_rank = -2

    def __init__(
        self,
        workload,
        controller: LocationMonitoringController | None = None,
        allocation_rank: int | None = None,
        count_issued: bool = True,
        count_answered: bool = True,
        samples_key: str | None = "samples",
        live_key: str | None = "live",
    ) -> None:
        self.workload = workload
        self.controller = (
            controller if controller is not None else LocationMonitoringController()
        )
        if allocation_rank is not None:
            self.allocation_rank = allocation_rank
        self.count_issued = count_issued
        self.count_answered = count_answered
        self.samples_key = samples_key
        self.live_key = live_key
        self.live: list[LocationMonitoringQuery] = []
        self.children: list[PointQuery] = []

    def begin_slot(self, t, rng, summary):
        self._retire(t, summary)
        self.live.extend(self.workload.generate(t, rng, live_count=len(self.live)))

    def emit(self, t, sensors):
        self.children = self.controller.create_point_queries(self.live, t)
        return list(self.children)

    def settle(self, t, result, record, summary):
        samples, value_delta = self.controller.apply_results(
            self.live, self.children, result, t
        )
        record.value += value_delta
        if self.count_issued:
            record.issued += len(self.children)
        if self.count_answered:
            record.answered += sum(
                1 for child in self.children if result.is_answered(child.query_id)
            )
        if self.samples_key is not None:
            record.extras[self.samples_key] = float(samples)
        if self.live_key is not None:
            record.extras[self.live_key] = float(len(self.live))

    def flush(self, summary):
        self._retire(FLUSH_SLOT, summary)

    def _retire(self, t: int, summary: SimulationSummary) -> None:
        remaining: list[LocationMonitoringQuery] = []
        for query in self.live:
            if query.expired(t):
                summary.add_quality("location_monitoring", query.quality_of_results())
                summary.record_query_outcome(query.achieved_value() - query.spent)
            else:
                remaining.append(query)
        self.live = remaining


class RegionMonitoringStream(QueryStream):
    """Live region-monitoring queries driven by Algorithm 3's controller."""

    kind = "region_monitoring"
    allocation_rank = 3
    settle_rank = -1

    def __init__(
        self,
        workload,
        controller: RegionMonitoringController | None = None,
        allocation_rank: int | None = None,
        count_issued: bool = True,
        count_answered: bool = True,
        live_key: str | None = "live",
    ) -> None:
        self.workload = workload
        self.controller = (
            controller if controller is not None else RegionMonitoringController()
        )
        if allocation_rank is not None:
            self.allocation_rank = allocation_rank
        self.count_issued = count_issued
        self.count_answered = count_answered
        self.live_key = live_key
        self.live: list[RegionMonitoringQuery] = []
        self.children: list[PointQuery] = []
        self.plans: dict = {}

    def begin_slot(self, t, rng, summary):
        self._retire(t, summary)
        self.live.extend(self.workload.generate(t, rng))

    def emit(self, t, sensors):
        self.children, self.plans = self.controller.create_point_queries(
            self.live, sensors, t
        )
        return list(self.children)

    def settle(self, t, result, record, summary):
        outcomes = self.controller.apply_results(
            self.live, self.children, self.plans, result, t
        )
        self.controller.adjust_payments(result, outcomes)
        record.value += sum(o.achieved_value for o in outcomes)
        if self.count_issued:
            record.issued += len(self.children)
        if self.count_answered:
            record.answered += sum(
                1 for child in self.children if result.is_answered(child.query_id)
            )
        if self.live_key is not None:
            record.extras[self.live_key] = float(len(self.live))

    def flush(self, summary):
        self._retire(FLUSH_SLOT, summary)

    def _retire(self, t: int, summary: SimulationSummary) -> None:
        remaining: list[RegionMonitoringQuery] = []
        for query in self.live:
            if query.expired(t):
                summary.add_quality("region_monitoring", query.quality_of_results())
                summary.record_query_outcome(query.total_value() - query.spent)
            else:
                remaining.append(query)
        self.live = remaining


class EventDetectionStream(QueryStream):
    """Live event-detection queries (Section 2.3's deferred extension).

    Each slot, every active :class:`~repro.queries.EventDetectionQuery`
    derives a redundant-sampling :class:`~repro.queries.EventSlotQuery`
    whose valuation pays for additional witnesses only until the requested
    confidence is reached; the allocation outcome is folded back as
    (value, quality) readings.

    Args:
        workload: an ``EventDetectionWorkload``-like arrival source.
        phenomenon: optional ``(t, Location) -> float`` ground-truth signal
            the witnesses report; without one, readings carry value 0.0 —
            no event can fire, but the acquisition economics (confidence,
            payments, utility) are unaffected, which is all the allocation
            experiments measure.
        min_budget: slot queries cheaper than this are not emitted.
    """

    kind = "event"
    allocation_rank = 4
    settle_rank = 0

    def __init__(
        self,
        workload,
        phenomenon=None,
        allocation_rank: int | None = None,
        count_issued: bool = True,
        count_answered: bool = True,
        live_key: str | None = "live",
        detections_key: str | None = "detections",
        min_budget: float = 1e-6,
    ) -> None:
        self.workload = workload
        self.phenomenon = phenomenon
        if allocation_rank is not None:
            self.allocation_rank = allocation_rank
        self.count_issued = count_issued
        self.count_answered = count_answered
        self.live_key = live_key
        self.detections_key = detections_key
        self.min_budget = min_budget
        self.live: list[EventDetectionQuery] = []
        self.children: list[EventSlotQuery] = []

    def begin_slot(self, t, rng, summary):
        self._retire(t, summary)
        self.live.extend(self.workload.generate(t, rng))

    def emit(self, t, sensors):
        self.children = []
        for query in self.live:
            if not query.active(t):
                continue
            child = query.create_slot_query(t)
            if child.budget > self.min_budget:
                self.children.append(child)
        return list(self.children)

    def settle(self, t, result, record, summary):
        by_id = {q.query_id: q for q in self.live}
        fired = 0
        value = 0.0
        for child in self.children:
            query = by_id.get(child.parent_id)
            if query is None:
                continue
            snapshots = [
                result.selected[sid]
                for sid in result.assignments.get(child.query_id, ())
            ]
            readings = [
                (
                    self.phenomenon(t, s.location) if self.phenomenon else 0.0,
                    child.quality(s),
                )
                for s in snapshots
            ]
            achieved = result.values.get(child.query_id, 0.0)
            if query.record_slot(
                t, readings, achieved, result.query_payment(child.query_id)
            ):
                fired += 1
            value += achieved
            if self.count_answered and result.is_answered(child.query_id):
                record.answered += 1
        record.value += value
        if self.count_issued:
            record.issued += len(self.children)
        if self.live_key is not None:
            record.extras[self.live_key] = float(len(self.live))
        if self.detections_key is not None:
            record.extras[self.detections_key] = float(fired)

    def flush(self, summary):
        self._retire(FLUSH_SLOT, summary)

    def _retire(self, t: int, summary: SimulationSummary) -> None:
        remaining: list[EventDetectionQuery] = []
        for query in self.live:
            if query.expired(t):
                summary.add_quality("event", query.quality_of_results())
                summary.record_query_outcome(query.achieved_value() - query.spent)
                # Figure-style detection accounting: whether the event
                # fired over the lifetime, and (for fired queries) the
                # latency in slots from issue to the first detection.
                summary.add_quality(
                    "event_detected", 1.0 if query.detections else 0.0
                )
                if query.detections:
                    summary.add_quality(
                        "event_detection_latency",
                        float(query.detections[0][0] - query.t1),
                    )
            else:
                remaining.append(query)
        self.live = remaining


# ----------------------------------------------------------------------
# slot allocation strategies
# ----------------------------------------------------------------------
class SlotAllocation(Protocol):
    """Turns the streams' emitted queries into one settled slot result."""

    def run(
        self,
        t: int,
        streams: Sequence[QueryStream],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None,
    ) -> AllocationResult: ...


def _emissions_in_rank_order(
    pairs: Iterable[tuple[QueryStream, list[Query]]]
) -> list[Query]:
    ordered = sorted(pairs, key=lambda pair: pair[0].allocation_rank)
    return [query for _, queries in ordered for query in queries]


class JointSlotAllocation:
    """All streams' queries in one allocator call (Algorithm 5 stage 2)."""

    def __init__(self, allocator: Allocator) -> None:
        self.allocator = allocator

    def run(self, t, streams, sensors, kernel):
        emissions = [(stream, stream.emit(t, sensors)) for stream in streams]
        queries = _emissions_in_rank_order(emissions)
        return call_allocator(self.allocator, queries, sensors, kernel)


class SequentialBufferedAllocation:
    """Sequential per-kind execution with data buffering (Section 4.7).

    Stage-1 streams (by ``kind``) allocate first; their selected sensors
    are re-announced at zero cost for the stage-2 streams ("the cost of
    selected sensors is set to zero for subsequent queries").  The merged
    ledger restores the original cost snapshots so each sensor still shows
    exactly one cost recovery.
    """

    def __init__(
        self,
        stage1_allocator: Allocator,
        stage2_allocator: Allocator,
        stage1_kinds: Sequence[str] = ("aggregate",),
    ) -> None:
        self.stage1_allocator = stage1_allocator
        self.stage2_allocator = stage2_allocator
        self.stage1_kinds = frozenset(stage1_kinds)

    def run(self, t, streams, sensors, kernel):
        stage1_streams = [s for s in streams if s.kind in self.stage1_kinds]
        stage2_streams = [s for s in streams if s.kind not in self.stage1_kinds]

        stage1_queries = _emissions_in_rank_order(
            (stream, stream.emit(t, sensors)) for stream in stage1_streams
        )
        stage1 = call_allocator(self.stage1_allocator, stage1_queries, sensors, kernel)
        result = AllocationResult()
        result.merge(stage1)

        # Stage-1 sensors are buffered: re-announce them at zero cost.  The
        # kernel stays valid — it never depends on announced prices.  A
        # batch announcement reprices through a zero-copy cost view (only
        # the selected rows change; identity arrays and token are shared),
        # so the slot path stays free of per-sensor loops; snapshot lists
        # keep the historical per-element rebuild.
        if getattr(sensors, "with_costs", None) is not None and stage1.selected:
            zero_costs = sensors.costs.copy()
            rows = np.searchsorted(
                sensors.ids,
                np.fromiter(stage1.selected, np.int64, len(stage1.selected)),
            )
            zero_costs[rows] = 0.0
            stage2_sensors = sensors.with_costs(zero_costs)
        elif getattr(sensors, "with_costs", None) is not None:
            stage2_sensors = sensors
        else:
            zeroed = {
                sid: SensorSnapshot(
                    sensor_id=snap.sensor_id,
                    location=snap.location,
                    cost=0.0,
                    inaccuracy=snap.inaccuracy,
                    trust=snap.trust,
                )
                for sid, snap in stage1.selected.items()
            }
            stage2_sensors = [zeroed.get(s.sensor_id, s) for s in sensors]

        stage2_queries = _emissions_in_rank_order(
            (stream, stream.emit(t, stage2_sensors)) for stream in stage2_streams
        )
        stage2 = call_allocator(
            self.stage2_allocator, stage2_queries, stage2_sensors, kernel
        )

        # Merge stage 2, restoring original cost snapshots so the combined
        # ledger still shows each sensor recovering its true cost (paid
        # once, in stage 1).
        restored = AllocationResult(
            selected={
                sid: (stage1.selected[sid] if sid in stage1.selected else snap)
                for sid, snap in stage2.selected.items()
            },
            assignments=stage2.assignments,
            values=stage2.values,
            payments=stage2.payments,
        )
        result.merge(restored)
        return result


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class SlotEngine:
    """Composable slot-synchronous simulation (Section 2.1 / 4.1 protocol).

    Args:
        fleet: the sensor fleet (owns mobility, costs, lifetime).
        streams: the query sources, in the order their workloads should
            consume the shared ``rng`` each slot.
        allocation: a :class:`SlotAllocation` strategy, or a plain
            :class:`Allocator` (wrapped in :class:`JointSlotAllocation`).
        rng: drives the workloads only — mobility randomness lives in the
            fleet, so two engines sharing a replayed trace and the same
            workload seed compare algorithms on identical inputs.
        verify_each_slot: run the settlement invariants on every slot's
            merged result (Algorithm 5 does; cheap, but off by default for
            the single-family engines which verify inside the allocator).
        use_kernel: build the shared per-slot :class:`ValuationKernel`
            (disable only to benchmark the unshared path).
        sharding: spatially shard the slot kernel
            (:class:`~repro.core.sharding.ShardedKernel`): ``None``/``False``
            keeps the dense kernel, ``True``/``"auto"`` shards with the
            density heuristic cell size, a number fixes the shard cell
            side.  Sharded allocations are bit-identical to dense ones;
            work becomes proportional to sensors-near-queries instead of
            fleet size.
        fused: override the fused gain-block pipeline of every allocator
            this engine drives (see
            :func:`~repro.core.greedy.normalize_fused`): ``None`` (default)
            leaves each allocator's own setting untouched, ``True``/
            ``"auto"`` enables type-blocked fused refreshes, ``False``
            forces the per-row batch path.  Fused allocations are
            bit-identical either way; the knob exists for benchmarking.
        incremental: maintain slot state differentially
            (:func:`normalize_incremental`): ``None``/``False`` rebuilds
            announcements, kernels and rasters from scratch each slot;
            ``True``/``"auto"`` uses the fleet's
            :meth:`~repro.sensors.SensorFleet.announcements_with_delta`
            and the kernels' ``ensure_delta`` so per-slot work is
            proportional to churn (moved/exhausted/repriced sensors), not
            fleet size.  Allocations and payments are bit-identical either
            way — the replay harness (``repro replay``) asserts it.
        backend: array backend every slot step runs under
            (:func:`~repro.backend.resolve_backend`): ``None``/``"numpy"``
            is plain numpy (bit-identical by construction),
            ``"instrumented"`` meters per-phase allocations (see
            :attr:`last_allocs`), ``"cupy"``/``"jax"`` are the
            import-guarded GPU seams.  The engine wraps each :meth:`step`
            in ``use_backend``, so workspaces and seam-routed code follow.
        workspace: override the slot-workspace knob of every allocator
            this engine drives (:func:`~repro.backend.normalize_workspace`):
            ``None`` (default) leaves each allocator's own setting
            untouched, ``True``/``"auto"`` reuses preallocated arenas
            across rounds and warm slots, ``False`` forces pass-through
            (fresh) acquisition.  Allocations and payments are
            bit-identical either way.

    Each :meth:`step` also records its phase wall-times in
    :attr:`last_timings` (``{phase: seconds}`` over :data:`PHASES`) and the
    announce delta in :attr:`last_delta`; setting :attr:`profile` to True
    additionally copies the timings into the slot record's extras as
    ``t_<phase>`` (the ``repro scenario --profile`` path).  Under an
    allocation-metering backend, :attr:`last_allocs` holds
    ``{phase: (allocations, bytes)}`` for the step, and profiling copies
    them into the extras as ``alloc_<phase>_count`` / ``alloc_<phase>_bytes``.
    """

    def __init__(
        self,
        fleet: SensorFleet,
        streams: Sequence[QueryStream],
        allocation: SlotAllocation | Allocator,
        rng: np.random.Generator,
        *,
        verify_each_slot: bool = False,
        use_kernel: bool = True,
        sharding: float | bool | str | None = None,
        fused: bool | str | None = None,
        incremental: bool | str | None = None,
        backend=None,
        workspace: bool | str | None = None,
    ) -> None:
        if not streams:
            raise ValueError("SlotEngine needs at least one query stream")
        self.fleet = fleet
        self.streams = list(streams)
        if hasattr(allocation, "run"):
            self.allocation: SlotAllocation = allocation  # type: ignore[assignment]
        else:
            self.allocation = JointSlotAllocation(allocation)  # type: ignore[arg-type]
        self.rng = rng
        self.verify_each_slot = verify_each_slot
        self.use_kernel = use_kernel
        mode = normalize_sharding(sharding)
        if mode is not None and not use_kernel:
            raise ValueError(
                "sharding needs the slot kernel; drop use_kernel=False"
            )
        self.sharding = mode is not None
        self.shard_cell_size: float | None = (
            mode if isinstance(mode, float) else None
        )
        self.fused = None if fused is None else normalize_fused(fused)
        if self.fused is not None:
            for attr in ("allocator", "stage1_allocator", "stage2_allocator"):
                allocator = getattr(self.allocation, attr, None)
                if allocator is not None and hasattr(allocator, "fused"):
                    allocator.fused = self.fused
        self.incremental = normalize_incremental(incremental)
        self.backend = resolve_backend(backend)
        self.workspace = None if workspace is None else normalize_workspace(workspace)
        if self.workspace is not None:
            for attr in ("allocator", "stage1_allocator", "stage2_allocator"):
                allocator = getattr(self.allocation, attr, None)
                if allocator is not None and hasattr(allocator, "workspace"):
                    allocator.workspace = self.workspace
        self.profile = False
        self.last_timings: dict[str, float] = {}
        self.last_allocs: dict[str, tuple[int, int]] = {}
        self.last_delta = None
        self.last_result: AllocationResult | None = None
        self.last_record: SlotRecord | None = None
        self._kernel: ValuationKernel | None = None

    def stream(self, kind: str) -> QueryStream:
        """The first stream of the given kind (raises ``KeyError`` if none)."""
        for stream in self.streams:
            if stream.kind == kind:
                return stream
        raise KeyError(f"no stream of kind {kind!r}")

    def run(self, n_slots: int, *, keep_samples: bool = False) -> SimulationSummary:
        """Run ``n_slots`` slots into a fresh summary.

        ``keep_samples`` opts into raw quality-sample retention (see
        :class:`~repro.core.metrics.SimulationSummary`); the default keeps
        only the streaming aggregates, so quality accounting no longer
        grows with the number of answered queries (the dominant per-slot
        term).  The summary still appends one :class:`SlotRecord` per slot.
        """
        summary = SimulationSummary(keep_samples=keep_samples)
        for _ in range(n_slots):
            self.step(summary)
        for stream in self.streams:
            stream.flush(summary)
        return summary

    def step(self, summary: SimulationSummary) -> SlotRecord:
        """Run one slot of the protocol; appends and returns its record."""
        with use_backend(self.backend) as backend:
            return self._step(summary, backend)

    def _step(self, summary: SimulationSummary, backend) -> SlotRecord:
        # Allocation metering is a backend capability: instrumented
        # backends expose set_phase/snapshot, plain ones meter nothing.
        set_phase = getattr(backend, "set_phase", None)
        take_snapshot = getattr(backend, "snapshot", None)
        metered = set_phase is not None and take_snapshot is not None
        before = take_snapshot() if metered else None
        t = self.fleet.clock
        for stream in self.streams:
            stream.begin_slot(t, self.rng, summary)
        if metered:
            set_phase("announce")
        # The fleet announces as an AnnouncementBatch: stacked arrays plus
        # a lazy Sequence[SensorSnapshot] view, so the batch threads
        # through streams/allocators unchanged while the kernel build
        # below adopts the arrays zero-copy (no per-sensor loop).  The
        # incremental path splices the batch from the previous slot's and
        # hands the SlotDelta to the kernels so rasters and shard indexes
        # patch instead of rebuilding — bit-identical allocations either
        # way.
        t0 = time.perf_counter()
        if self.incremental:
            sensors, delta = self.fleet.announcements_with_delta()
        else:
            sensors, delta = self.fleet.announcements(), None
        self.last_delta = delta
        t1 = time.perf_counter()
        if metered:
            set_phase("kernel")
        # Consecutive slots with unchanged announcements (stationary fleets,
        # replayed traces with sleeping sensors) reuse the previous slot's
        # kernel: the batch's version stamp makes the check O(1) either
        # way, and value matrices never depend on the announced costs that
        # may still move.  A reused *sharded* kernel also keeps its warm
        # shard structure.
        if not self.use_kernel:
            kernel = None
        elif self.sharding:
            if self.incremental:
                kernel = ShardedKernel.ensure_delta(
                    self._kernel, sensors, delta, cell_size=self.shard_cell_size
                )
            else:
                kernel = ShardedKernel.ensure(
                    self._kernel, sensors, cell_size=self.shard_cell_size
                )
        elif self.incremental:
            kernel = ValuationKernel.ensure_delta(self._kernel, sensors, delta)
        else:
            kernel = ValuationKernel.ensure(self._kernel, sensors)
        self._kernel = kernel
        t2 = time.perf_counter()
        if metered:
            set_phase("allocate")
        result = self.allocation.run(t, self.streams, sensors, kernel)
        self.last_result = result
        t3 = time.perf_counter()
        if metered:
            set_phase("settle")
        record = SlotRecord(slot=t, cost=result.total_cost)
        for stream in sorted(self.streams, key=lambda s: s.settle_rank):
            stream.settle(t, result, record, summary)
        if self.verify_each_slot:
            result.verify()
        summary.slots.append(record)
        self.fleet.record_measurements(list(result.selected))
        self.fleet.advance()
        t4 = time.perf_counter()
        self.last_timings = {
            "announce": t1 - t0,
            "kernel": t2 - t1,
            "allocate": t3 - t2,
            "settle": t4 - t3,
        }
        if metered:
            set_phase(None)
            after = take_snapshot()
            self.last_allocs = {
                phase: (
                    after.get(phase, (0, 0))[0] - before.get(phase, (0, 0))[0],
                    after.get(phase, (0, 0))[1] - before.get(phase, (0, 0))[1],
                )
                for phase in PHASES
            }
        if self.profile:
            for phase, seconds in self.last_timings.items():
                record.extras[f"t_{phase}"] = seconds
            if metered:
                for phase, (count, nbytes) in self.last_allocs.items():
                    record.extras[f"alloc_{phase}_count"] = float(count)
                    record.extras[f"alloc_{phase}_bytes"] = float(nbytes)
        self.last_record = record
        return record


# ----------------------------------------------------------------------
# engine factories for the four canonical experiment families
# ----------------------------------------------------------------------
def one_shot_engine(
    fleet, workload, allocator, rng, *,
    sharding=None, fused=None, incremental=None, backend=None, workspace=None
) -> SlotEngine:
    """Figures 2-7: a stream of one-shot (point or aggregate) queries."""
    return SlotEngine(
        fleet,
        [OneShotStream(workload, kind="one_shot", record_slot_qualities=True)],
        JointSlotAllocation(allocator),
        rng,
        sharding=sharding,
        fused=fused,
        incremental=incremental,
        backend=backend,
        workspace=workspace,
    )


def location_monitoring_engine(
    fleet, workload, point_allocator, rng, controller=None, *,
    sharding=None, fused=None, incremental=None, backend=None, workspace=None
) -> SlotEngine:
    """Figure 8: continuous location-monitoring queries."""
    return SlotEngine(
        fleet,
        [LocationMonitoringStream(workload, controller=controller)],
        JointSlotAllocation(point_allocator),
        rng,
        sharding=sharding,
        fused=fused,
        incremental=incremental,
        backend=backend,
        workspace=workspace,
    )


def region_monitoring_engine(
    fleet, workload, point_allocator, rng, controller=None, *,
    sharding=None, fused=None, incremental=None, backend=None, workspace=None
) -> SlotEngine:
    """Figure 9: continuous region-monitoring queries over a GP field."""
    return SlotEngine(
        fleet,
        [RegionMonitoringStream(workload, controller=controller)],
        JointSlotAllocation(point_allocator),
        rng,
        sharding=sharding,
        fused=fused,
        incremental=incremental,
        backend=backend,
        workspace=workspace,
    )


def event_detection_engine(
    fleet, workload, point_allocator, rng, *,
    phenomenon=None, sharding=None, fused=None, incremental=None,
    backend=None, workspace=None
) -> SlotEngine:
    """Event-detection extension: redundant-sampling slot queries."""
    return SlotEngine(
        fleet,
        [EventDetectionStream(workload, phenomenon=phenomenon)],
        JointSlotAllocation(point_allocator),
        rng,
        sharding=sharding,
        fused=fused,
        incremental=incremental,
        backend=backend,
        workspace=workspace,
    )


def mix_engine(
    fleet,
    point_workload,
    aggregate_workload,
    location_workload,
    rng,
    *,
    region_workload=None,
    joint: Allocator | None = None,
    lm_controller: LocationMonitoringController | None = None,
    rm_controller: RegionMonitoringController | None = None,
    sequential: bool = False,
    stage1_allocator: Allocator | None = None,
    stage2_allocator: Allocator | None = None,
    sharding=None,
    fused=None,
    incremental=None,
    backend=None,
    workspace=None,
) -> SlotEngine:
    """Figure 10: point + aggregate + monitoring streams in one slot cycle.

    ``sequential=False`` reproduces Algorithm 5 (joint allocation over all
    emitted queries, default greedy); ``sequential=True`` the Section 4.7
    baseline (aggregates buffered first, then everything else at
    discounted sensor costs).
    """
    from .baselines import BaselineAllocator
    from .greedy import GreedyAllocator

    streams: list[QueryStream] = [
        OneShotStream(
            point_workload,
            kind="point",
            allocation_rank=1,
            count_issued=True,
            count_answered=True,
            record_slot_qualities=False,
            quality_label="point",
        ),
        OneShotStream(
            aggregate_workload,
            kind="aggregate",
            allocation_rank=0,
            count_issued=False,
            count_answered=False,
            record_slot_qualities=False,
            quality_label="aggregate",
        ),
        LocationMonitoringStream(
            location_workload,
            controller=lm_controller,
            count_issued=False,
            count_answered=False,
            samples_key="lm_samples",
            live_key=None,
        ),
    ]
    if region_workload is not None:
        streams.append(
            RegionMonitoringStream(
                region_workload,
                controller=rm_controller,
                count_issued=False,
                count_answered=False,
                live_key=None,
            )
        )
    if sequential:
        allocation: SlotAllocation = SequentialBufferedAllocation(
            stage1_allocator if stage1_allocator is not None else BaselineAllocator(),
            stage2_allocator if stage2_allocator is not None else BaselineAllocator(),
        )
    else:
        allocation = JointSlotAllocation(joint if joint is not None else GreedyAllocator())
    return SlotEngine(
        fleet,
        streams,
        allocation,
        rng,
        verify_each_slot=True,
        sharding=sharding,
        fused=fused,
        incremental=incremental,
        backend=backend,
        workspace=workspace,
    )
