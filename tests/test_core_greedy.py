"""Tests for Algorithm 1 (greedy multi-query selection) and Theorem 1."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_point_query, make_snapshot, random_instance
from repro.core import GreedyAllocator
from repro.queries import SpatialAggregateQuery
from repro.spatial import Region


def random_mixed_instance(seed: int):
    """Point + aggregate queries over a shared sensor pool."""
    rng = np.random.default_rng(seed)
    region = Region.from_origin(20, 20)
    sensors = [
        make_snapshot(
            i,
            x=float(rng.uniform(0, 20)),
            y=float(rng.uniform(0, 20)),
            cost=float(rng.uniform(2, 12)),
            inaccuracy=float(rng.uniform(0, 0.2)),
            trust=float(rng.uniform(0.5, 1.0)),
        )
        for i in range(10)
    ]
    queries = [
        make_point_query(
            x=float(rng.uniform(0, 20)),
            y=float(rng.uniform(0, 20)),
            budget=float(rng.uniform(5, 25)),
            dmax=6.0,
        )
        for _ in range(6)
    ]
    for _ in range(3):
        sub = Region.random_subregion(region, rng, min_side=4, max_side=10)
        queries.append(
            SpatialAggregateQuery(
                sub, budget=float(rng.uniform(20, 60)), sensing_range=6.0,
                coverage_radius=3.0,
            )
        )
    return queries, sensors


class TestTheorem1:
    @pytest.mark.parametrize("seed", range(10))
    def test_property1_telescoping(self, seed):
        """Recorded value per query equals v_q of its assigned set."""
        queries, sensors = random_mixed_instance(seed)
        result = GreedyAllocator().allocate(queries, sensors)
        by_id = {q.query_id: q for q in queries}
        for qid, sensor_ids in result.assignments.items():
            snaps = [result.selected[s] for s in sensor_ids]
            assert result.values[qid] == pytest.approx(
                by_id[qid].value(snaps), rel=1e-6, abs=1e-9
            )

    @pytest.mark.parametrize("seed", range(10))
    def test_property2_positive_total_utility(self, seed):
        queries, sensors = random_mixed_instance(seed)
        result = GreedyAllocator().allocate(queries, sensors)
        if result.selected:
            assert result.total_utility > 0.0

    @pytest.mark.parametrize("seed", range(10))
    def test_property3_individual_utility_nonnegative(self, seed):
        queries, sensors = random_mixed_instance(seed)
        result = GreedyAllocator().allocate(queries, sensors)
        for qid in result.values:
            assert result.query_utility(qid) >= -1e-9

    @pytest.mark.parametrize("seed", range(10))
    def test_cost_recovery(self, seed):
        queries, sensors = random_mixed_instance(seed)
        result = GreedyAllocator().allocate(queries, sensors)
        for sid, snap in result.selected.items():
            assert result.sensor_income(sid) == pytest.approx(snap.cost, abs=1e-9)


class TestGreedyBehaviour:
    def test_selects_shared_sensor_unaffordable_individually(self):
        queries = [
            make_point_query(x=0, y=0, budget=7.0, query_id="a", theta_min=0.0),
            make_point_query(x=0, y=0, budget=7.0, query_id="b", theta_min=0.0),
        ]
        sensor = make_snapshot(0, x=0, y=0, cost=10.0)
        result = GreedyAllocator().allocate(queries, [sensor])
        assert result.answered_count() == 2
        assert result.total_utility == pytest.approx(4.0)

    def test_stops_when_no_positive_net(self):
        queries = [make_point_query(x=0, y=0, budget=5.0, theta_min=0.0)]
        sensor = make_snapshot(0, x=0, y=0, cost=100.0)
        result = GreedyAllocator().allocate(queries, [sensor])
        assert not result.selected

    def test_picks_best_net_sensor_first(self):
        query = make_point_query(x=0, y=0, budget=20.0, theta_min=0.0)
        cheap_far = make_snapshot(0, x=4, y=0, cost=1.0)  # value 4, net 3
        pricey_near = make_snapshot(1, x=0, y=0, cost=5.0)  # value 20, net 15
        result = GreedyAllocator().allocate([query], [cheap_far, pricey_near])
        assert result.assignments[query.query_id] == (1,)

    def test_empty_inputs(self):
        assert GreedyAllocator().allocate([], []).total_utility == 0.0

    def test_matches_bruteforce_on_point_queries_reasonably(self):
        """Greedy has no worst-case guarantee (Section 3.2) but should land
        within a reasonable factor on benign random instances."""
        from repro.core import exhaustive_point_search

        for seed in range(8):
            queries, sensors = random_instance(seed, n_sensors=7, n_queries=9)
            greedy = GreedyAllocator().allocate(queries, sensors)
            _, best = exhaustive_point_search(queries, sensors)
            assert greedy.total_utility >= 0.5 * best - 1e-9

    def test_min_gain_validation(self):
        with pytest.raises(ValueError):
            GreedyAllocator(min_gain=-1.0)

    def test_deterministic(self):
        queries, sensors = random_mixed_instance(4)
        a = GreedyAllocator().allocate(queries, sensors)
        b = GreedyAllocator().allocate(queries, sensors)
        assert a.assignments == b.assignments

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_invariants_hold_on_fuzzed_instances(self, seed):
        queries, sensors = random_mixed_instance(seed)
        GreedyAllocator().allocate(queries, sensors).verify()
