"""Tests for Algorithm 4 (sampling-point selection) and eq. 18 weighting."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_snapshot
from repro.core import paper_weight_function, plan_sampling
from repro.phenomena import GaussianProcessField, RBFKernel
from repro.queries import RegionMonitoringQuery
from repro.spatial import Region

GP = GaussianProcessField(RBFKernel(1.0, 2.0), noise=0.2)


def rm_query(t1=0, duration=10, budget=60.0) -> RegionMonitoringQuery:
    return RegionMonitoringQuery(Region(0, 0, 10, 8), t1, t1 + duration - 1, budget, GP)


def region_snapshots(n=6, seed=0, cost=10.0):
    rng = np.random.default_rng(seed)
    return [
        make_snapshot(i, x=float(rng.uniform(0, 10)), y=float(rng.uniform(0, 8)), cost=cost)
        for i in range(n)
    ]


class TestWeightFunction:
    def test_eq18_values(self):
        assert paper_weight_function(0) == 1.0
        assert paper_weight_function(1) == 1.0
        assert paper_weight_function(2) == pytest.approx(0.9)
        assert paper_weight_function(9) == pytest.approx(0.2)
        assert paper_weight_function(10) == pytest.approx(0.1)
        assert paper_weight_function(50) == pytest.approx(0.1)

    def test_monotone_decreasing(self):
        values = [paper_weight_function(k) for k in range(15)]
        assert values == sorted(values, reverse=True)

    def test_in_unit_interval(self):
        assert all(0.0 < paper_weight_function(k) <= 1.0 for k in range(30))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            paper_weight_function(-1)


class TestPlanSampling:
    def test_empty_sensors(self):
        plan = plan_sampling(rm_query(), [], t_now=0)
        assert plan.is_empty
        assert plan.expected_cost == 0.0

    def test_zero_budget_blocks(self):
        query = rm_query(budget=0.0)
        plan = plan_sampling(query, region_snapshots(), t_now=0)
        assert plan.is_empty

    def test_inactive_slot_rejected(self):
        with pytest.raises(ValueError):
            plan_sampling(rm_query(t1=5), region_snapshots(), t_now=0)

    def test_budget_gates_weighted_spending(self):
        query = rm_query(budget=25.0)
        snaps = region_snapshots(n=8)
        plan = plan_sampling(query, snaps, t_now=0)
        # While C < B: at most one addition may overshoot, so total planned
        # weighted cost < B + max cost.
        total_planned = len(plan.current) + sum(len(v) for v in plan.future.values())
        assert total_planned <= int(25.0 / 10.0) + 1

    def test_current_slot_prioritized(self):
        """The time factor makes the current slot win ties: with a fresh
        query and ample budget, the current slot must receive sensors."""
        query = rm_query(budget=200.0)
        plan = plan_sampling(query, region_snapshots(), t_now=0)
        assert len(plan.current) >= 1

    def test_marginals_and_planned_value_consistent(self):
        query = rm_query(budget=100.0)
        plan = plan_sampling(query, region_snapshots(), t_now=0)
        assert plan.planned_value == pytest.approx(query.slot_value(plan.current))
        for sid, marginal in plan.marginal_values.items():
            assert marginal >= 0.0
        assert set(plan.marginal_values) == {s.sensor_id for s in plan.current}

    def test_expected_cost_uses_actual_prices(self):
        query = rm_query(budget=100.0)
        snaps = region_snapshots(cost=7.0)
        plan = plan_sampling(query, snaps, t_now=0)
        assert plan.expected_cost == pytest.approx(7.0 * len(plan.current))

    def test_weighted_costs_stretch_budget(self):
        query_full = rm_query(budget=30.0)
        query_cheap = rm_query(budget=30.0)
        snaps = region_snapshots(n=8)
        full = plan_sampling(query_full, snaps, t_now=0)
        discounted = plan_sampling(
            query_cheap,
            snaps,
            t_now=0,
            weighted_costs={s.sensor_id: s.cost * 0.1 for s in snaps},
        )
        full_total = len(full.current) + sum(len(v) for v in full.future.values())
        cheap_total = len(discounted.current) + sum(len(v) for v in discounted.future.values())
        assert cheap_total > full_total

    def test_last_slot_query_still_samples(self):
        """Our strictly positive time factor (documented deviation from the
        paper's (t2-t)/(t2-t1)) keeps a query alive on its final slot."""
        query = rm_query(t1=0, duration=5, budget=50.0)
        plan = plan_sampling(query, region_snapshots(), t_now=4)
        assert not plan.is_empty

    def test_future_plan_slots_within_horizon(self):
        query = rm_query(t1=0, duration=6, budget=300.0)
        plan = plan_sampling(query, region_snapshots(n=10), t_now=2)
        for t in plan.future:
            assert 2 <= t <= query.t2
