"""Slot-scoped preallocated scratch arenas: allocation-free warm rounds.

Each greedy round used to re-materialize its large temporaries from
scratch — the gain matrix, the net/cumsum buffer, the relevance block,
the dirty-row index buffers, the coverage block's scatter and ``bincount``
scratch.  :class:`SlotWorkspace` keeps one growable flat **arena** per
``(name, dtype)`` and hands out reshaped views of it, so a warm slot's
rounds acquire their scratch without touching the allocator at all:

* :meth:`empty` / :meth:`zeros` / :meth:`ones` / :meth:`full` mirror the
  numpy constructors but take an arena *name* first; the returned view is
  ``arena[:size].reshape(shape)``, filled exactly as the constructor
  would fill it (``fill(0)`` for zeros, etc. — bit-identical values);
* arenas grow **geometrically** (at least doubling) through the backend
  seam, so growth allocations are counted by an instrumented backend and
  amortize to nothing across warm slots;
* arenas persist on the workspace object, which persists on the
  allocator, so the PR-7 incremental path's warm slots reuse the previous
  slot's arenas — ``grown`` stays flat while slots tick.

**One code path.**  ``reuse=False`` puts the workspace in *pass-through*
mode: every acquire allocates fresh through the backend seam (and is
therefore counted per call by an instrumented backend).  Workspace-off
and workspace-on runs execute the very same acquire/fill/``out=``
statements — the only difference is where the buffer memory comes from —
which is how the repo's hard contract (allocations and payments
bit-identical ``==`` across the knob) is kept structural rather than
re-proved per call site.

**Aliasing discipline.**  A view is valid until its ``(name, dtype)``
arena is re-acquired; names must therefore be unique per *live* buffer.
Call-scoped consumers with several concurrent instances (the fused
coverage blocks) prefix their arena names with :meth:`tag`, whose
counters reset at :meth:`begin_call` — deterministic names per allocator
call, so warm calls re-hit the same arenas.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SlotWorkspace", "normalize_workspace"]


def normalize_workspace(setting) -> "bool | str":
    """Canonicalize a ``workspace=`` knob value.

    ``None``, ``True`` and ``"auto"`` mean reusing slot workspaces (the
    default); ``False`` disables arena reuse — every acquire allocates
    fresh through the backend seam (pass-through mode).  Allocations and
    payments are bit-identical either way; the knob exists for
    benchmarking and for the allocation-floor gate.  Mirrors
    :func:`~repro.core.greedy.normalize_fused`.
    """
    if setting is None or setting is True or setting == "auto":
        return "auto"
    if setting is False:
        return False
    raise ValueError(f"unrecognized workspace setting: {setting!r}")


class SlotWorkspace:
    """Named, growable scratch arenas over the array-backend seam.

    Args:
        backend: the backend instance allocations route through; ``None``
            resolves the *active* backend per acquire (so an engine's
            ``use_backend`` scope governs standalone allocators too).
        reuse: ``False`` = pass-through mode (see the module docstring).

    Attributes:
        grown: number of arena (re)allocations ever made — flat across
            warm rounds/slots when reuse works (tests pin this).
    """

    def __init__(self, backend=None, reuse: bool = True) -> None:
        self.backend = backend
        self.reuse = bool(reuse)
        self.grown = 0
        self._arenas: dict[tuple[str, np.dtype], np.ndarray] = {}
        self._tags: dict[str, int] = {}

    @property
    def n_arenas(self) -> int:
        return len(self._arenas)

    def _bk(self):
        if self.backend is not None:
            return self.backend
        from . import active_backend

        return active_backend()

    # ------------------------------------------------------------------
    # call scoping
    # ------------------------------------------------------------------
    def begin_call(self) -> None:
        """Start one allocator call: reset the :meth:`tag` counters so the
        call's tagged consumers land on the same arenas as last call's."""
        self._tags.clear()

    def tag(self, prefix: str) -> str:
        """A deterministic per-call-scoped arena-name prefix (``prefix#i``)."""
        i = self._tags.get(prefix, 0)
        self._tags[prefix] = i + 1
        return f"{prefix}#{i}"

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    def empty(self, name: str, shape, dtype=float) -> np.ndarray:
        """An uninitialized ``shape`` view of the ``(name, dtype)`` arena.

        The view's contents are arbitrary (previous-round leftovers in
        reuse mode) — callers must fully overwrite before reading, the
        same contract ``np.empty`` already imposes.
        """
        dtype = np.dtype(dtype)
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        size = 1
        for s in shape:
            size *= s
        if not self.reuse:
            return self._bk().empty(shape, dtype=dtype)
        key = (name, dtype)
        arena = self._arenas.get(key)
        if arena is None or arena.size < size:
            capacity = size if arena is None else max(size, 2 * arena.size)
            arena = self._bk().empty(capacity, dtype=dtype)
            self._arenas[key] = arena
            self.grown += 1
        view = arena[:size]
        return view if len(shape) == 1 else view.reshape(shape)

    def zeros(self, name: str, shape, dtype=float) -> np.ndarray:
        out = self.empty(name, shape, dtype)
        out.fill(0)
        return out

    def ones(self, name: str, shape, dtype=float) -> np.ndarray:
        out = self.empty(name, shape, dtype)
        out.fill(1)
        return out

    def full(self, name: str, shape, fill_value, dtype=float) -> np.ndarray:
        out = self.empty(name, shape, dtype)
        out.fill(fill_value)
        return out
