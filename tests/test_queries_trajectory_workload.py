"""Tests for the trajectory workload and its aggregate-machinery reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BaselineAllocator, GreedyAllocator
from repro.queries import TrajectoryQueryWorkload
from repro.sensors import SensorSnapshot
from repro.spatial import Region

REGION = Region.from_origin(50, 50)


class TestTrajectoryWorkload:
    def test_generates_requested_count(self):
        wl = TrajectoryQueryWorkload(REGION, queries_per_slot=4)
        queries = wl.generate(0, np.random.default_rng(0))
        assert len(queries) == 4

    def test_budget_proportional_to_length(self):
        wl = TrajectoryQueryWorkload(REGION, budget_factor=9.0, sensing_range=10.0)
        for q in wl.generate(0, np.random.default_rng(1)):
            assert q.budget == pytest.approx(q.trajectory.length / 15.0 * 9.0)

    def test_waypoints_inside_region(self):
        wl = TrajectoryQueryWorkload(REGION)
        for q in wl.generate(0, np.random.default_rng(2)):
            assert all(REGION.contains(w) for w in q.trajectory.waypoints)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectoryQueryWorkload(REGION, queries_per_slot=-1)
        with pytest.raises(ValueError):
            TrajectoryQueryWorkload(REGION, n_waypoints=1)

    def test_deterministic(self):
        wl = TrajectoryQueryWorkload(REGION, queries_per_slot=3)
        a = wl.generate(0, np.random.default_rng(5))
        b = wl.generate(0, np.random.default_rng(5))
        assert [q.budget for q in a] == [q.budget for q in b]


class TestTrajectoryAllocation:
    """The §2.2.3 reduction: trajectory queries run through the same
    joint machinery as aggregates, sharing sensors across paths."""

    def _sensors(self, n=30, seed=3):
        rng = np.random.default_rng(seed)
        return [
            SensorSnapshot(
                i, REGION.sample_location(rng), 10.0, float(rng.uniform(0, 0.2)), 1.0
            )
            for i in range(n)
        ]

    def test_greedy_allocates_trajectory_queries(self):
        wl = TrajectoryQueryWorkload(REGION, queries_per_slot=5, budget_factor=20.0)
        queries = wl.generate(0, np.random.default_rng(4))
        result = GreedyAllocator().allocate(queries, self._sensors())
        result.verify()

    def test_greedy_at_least_matches_baseline(self):
        totals = {"greedy": 0.0, "baseline": 0.0}
        for seed in range(5):
            wl = TrajectoryQueryWorkload(REGION, queries_per_slot=6, budget_factor=15.0)
            queries = wl.generate(0, np.random.default_rng(seed))
            sensors = self._sensors(seed=seed + 100)
            totals["greedy"] += GreedyAllocator().allocate(queries, sensors).total_utility
            totals["baseline"] += BaselineAllocator().allocate(queries, sensors).total_utility
        assert totals["greedy"] >= totals["baseline"] - 1e-9
