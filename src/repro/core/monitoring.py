"""Controllers for continuous queries — Algorithms 2 and 3 (Section 3.3).

Each slot the controllers translate the live monitoring queries into point
queries (``CreatePointQuery`` / ``CreatePointQueries``), hand them to
whatever point-query allocator the experiment uses, and afterwards fold the
execution outcomes back into the monitoring queries' state
(``ApplyResults``).

Budget discipline beyond the paper's pseudo-code: a derived point query's
budget is additionally capped by the parent's remaining budget, so a
monitoring query can never spend more than the user allotted even when the
eq. 16/17 valuation momentarily exceeds it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..queries import (
    LocationMonitoringQuery,
    PointQuery,
    RegionMonitoringQuery,
    new_query_id,
)
from ..queries.base import resolve_relevant_mask
from ..sensors import SensorSnapshot
from ..spatial.raster import get_raster
from .allocation import AllocationResult
from .sampling import SamplingPlan, paper_weight_function, plan_sampling


def _announcement_xy(sensors: Sequence[SensorSnapshot]) -> np.ndarray:
    """``(n, 2)`` coordinates of an announcement sequence.

    An :class:`~repro.sensors.AnnouncementBatch` hands over its stacked
    array directly (no snapshot materialization); plain lists are stacked
    once here.
    """
    xy = getattr(sensors, "xy", None)
    if xy is not None:
        return xy
    return np.asarray(
        [(s.location.x, s.location.y) for s in sensors], dtype=float
    ).reshape(-1, 2)

__all__ = [
    "AlphaSchedule",
    "LocationMonitoringController",
    "RegionMonitoringController",
    "RegionSlotOutcome",
]

#: The budget-carryover control: either a constant or a callable of
#: (slot, query) -> fraction.  The paper fixes alpha = 0.5 and sketches an
#: adaptive schedule as future work; both are expressible here.
AlphaSchedule = float | Callable[[int, object], float]


def _resolve_alpha(alpha: AlphaSchedule, t: int, query: object) -> float:
    value = alpha(t, query) if callable(alpha) else alpha
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"alpha must be in [0, 1], got {value}")
    return value


class LocationMonitoringController:
    """Algorithm 2: derive point queries for location-monitoring queries.

    Args:
        alpha: fraction of the accumulated surplus an *opportunistic*
            (off-schedule) sample may spend (paper: constant 0.5).
        opportunistic: whether off-schedule alpha-capped sampling happens at
            all (Algorithm 2's distinctive feature).
        scheduled_only: when True, a point query is created *only* at the
            desired sampling times — the Section 4.5 baseline, which also
            loses Algorithm 2's catch-up after a failed scheduled sample
            and its past-schedule extra sampling.
        min_budget: derived queries with a smaller budget than this are not
            worth a sensor's time and are skipped.
    """

    def __init__(
        self,
        alpha: AlphaSchedule = 0.5,
        opportunistic: bool = True,
        scheduled_only: bool = False,
        min_budget: float = 1e-6,
    ) -> None:
        self.alpha = alpha
        self.opportunistic = opportunistic
        self.scheduled_only = scheduled_only
        self.min_budget = min_budget

    # ------------------------------------------------------------------
    # CreatePointQuery (Function, Section 3.3)
    # ------------------------------------------------------------------
    def create_point_queries(
        self, queries: Sequence[LocationMonitoringQuery], t: int
    ) -> list[PointQuery]:
        children: list[PointQuery] = []
        for query in queries:
            if not query.active(t):
                continue
            child = self._create_for(query, t)
            if child is not None:
                children.append(child)
        return children

    def _create_for(self, query: LocationMonitoringQuery, t: int) -> PointQuery | None:
        full_value = query.marginal_gain(t)
        scheduled_now = t in query.desired_times
        if self.scheduled_only and not scheduled_now:
            return None
        if scheduled_now or query.has_missed_schedule(t) or query.past_schedule(t):
            delta = full_value
        elif self.opportunistic:
            alpha = _resolve_alpha(self.alpha, t, query)
            delta = min(alpha * max(0.0, query.surplus), full_value)
        else:
            return None
        delta = min(delta, query.remaining_budget)
        if delta <= self.min_budget:
            return None
        return PointQuery(
            location=query.location,
            budget=delta,
            theta_min=query.theta_min,
            dmax=query.dmax,
            query_id=new_query_id("lmp"),
            issued_at=t,
            parent_id=query.query_id,
        )

    # ------------------------------------------------------------------
    # ApplyResults (Procedure, Section 3.3)
    # ------------------------------------------------------------------
    def apply_results(
        self,
        queries: Sequence[LocationMonitoringQuery],
        children: Sequence[PointQuery],
        result: AllocationResult,
        t: int,
    ) -> tuple[int, float]:
        """Fold execution outcomes back into the queries.

        Returns ``(samples, value_delta)``: the number of successful samples
        and the total *realized* increase of the parents' eq. 16 valuations.
        The realized delta is the honest utility contribution — an
        opportunistic sample is bought at its alpha-capped price but may be
        worth its full marginal value to the query.
        """
        by_parent = {c.parent_id: c for c in children}
        by_id = {q.query_id: q for q in queries}
        samples = 0
        value_delta = 0.0
        for parent_id, child in by_parent.items():
            query = by_id.get(parent_id)
            if query is None:
                continue
            sensor_ids = result.assignments.get(child.query_id, ())
            if not sensor_ids:
                continue  # pi = -inf in the paper: sampling failed
            snapshot = result.selected[sensor_ids[0]]
            quality = child.quality(snapshot)
            payment = result.query_payment(child.query_id)
            before = query.achieved_value()
            query.apply_sample(t, quality, payment)
            value_delta += query.achieved_value() - before
            samples += 1
        return samples, value_delta


@dataclass
class RegionSlotOutcome:
    """Per-query outcome of one region-monitoring slot (Algorithm 3)."""

    query_id: str
    achieved_value: float = 0.0
    planned_value: float = 0.0
    paid: float = 0.0
    contributions: dict[int, float] = field(default_factory=dict)  # sensor -> amount
    achieved_sensors: tuple[int, ...] = ()
    shared_sensors: tuple[int, ...] = ()  # the A_{r,t} extras actually used


class RegionMonitoringController:
    """Algorithm 3: derive and settle point queries for region monitoring.

    Args:
        alpha: fraction of the unspent expected slot cost that may be
            contributed towards shared sensors (paper: 0.5).
        weight_fn: eq. 18 cost-sharing weight ``w(k)``; identity (all 1.0)
            reproduces the Section 4.6 baseline's "no cost weighting".
        use_shared_sensors: fold in-region sensors selected for *other*
            queries into the achieved set (``A_{r,t}``); the baseline
            disables this.
    """

    def __init__(
        self,
        alpha: AlphaSchedule = 0.5,
        weight_fn: Callable[[int], float] = paper_weight_function,
        use_shared_sensors: bool = True,
        min_budget: float = 1e-6,
    ) -> None:
        self.alpha = alpha
        self.weight_fn = weight_fn
        self.use_shared_sensors = use_shared_sensors
        self.min_budget = min_budget

    # ------------------------------------------------------------------
    # CreatePointQueries (Function, Section 3.3)
    # ------------------------------------------------------------------
    def region_counts(
        self,
        queries: Sequence[RegionMonitoringQuery],
        sensors: Sequence[SensorSnapshot],
        t: int,
    ) -> dict[int, int]:
        """``k`` per sensor: how many active monitored regions contain it.

        One :meth:`~repro.queries.RegionMonitoringQuery.relevant_mask` pass
        per active query over the stacked announcement coordinates — no
        per-snapshot ``region.contains`` scans.
        """
        masks = self._region_masks(queries, sensors, t)
        return self._counts_from_masks(masks, sensors)

    @staticmethod
    def _region_masks(
        queries: Sequence[RegionMonitoringQuery],
        sensors: Sequence[SensorSnapshot],
        t: int,
    ) -> dict[str, np.ndarray]:
        """One in-region mask per active query over the stacked coordinates.

        Containment is served from the slot's shared world raster
        (:func:`~repro.spatial.raster.get_raster`), so repeated calls this
        slot — and the allocator side, which shares the raster through the
        kernel — pay one pass per (region, announcement batch) pair.
        Plain containment is exactly ``relevant_mask``; subclasses that
        override it keep the vectorized call, routed through
        :func:`~repro.queries.base.resolve_relevant_mask` so a subclass
        that overrides only the scalar :meth:`relevant` falls back to the
        per-snapshot scan instead of the stale inherited mask.
        """
        xy = _announcement_xy(sensors)
        raster = get_raster(sensors, xy)
        masks: dict[str, np.ndarray] = {}
        for q in queries:
            if not q.active(t):
                continue
            if type(q) is RegionMonitoringQuery:
                masks[q.query_id] = raster.contains_mask(q.region)
                continue
            mask = resolve_relevant_mask(q, xy)
            if mask is None:
                mask = np.fromiter(
                    (q.relevant(s) for s in sensors), bool, len(sensors)
                )
            masks[q.query_id] = mask
        return masks

    @staticmethod
    def _counts_from_masks(
        masks: dict[str, np.ndarray], sensors: Sequence[SensorSnapshot]
    ) -> dict[int, int]:
        total = np.zeros(len(sensors), dtype=np.int64)
        for mask in masks.values():
            total += mask
        ids = getattr(sensors, "sensor_ids", None)
        if ids is None:
            ids = [s.sensor_id for s in sensors]
        return {int(sid): int(k) for sid, k in zip(ids, total)}

    def create_point_queries(
        self,
        queries: Sequence[RegionMonitoringQuery],
        sensors: Sequence[SensorSnapshot],
        t: int,
    ) -> tuple[list[PointQuery], dict[str, SamplingPlan]]:
        # One mask pass per active query, shared by the k-counts and the
        # per-query in-region candidate gathers below.
        masks = self._region_masks(queries, sensors, t)
        counts = self._counts_from_masks(masks, sensors)
        children: list[PointQuery] = []
        plans: dict[str, SamplingPlan] = {}
        for query in queries:
            if not query.active(t):
                continue
            # Mask first, materialize after: only the (typically few)
            # in-region announcements become snapshot objects.
            in_region = [
                sensors[j] for j in np.flatnonzero(masks[query.query_id])
            ]
            weighted = {
                s.sensor_id: s.cost * self.weight_fn(counts[s.sensor_id])
                for s in in_region
            }
            plan = plan_sampling(query, in_region, t, weighted_costs=weighted)
            plans[query.query_id] = plan
            budget_left = query.remaining_budget
            for snapshot in plan.current:
                delta = min(plan.marginal_values[snapshot.sensor_id], budget_left)
                if delta <= self.min_budget:
                    continue
                budget_left -= delta
                children.append(
                    PointQuery(
                        location=snapshot.location,
                        budget=delta,
                        theta_min=query.theta_min,
                        dmax=query.dmax,
                        query_id=new_query_id("rmp"),
                        issued_at=t,
                        parent_id=query.query_id,
                    )
                )
        return children, plans

    # ------------------------------------------------------------------
    # ApplyResults (Procedure, Section 3.3)
    # ------------------------------------------------------------------
    def apply_results(
        self,
        queries: Sequence[RegionMonitoringQuery],
        children: Sequence[PointQuery],
        plans: dict[str, SamplingPlan],
        result: AllocationResult,
        t: int,
    ) -> list[RegionSlotOutcome]:
        """Settle each query's slot: record achieved sensors, compute the
        shared-cost contributions and return them for payment adjustment."""
        by_id = {q.query_id: q for q in queries}
        children_by_parent: dict[str, list[PointQuery]] = {}
        for child in children:
            children_by_parent.setdefault(child.parent_id, []).append(child)
        outcomes: list[RegionSlotOutcome] = []
        for query_id, plan in plans.items():
            query = by_id[query_id]
            own_children = children_by_parent.get(query_id, [])

            achieved: dict[int, SensorSnapshot] = {}
            paid = 0.0
            own_child_ids = set()
            for child in own_children:
                own_child_ids.add(child.query_id)
                sensor_ids = result.assignments.get(child.query_id, ())
                if not sensor_ids:
                    continue
                snapshot = result.selected[sensor_ids[0]]
                achieved[snapshot.sensor_id] = snapshot
                paid += result.query_payment(child.query_id)

            shared: dict[int, SensorSnapshot] = {}
            if self.use_shared_sensors:
                for sid, snapshot in result.selected.items():
                    if sid in achieved:
                        continue
                    if query.region.contains(snapshot.location):
                        shared[sid] = snapshot

            # Cost contribution for the extra shared sensors, capped by
            # alpha * (C_t - C-hat_t) and by the remaining budget.
            contributions: dict[int, float] = {}
            alpha = _resolve_alpha(self.alpha, t, query)
            pool = min(
                alpha * max(0.0, plan.expected_cost - paid),
                max(0.0, query.remaining_budget - paid),
            )
            if shared and pool > 0:
                base = list(achieved.values())
                ranked = sorted(
                    shared.values(),
                    key=lambda s: query.slot_value(base + [s]),
                    reverse=True,
                )
                for snapshot in ranked:
                    if pool <= 0:
                        break
                    amount = min(pool, snapshot.cost)
                    if amount > 0:
                        contributions[snapshot.sensor_id] = amount
                        pool -= amount

            achieved_all = list(achieved.values()) + list(shared.values())
            total_payment = paid + sum(contributions.values())
            value = query.record_slot(achieved_all, plan.planned_value, total_payment)
            outcomes.append(
                RegionSlotOutcome(
                    query_id=query_id,
                    achieved_value=value,
                    planned_value=plan.planned_value,
                    paid=total_payment,
                    contributions=contributions,
                    achieved_sensors=tuple(achieved),
                    shared_sensors=tuple(shared),
                )
            )
        return outcomes

    # ------------------------------------------------------------------
    # Payment adjustment (Algorithm 5, step 5)
    # ------------------------------------------------------------------
    @staticmethod
    def adjust_payments(
        result: AllocationResult, outcomes: Sequence[RegionSlotOutcome]
    ) -> None:
        """Fold the contributions into the allocation's payment ledger.

        Each contribution towards sensor ``a`` proportionally refunds the
        queries that already paid for ``a`` and books the amount against
        the region-monitoring query, keeping the sensor's income exactly
        equal to its cost.
        """
        for outcome in outcomes:
            for sensor_id, amount in outcome.contributions.items():
                payers = {
                    key: p
                    for key, p in result.payments.items()
                    if key[1] == sensor_id and p > 0
                }
                total = sum(payers.values())
                if total <= 0:
                    continue
                applied = min(amount, total)
                factor = (total - applied) / total
                for key, payment in payers.items():
                    result.payments[key] = payment * factor
                key = (outcome.query_id, sensor_id)
                result.payments[key] = result.payments.get(key, 0.0) + applied
