"""ValuationKernel: bit-parity with both seed valuation paths + reuse rules."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_point_query, make_snapshot, random_instance
from repro.core import PointProblem, ValuationKernel
from repro.core.greedy import relevant_queries_by_sensor
from repro.queries import PointQuery
from repro.sensors import SensorSnapshot
from repro.spatial import Location


def legacy_build_values(queries, sensors):
    """The seed ``PointProblem.build`` per-location loop, frozen for parity."""
    n = len(sensors)
    sensor_xy = np.asarray([(s.location.x, s.location.y) for s in sensors], dtype=float)
    gamma = np.asarray([s.inaccuracy for s in sensors], dtype=float)
    trust = np.asarray([s.trust for s in sensors], dtype=float)
    groups: dict[tuple[float, float], list[PointQuery]] = {}
    for query in queries:
        groups.setdefault((query.location.x, query.location.y), []).append(query)
    locations = list(groups)
    location_queries = list(groups.values())
    values = np.zeros((len(locations), n))
    query_values: dict[str, np.ndarray] = {}
    for row, ((x, y), grouped) in enumerate(zip(locations, location_queries)):
        if n:
            diff = sensor_xy - np.array([x, y])
            dist = np.sqrt((diff**2).sum(axis=1))
        else:
            dist = np.zeros(0)
        for query in grouped:
            quality = (1.0 - gamma) * trust * (1.0 - dist / query.dmax)
            quality[dist > query.dmax] = 0.0
            quality[quality < query.theta_min] = 0.0
            row_values = query.budget * quality
            query_values[query.query_id] = row_values
            values[row] += row_values
    return values, query_values


class TestMatrixPathParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_bit_identical_to_seed_loop(self, seed):
        queries, sensors = random_instance(seed, n_sensors=12, n_queries=20)
        want_values, want_query_values = legacy_build_values(queries, sensors)
        problem = PointProblem.build(queries, sensors)
        assert np.array_equal(problem.values, want_values)
        for qid, row in want_query_values.items():
            assert np.array_equal(problem.query_values[qid], row)

    def test_colocated_queries_aggregate_per_location(self):
        queries = [
            make_point_query(0.0, 0.0, budget=10.0),
            make_point_query(0.0, 0.0, budget=20.0),
            make_point_query(3.0, 0.0, budget=10.0),
        ]
        sensors = [make_snapshot(0, x=1.0), make_snapshot(1, x=4.0)]
        want_values, _ = legacy_build_values(queries, sensors)
        problem = PointProblem.build(queries, sensors)
        assert problem.n_locations == 2
        assert np.array_equal(problem.values, want_values)

    def test_empty_edges(self):
        queries, sensors = random_instance(0, n_sensors=5, n_queries=5)
        no_sensors = PointProblem.build(queries, [])
        assert no_sensors.values.shape == (len(no_sensors.locations), 0)
        no_queries = PointProblem.build([], sensors)
        assert no_queries.values.shape == (0, 5)


class TestScalarPathParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_single_values_match_value_single(self, seed):
        # math.hypot (CPython's own algorithm) and np.hypot (libm) can
        # disagree in the last ulp, so the scalar path is equal to within
        # one rounding step — never enough to cross the sharp eq. 3
        # thresholds away from exact boundaries.
        queries, sensors = random_instance(seed, n_sensors=10, n_queries=15)
        kernel = ValuationKernel.from_sensors(sensors)
        values = kernel.single_values(queries)
        for i, query in enumerate(queries):
            for j, snapshot in enumerate(sensors):
                want = query.value_single(snapshot)
                assert values[i, j] == pytest.approx(want, rel=1e-12, abs=1e-12)

    @pytest.mark.parametrize("seed", range(8))
    def test_relevance_matches_relevant(self, seed):
        queries, sensors = random_instance(seed, n_sensors=10, n_queries=15)
        kernel = ValuationKernel.from_sensors(sensors)
        rel = kernel.relevance(queries)
        for i, query in enumerate(queries):
            for j, snapshot in enumerate(sensors):
                assert bool(rel[i, j]) == query.relevant(snapshot)

    def test_relevant_map_matches_scalar_fallback(self):
        queries, sensors = random_instance(5, n_sensors=10, n_queries=15)
        kernel = ValuationKernel.from_sensors(sensors)
        with_kernel = relevant_queries_by_sensor(queries, sensors, kernel)
        without = relevant_queries_by_sensor(queries, sensors, None)
        assert with_kernel == without

    def test_boundary_thresholds(self):
        # Exactly at dmax -> zero; exactly at theta_min -> kept (eq. 3).
        query = PointQuery(Location(0.0, 0.0), budget=10.0, theta_min=0.5, dmax=4.0)
        at_dmax = make_snapshot(0, x=4.0)
        at_theta = make_snapshot(1, x=2.0)  # theta = 1 - 2/4 = 0.5 exactly
        kernel = ValuationKernel.from_sensors([at_dmax, at_theta])
        values = kernel.single_values([query])
        assert values[0, 0] == 0.0
        assert values[0, 1] == pytest.approx(5.0)
        rows = kernel.value_rows([query])
        assert rows[0, 0] == 0.0
        assert rows[0, 1] == pytest.approx(5.0)


class TestKernelReuse:
    def test_ensure_reuses_compatible_kernel(self):
        _, sensors = random_instance(1)
        kernel = ValuationKernel.from_sensors(sensors)
        assert ValuationKernel.ensure(kernel, sensors) is kernel

    def test_ensure_accepts_repriced_sensors(self):
        # Costs do not participate in the value matrices, so a zero-cost
        # re-announcement (the sequential baseline's buffering) reuses the
        # kernel.
        _, sensors = random_instance(2)
        kernel = ValuationKernel.from_sensors(sensors)
        repriced = [
            SensorSnapshot(s.sensor_id, s.location, 0.0, s.inaccuracy, s.trust)
            for s in sensors
        ]
        assert ValuationKernel.ensure(kernel, repriced) is kernel

    def test_ensure_rebuilds_on_mismatch(self):
        _, sensors = random_instance(3)
        kernel = ValuationKernel.from_sensors(sensors)
        assert ValuationKernel.ensure(kernel, sensors[:-1]) is not kernel
        moved = [
            SensorSnapshot(
                s.sensor_id, Location(s.location.x + 1.0, s.location.y),
                s.cost, s.inaccuracy, s.trust,
            )
            for s in sensors
        ]
        assert ValuationKernel.ensure(kernel, moved) is not kernel

    def test_problem_costs_come_from_sensors_argument(self):
        queries, sensors = random_instance(4)
        kernel = ValuationKernel.from_sensors(sensors)
        repriced = [
            SensorSnapshot(s.sensor_id, s.location, 0.0, s.inaccuracy, s.trust)
            for s in sensors
        ]
        problem = PointProblem.build(queries, repriced, kernel=kernel)
        assert np.array_equal(problem.costs, np.zeros(len(sensors)))
        baseline = PointProblem.build(queries, sensors)
        assert np.array_equal(problem.values, baseline.values)
