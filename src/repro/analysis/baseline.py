"""Committed-baseline handling: grandfathered findings that don't fail CI.

A baseline entry matches a finding by a line-number-free fingerprint
(rule | path | message), so grandfathered findings survive unrelated edits
above them but a *new* occurrence of the same hazard in the same file only
passes while the grandfathered one is still present (multiset matching).

Rows (CHANGES-style):
    fingerprint    - stable hash of (rule, path, message)
    load_baseline  - committed JSON -> Counter of fingerprints
    apply_baseline - split findings into (new, baselined) + stale entries
    write_baseline - regenerate the committed file from current findings
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from .rules import Finding

__all__ = ["fingerprint", "load_baseline", "apply_baseline", "write_baseline"]

_VERSION = 1


def fingerprint(finding: Finding) -> str:
    key = f"{finding.rule}|{finding.path}|{finding.message}"
    return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> Counter:
    """Fingerprint multiset from the committed baseline (empty if absent)."""
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported lint baseline version {payload.get('version')!r} "
            f"in {path}"
        )
    counts: Counter = Counter()
    for entry in payload.get("findings", []):
        counts[entry["fingerprint"]] += int(entry.get("count", 1))
    return counts


def apply_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding], Counter]:
    """Split into (new, grandfathered); leftover counts flag stale entries."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        fp = fingerprint(finding)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    stale = Counter({fp: n for fp, n in remaining.items() if n > 0})
    return new, grandfathered, stale


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Grandfather every current finding; returns the entry count."""
    counts: Counter = Counter()
    meta: dict[str, Finding] = {}
    for finding in findings:
        fp = fingerprint(finding)
        counts[fp] += 1
        meta.setdefault(fp, finding)
    entries = [
        {
            "fingerprint": fp,
            "rule": meta[fp].rule,
            "path": meta[fp].path,
            "message": meta[fp].message,
            "count": counts[fp],
        }
        for fp in sorted(counts, key=lambda fp: (meta[fp].path, meta[fp].rule, fp))
    ]
    payload = {"version": _VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return sum(counts.values())
