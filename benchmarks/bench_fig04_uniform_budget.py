"""Figure 4: RNC with budgets drawn uniformly in mean +- 10.

The paper's finding: randomized budgets barely change the picture relative
to fixed budgets (Figure 3) — the dominance ordering is unchanged.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig4, format_figure


def test_fig4_uniform_budgets(benchmark, scale):
    result = run_once(benchmark, fig4, scale)
    print()
    print(format_figure(result))

    assert result.dominates("Optimal", "Baseline", "avg_utility", slack=1e-9)
    assert result.dominates("LocalSearch", "Baseline", "avg_utility", slack=1e-9)
    # With spread budgets some queries draw above-mean budgets, so unlike
    # the fixed-budget runs the baseline may answer a few queries even at
    # the smallest mean; the ordering is what must hold.
    assert result.metric("Optimal", "satisfaction_ratio")[0] > result.metric(
        "Baseline", "satisfaction_ratio"
    )[0]
