"""Tests for the ``repro lint`` AST invariant checker.

Every rule gets fixture snippets that MUST fire and near-miss snippets
that must NOT, plus suppression-pragma and baseline round-trip coverage
and a repo-clean gate: the checked-out tree itself lints clean against
the committed baseline.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    LintConfig,
    format_json,
    format_text,
    load_baseline,
    parse_suppressions,
    run_lint,
    select_rules,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_tree(tmp_path: Path, files: dict[str, str], **overrides):
    """Write a fixture tree under ``tmp_path`` and lint it.

    Asserts every fixture module was actually indexed — a fixture with a
    syntax error would otherwise be skipped and pass "clean" vacuously.
    """
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    result = run_lint(LintConfig(root=tmp_path, **overrides))
    assert result.modules == len(files), "fixture module failed to parse"
    return result


def rules_fired(result) -> set[str]:
    return {f.rule for f in result.findings}


# ----------------------------------------------------------------------
# REP001 capability-hook
# ----------------------------------------------------------------------
PROVIDER = """
    class Kernel:
        def sparse_single_values(self, queries):
            return []
"""


class TestCapabilityHook:
    def test_typoed_probe_fires_with_suggestion(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/kernel.py": PROVIDER,
            "src/repro/core/alloc.py": """
                fn = getattr(kernel, "sparse_single_valuez", None)
            """,
        })
        assert rules_fired(result) == {"capability-hook"}
        assert "sparse_single_values" in result.findings[0].message

    def test_defined_probe_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/kernel.py": PROVIDER,
            "src/repro/core/alloc.py": """
                fn = getattr(kernel, "sparse_single_values", None)
            """,
        })
        assert result.ok

    def test_hasattr_probe_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/alloc.py": "ok = hasattr(kernel, 'candidate_vieww')\n",
        })
        assert rules_fired(result) == {"capability-hook"}

    def test_self_assign_setattr_and_slots_count_as_defined(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/holder.py": """
                class Holder:
                    __slots__ = ("slot_attr",)
                    def __init__(self):
                        self.dyn_attr = 1
                def stash(obj):
                    setattr(obj, "_stashed_attr", 2)
            """,
            "src/repro/core/alloc.py": """
                a = getattr(x, "dyn_attr", None)
                b = getattr(x, "_stashed_attr", None)
                c = getattr(x, "slot_attr", None)
            """,
        })
        assert result.ok

    def test_probe_outside_capability_scope_is_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/cli_helpers.py": "v = getattr(args, 'not_an_attr_anywhere', None)\n",
        })
        assert result.ok

    def test_dunder_and_nonliteral_probes_are_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/alloc.py": """
                a = getattr(x, "__missing_dunder__", None)
                b = getattr(x, name, None)
            """,
        })
        assert result.ok


# ----------------------------------------------------------------------
# REP002 batch-hook-pairing
# ----------------------------------------------------------------------
QUERY_BASE = """
    class Query:
        def relevant(self, snapshot):
            return True
        def relevant_mask(self, xy, gamma=None, trust=None):
            return None
"""

SCALAR_ONLY_OVERRIDE = QUERY_BASE + """
    class Narrow(Query):
        def relevant(self, snapshot):
            return snapshot.trust > 0.5
"""

PAIRED_OVERRIDE = QUERY_BASE + """
    class Narrow(Query):
        def relevant(self, snapshot):
            return snapshot.trust > 0.5
        def relevant_mask(self, xy, gamma=None, trust=None):
            return trust > 0.5
"""

SELF_CALL_OVERRIDE = QUERY_BASE + """
    class Wide(Query):
        def relevant(self, snapshot):
            return bool(self.relevant_mask(None)[0])
        def relevant_mask(self, xy, gamma=None, trust=None):
            return [True]
"""


class TestBatchHookPairing:
    def test_scalar_only_override_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/queries/q.py": SCALAR_ONLY_OVERRIDE,
        })
        assert rules_fired(result) == {"batch-hook-pairing"}
        assert "Narrow" in result.findings[0].message

    def test_paired_override_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/queries/q.py": PAIRED_OVERRIDE,
        })
        assert result.modules == 1 and result.ok

    def test_scalar_override_without_batch_ancestor_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/queries/q.py": """
                class ScalarOnly:
                    def relevant(self, snapshot):
                        return True
                class Narrow(ScalarOnly):
                    def relevant(self, snapshot):
                        return False
            """,
        })
        assert result.ok

    def test_direct_batch_hook_call_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/screen.py": "mask = query.relevant_mask(xy)\n",
        })
        assert rules_fired(result) == {"batch-hook-pairing"}
        assert "resolve_relevant_mask" in result.findings[0].message

    def test_self_call_and_dispatch_module_are_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/queries/q.py": SELF_CALL_OVERRIDE,
            # the module that *implements* the guard calls the hook directly
            "src/repro/queries/base.py": "def resolve(q, xy):\n    return q.relevant_mask(xy)\n",
        })
        assert result.modules == 2 and result.ok

    def test_sample_target_pair_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/mobility/m.py": """
                class Base:
                    def sample_target(self, index):
                        return 0
                    def sample_targets(self, indices):
                        return indices
                class Biased(Base):
                    def sample_target(self, index):
                        return 1
            """,
        })
        assert rules_fired(result) == {"batch-hook-pairing"}


# ----------------------------------------------------------------------
# REP003 determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_global_and_unseeded_rng_and_wall_clock_fire(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/sim.py": """
                import random
                import time
                import numpy as np
                a = np.random.rand(3)
                rng = np.random.default_rng()
                r = random.Random()
                b = random.random()
                t = time.time()
            """,
        })
        determinism = [f for f in result.findings if f.rule == "determinism"]
        assert len(determinism) == 5

    def test_seeded_and_local_rng_and_perf_counter_are_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/sim.py": """
                import random
                import time
                import numpy as np
                rng = np.random.default_rng(7)
                r = random.Random(3)
                x = rng.random()
                t0 = time.perf_counter()
            """,
        })
        assert result.ok

    def test_cli_is_exempt(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/cli.py": "import time\nt = time.time()\n",
        })
        assert result.ok

    def test_from_import_datetime_now_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/sim.py": """
                from datetime import datetime
                stamp = datetime.now()
            """,
        })
        assert rules_fired(result) == {"determinism"}


# ----------------------------------------------------------------------
# REP004 ulp-mixed-math
# ----------------------------------------------------------------------
class TestUlpMixedMath:
    def test_mixed_hypot_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/spatial/geo.py": """
                import math
                import numpy as np
                def batch(px, py):
                    return np.hypot(px, py)
                def scalar(x, y):
                    return math.hypot(x, y)
            """,
        })
        assert rules_fired(result) == {"ulp-mixed-math"}

    def test_unmixed_math_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/spatial/geo.py": """
                import math
                def scalar(x, y):
                    return math.hypot(x, y)
            """,
        })
        assert result.ok

    def test_different_functions_do_not_fire(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/spatial/geo.py": """
                import math
                import numpy as np
                def batch(d):
                    return np.sqrt(d)
                def scalar(x, y):
                    return math.hypot(x, y)
            """,
        })
        assert result.ok


# ----------------------------------------------------------------------
# REP005 hot-loop
# ----------------------------------------------------------------------
class TestHotLoop:
    @pytest.mark.parametrize("header", [
        "for s in sensors:",
        "for j, s in enumerate(sensors):",
        "for j in range(len(sensors)):",
        "for s in snapshots:",
    ])
    def test_sensor_axis_loops_fire(self, tmp_path, header):
        result = lint_tree(tmp_path, {
            "src/repro/core/hot.py": f"def f(sensors, snapshots):\n    {header}\n        pass\n",
        })
        assert rules_fired(result) == {"hot-loop"}

    def test_query_loop_and_comprehension_are_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/hot.py": """
                def f(queries, sensors):
                    for q in queries:
                        pass
                    return [s.cost for s in sensors]
            """,
        })
        assert result.ok

    def test_non_hot_module_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/experiments/cold.py": "def f(sensors):\n    for s in sensors:\n        pass\n",
        })
        assert result.ok


# ----------------------------------------------------------------------
# REP006 async-blocking
# ----------------------------------------------------------------------
class TestAsyncBlocking:
    def test_time_sleep_in_coroutine_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/service/tick.py": """
                import time
                async def serve():
                    time.sleep(1.0)
            """,
        })
        assert rules_fired(result) == {"async-blocking"}

    def test_sync_queue_get_in_coroutine_fires(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/service/tick.py": """
                import queue
                class Service:
                    def __init__(self):
                        self.inbox = queue.Queue()
                    async def drain(self):
                        return self.inbox.get()
            """,
        })
        assert rules_fired(result) == {"async-blocking"}

    def test_asyncio_sleep_and_sync_def_are_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/service/tick.py": """
                import asyncio
                import time
                def pace():
                    time.sleep(0.1)
                async def serve():
                    await asyncio.sleep(1.0)
            """,
        })
        assert result.ok

    def test_nested_sync_helper_inside_coroutine_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/service/tick.py": """
                import time
                async def serve(loop):
                    def blocking_helper():
                        time.sleep(1.0)
                    await loop.run_in_executor(None, blocking_helper)
            """,
        })
        assert result.ok

    def test_outside_service_scope_is_clean(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/experiments/x.py": """
                import time
                async def probe():
                    time.sleep(1.0)
            """,
        })
        assert result.ok


# ----------------------------------------------------------------------
# suppression pragmas
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_inline_pragma_suppresses_and_keeps_reason(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "def f(sensors):\n"
                "    for s in sensors:  # reprolint: disable=hot-loop(parity oracle)\n"
                "        pass\n"
            ),
        })
        assert result.ok
        assert len(result.suppressed) == 1
        finding, reason = result.suppressed[0]
        assert finding.rule == "hot-loop"
        assert reason == "parity oracle"

    def test_standalone_pragma_applies_to_next_line(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "def f(sensors):\n"
                "    # reprolint: disable=hot-loop(documented fallback)\n"
                "    for s in sensors:\n"
                "        pass\n"
            ),
        })
        assert result.ok and len(result.suppressed) == 1

    def test_wrong_rule_pragma_does_not_suppress(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "def f(sensors):\n"
                "    for s in sensors:  # reprolint: disable=determinism(nope)\n"
                "        pass\n"
            ),
        })
        assert rules_fired(result) == {"hot-loop"}

    def test_disable_all_suppresses_everything_on_the_line(self, tmp_path):
        result = lint_tree(tmp_path, {
            "src/repro/core/hot.py": (
                "def f(sensors):\n"
                "    for s in sensors:  # reprolint: disable=all\n"
                "        pass\n"
            ),
        })
        assert result.ok and len(result.suppressed) == 1

    def test_pragma_parser_handles_reasons_with_commas(self):
        sup = parse_suppressions(
            "x = 1  # reprolint: disable=hot-loop(a, b, c),determinism\n"
        )
        assert sup[1] == {"hot-loop": "a, b, c", "determinism": None}


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------
VIOLATION = "def f(sensors):\n    for s in sensors:\n        pass\n"


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, tmp_path):
        files = {"src/repro/core/hot.py": VIOLATION}
        first = lint_tree(tmp_path, files)
        assert len(first.findings) == 1
        baseline = tmp_path / "lint-baseline.json"
        assert write_baseline(baseline, first.findings) == 1
        second = run_lint(LintConfig(root=tmp_path, baseline_path=baseline))
        assert second.ok
        assert len(second.baselined) == 1
        assert not second.stale_baseline

    def test_new_finding_beyond_baseline_still_fires(self, tmp_path):
        files = {"src/repro/core/hot.py": VIOLATION}
        first = lint_tree(tmp_path, files)
        baseline = tmp_path / "lint-baseline.json"
        write_baseline(baseline, first.findings)
        # same hazard appears a second time in the same file: only one is
        # grandfathered, the new occurrence fails the pass
        (tmp_path / "src/repro/core/hot.py").write_text(
            VIOLATION + "def g(sensors):\n    for s in sensors:\n        pass\n"
        )
        second = run_lint(LintConfig(root=tmp_path, baseline_path=baseline))
        assert len(second.findings) == 1 and len(second.baselined) == 1

    def test_stale_baseline_entry_is_reported(self, tmp_path):
        files = {"src/repro/core/hot.py": VIOLATION}
        first = lint_tree(tmp_path, files)
        baseline = tmp_path / "lint-baseline.json"
        write_baseline(baseline, first.findings)
        (tmp_path / "src/repro/core/hot.py").write_text("def f(sensors):\n    pass\n")
        second = run_lint(LintConfig(root=tmp_path, baseline_path=baseline))
        assert second.ok
        assert sum(second.stale_baseline.values()) == 1
        assert "regenerate" in format_text(second)

    def test_baseline_version_guard(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "findings": []}')
        with pytest.raises(ValueError, match="version"):
            load_baseline(bad)


# ----------------------------------------------------------------------
# engine / reporting / repo gate
# ----------------------------------------------------------------------
class TestEngineAndReporting:
    def test_rule_subset_runs_only_selected(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {"src/repro/core/hot.py": VIOLATION + "import time\nt = time.time()\n"},
            rules=("determinism",),
        )
        assert rules_fired(result) == {"determinism"}

    def test_unknown_rule_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown lint rule"):
            select_rules(LintConfig(root=tmp_path, rules=("nope",)))

    def test_registry_has_the_six_contract_rules(self):
        assert set(RULES) >= {
            "capability-hook",
            "batch-hook-pairing",
            "determinism",
            "ulp-mixed-math",
            "hot-loop",
            "async-blocking",
        }
        codes = [rule.code for rule in RULES.values()]
        assert len(codes) == len(set(codes))

    def test_json_report_shape(self, tmp_path):
        result = lint_tree(tmp_path, {"src/repro/core/hot.py": VIOLATION})
        payload = json.loads(format_json(result))
        assert payload["ok"] is False
        assert payload["counts"]["findings"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "hot-loop" and finding["code"] == "REP005"
        assert "hot-loop" in payload["rules"]

    def test_text_report_pins_path_and_line(self, tmp_path):
        result = lint_tree(tmp_path, {"src/repro/core/hot.py": VIOLATION})
        text = format_text(result)
        assert "src/repro/core/hot.py:2:" in text and "REP005" in text

    def test_repo_lints_clean_against_committed_baseline(self):
        baseline = REPO_ROOT / "lint-baseline.json"
        config = LintConfig(
            root=REPO_ROOT,
            baseline_path=baseline if baseline.exists() else None,
        )
        result = run_lint(config)
        assert result.modules > 50
        assert result.findings == [], format_text(result)
        assert not result.stale_baseline

    def test_repo_suppressions_all_carry_reasons(self):
        """Grandfathered scalar paths must pin their parity reason."""
        result = run_lint(LintConfig(root=REPO_ROOT))
        assert result.suppressed, "expected the documented scalar parity pragmas"
        for finding, reason in result.suppressed:
            assert reason, f"pragma without a reason at {finding.path}:{finding.line}"
