"""Fused slot pipeline parity: type-blocked gain batches and the shared
world coverage raster vs the per-row (PR-5) masked path.

The contract under test (see ``repro.queries.base`` and
``repro.spatial.raster``):

* ``GreedyAllocator(fused="auto")`` allocations — assignments, values,
  payments — compare ``==`` against ``fused=False`` for every built-in
  query type, dense and sharded: each ``gain_many_block`` implementation
  performs the exact per-pair arithmetic of its ``gain_many``;
* ``WorldRaster.coverage_rows`` reproduces the dense
  ``masks_for_xy`` membership row-for-row (the grid fast path only
  pre-selects candidate cells; the final membership test is identical);
* the **fallback lattice** routes subclasses out of paths their overrides
  invalidate: a batch state overriding only ``gain_many`` never reaches a
  native fused block (``gain_block_trusted``), a valuation state
  overriding only scalar ``gain`` never reaches a native batch state
  (``resolve_batch_state``) — mirroring the relevance-mask lattice pinned
  in ``test_query_geometry_parity.py``;
* ``GreedyAllocator._recompute_net``'s one-pass column cumsum matches the
  sequential Python ``sum`` reference bit-for-bit (zero rows are exact
  no-ops because stored gains are never ``-0.0``).
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_snapshot
from repro.core import GreedyAllocator, ShardedKernel, ValuationKernel
from repro.core.greedy import normalize_fused
from repro.core.monitoring import RegionMonitoringController
from repro.queries import (
    AggregateQueryWorkload,
    BatchGainState,
    EventSlotQuery,
    GainBlock,
    MultiSensorPointQuery,
    PointQuery,
    SensorRoster,
    SpatialAggregateQuery,
    TrajectoryQuery,
    TrajectoryQueryWorkload,
    gain_block_trusted,
    resolve_batch_state,
)
from repro.queries.aggregate import _CoverageBatch, _CoverageState
from repro.sensors import AnnouncementBatch
from repro.spatial import (
    AreaCoverage,
    Location,
    Region,
    Trajectory,
    TrajectoryCoverage,
    WeightedCoverage,
    WorldRaster,
    get_raster,
)

SIDE = 60.0


def random_sensors(rng, n=120, side=SIDE):
    return [
        make_snapshot(
            i,
            x=float(rng.uniform(0, side)),
            y=float(rng.uniform(0, side)),
            cost=float(rng.uniform(1, 10)),
            inaccuracy=float(rng.uniform(0, 0.3)),
            trust=float(rng.uniform(0.4, 1.0)),
        )
        for i in range(n)
    ]


def make_batch(rng, n=120, side=SIDE):
    return AnnouncementBatch(
        ids=np.arange(n, dtype=np.intp),
        xy=rng.uniform(0, side, size=(n, 2)),
        costs=rng.uniform(1, 10, size=n),
        gamma=rng.uniform(0, 0.3, size=n),
        trust=rng.uniform(0.4, 1.0, size=n),
        token=("fused-parity", int(rng.integers(1 << 30))),
        clock=0,
    )


def region_heavy_queries(rng, side=SIDE):
    """Overlapping aggregate + trajectory queries, the fused block's
    target workload."""
    region = Region.from_origin(side, side)
    agg = AggregateQueryWorkload(
        region, budget_factor=6.0, mean_queries=8, count_spread=2,
        sensing_range=9.0, coverage_radius=4.0, min_side=12.0, max_side=26.0,
    )
    traj = TrajectoryQueryWorkload(
        region, budget_factor=6.0, queries_per_slot=3, sensing_range=8.0
    )
    return agg.generate(0, rng) + traj.generate(0, rng)


def every_type_queries(rng, copies=3, side=SIDE):
    """Several queries of every built-in type, so each fused block carries
    multiple members."""
    region = Region.from_origin(side, side)
    queries = []
    for _ in range(copies):
        sub = Region.random_subregion(region, rng, min_side=8, max_side=20)
        trajectory = Trajectory.random(region, rng)
        p = (float(rng.uniform(5, side - 5)), float(rng.uniform(5, side - 5)))
        queries += [
            PointQuery(Location(*p), budget=15.0, dmax=9.0),
            MultiSensorPointQuery(
                Location(p[0] + 2.0, p[1] - 2.0), budget=25.0,
                n_readings=3, dmax=10.0,
            ),
            SpatialAggregateQuery(
                sub, budget=40.0, sensing_range=7.0, coverage_radius=3.5
            ),
            SpatialAggregateQuery(
                sub, budget=35.0, sensing_range=7.0,
                coverage=WeightedCoverage(sub, 3.5, weight_fn=lambda c: 1.0 + c.x),
            ),
            TrajectoryQuery(trajectory, budget=35.0, sensing_range=6.0),
            EventSlotQuery(
                Location(p[0] - 3.0, p[1] + 3.0), budget=20.0,
                required_confidence=0.9, theta_min=0.1, dmax=8.0,
                parent_id="ev-parent",
            ),
        ]
    return queries


def assert_allocations_identical(a, b):
    """Exact (bitwise) equality of two allocation results."""
    assert a.assignments == b.assignments
    assert set(a.selected) == set(b.selected)
    assert a.values == b.values
    assert a.payments == b.payments


# ----------------------------------------------------------------------
# fused vs per-row allocations: every type, dense and sharded
# ----------------------------------------------------------------------
class TestFusedAllocationParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_region_heavy_fused_equals_masked_dense_and_sharded(self, seed):
        rng = np.random.default_rng(1000 + seed)
        queries = region_heavy_queries(rng)
        sensors = random_sensors(rng)
        masked = GreedyAllocator(fused=False).allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        fused = GreedyAllocator(fused="auto").allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        sharded = GreedyAllocator(fused="auto").allocate(
            queries, sensors,
            kernel=ShardedKernel.from_sensors(sensors, cell_size=8.0),
        )
        assert_allocations_identical(fused, masked)
        assert_allocations_identical(sharded, masked)

    @pytest.mark.parametrize("seed", range(6))
    def test_every_builtin_type_fused_equals_masked(self, seed):
        rng = np.random.default_rng(2000 + seed)
        queries = every_type_queries(rng)
        sensors = random_sensors(rng)
        masked = GreedyAllocator(fused=False).allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        fused = GreedyAllocator(fused="auto").allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        sharded = GreedyAllocator(fused="auto").allocate(
            queries, sensors,
            kernel=ShardedKernel.from_sensors(sensors, cell_size=9.0),
        )
        assert_allocations_identical(fused, masked)
        assert_allocations_identical(sharded, masked)

    @pytest.mark.parametrize("seed", range(4))
    def test_batch_announcements_share_the_raster_and_stay_identical(self, seed):
        rng = np.random.default_rng(3000 + seed)
        queries = region_heavy_queries(rng)
        batch = make_batch(rng)
        masked = GreedyAllocator(fused=False).allocate(
            queries, batch, kernel=ValuationKernel.from_sensors(batch)
        )
        kernel = ValuationKernel.from_sensors(batch)
        fused = GreedyAllocator(fused="auto").allocate(queries, batch, kernel=kernel)
        assert_allocations_identical(fused, masked)
        # The raster the kernel used is the batch-attached instance.
        assert kernel.raster is get_raster(batch, batch.xy)

    def test_normalize_fused(self):
        assert normalize_fused(None) == "auto"
        assert normalize_fused(True) == "auto"
        assert normalize_fused("auto") == "auto"
        assert normalize_fused(False) is False
        with pytest.raises(ValueError):
            normalize_fused("sometimes")
        assert GreedyAllocator().fused == "auto"
        assert GreedyAllocator(fused=False).fused is False


# ----------------------------------------------------------------------
# world raster: CSR coverage rows vs dense masks, containment caches
# ----------------------------------------------------------------------
class TestWorldRasterRows:
    @pytest.mark.parametrize("seed", range(5))
    def test_coverage_rows_match_dense_masks(self, seed):
        rng = np.random.default_rng(4000 + seed)
        xy = rng.uniform(-5, SIDE + 5, size=(80, 2))  # includes out-of-region
        raster = WorldRaster(xy)
        region = Region.random_subregion(
            Region.from_origin(SIDE, SIDE), rng, min_side=8, max_side=24
        )
        trajectory = Trajectory.random(Region.from_origin(SIDE, SIDE), rng)
        functions = [
            AreaCoverage(region, sensing_range=5.0),
            WeightedCoverage(region, 5.0, weight_fn=lambda c: 1.0 + c.y),
            TrajectoryCoverage(trajectory, sensing_range=4.0, spacing=1.5),
        ]
        cols = np.sort(rng.choice(len(xy), size=50, replace=False))
        for fn in functions:
            indptr, cells = raster.coverage_rows(fn, cols)
            masks = fn.masks_for(xy[cols])
            for i in range(len(cols)):
                row = cells[indptr[i]:indptr[i + 1]]
                expected = np.flatnonzero(masks[i])
                assert np.array_equal(row, expected), type(fn).__name__
            # Cached and read-only.
            again = raster.coverage_rows(fn, cols)
            assert again[0] is indptr and again[1] is cells
            assert not indptr.flags.writeable and not cells.flags.writeable

    def test_subclassed_coverage_uses_the_dense_fallback(self):
        """The grid fast path trusts exact types only; a subclass that
        re-rasterizes arbitrarily still gets correct rows."""

        class SparseCoverage(AreaCoverage):
            def masks_for(self, locations):
                masks = super().masks_for(locations)
                masks[:, ::2] = False  # drop every even cell
                return masks

        rng = np.random.default_rng(77)
        xy = rng.uniform(0, 30, size=(40, 2))
        raster = WorldRaster(xy)
        fn = SparseCoverage(Region.from_origin(30, 30), sensing_range=6.0)
        cols = np.arange(40)
        indptr, cells = raster.coverage_rows(fn, cols)
        masks = fn.masks_for(xy)
        for i in range(len(cols)):
            assert np.array_equal(
                cells[indptr[i]:indptr[i + 1]], np.flatnonzero(masks[i])
            )
        assert cells.size and np.all(cells % 2 == 1)

    def test_containment_caches_and_sharing(self):
        rng = np.random.default_rng(88)
        batch = make_batch(rng, n=60)
        region = Region(10, 10, 40, 35)
        kernel = ValuationKernel.from_sensors(batch)
        raster = kernel.raster
        # One instance per announcement batch, shared with the sharded
        # kernel and the monitoring controllers.
        assert raster is get_raster(batch, batch.xy)
        assert ShardedKernel.from_sensors(batch, cell_size=10.0).raster is raster
        ext = raster.exterior_distance_sq(region)
        assert raster.exterior_distance_sq(region) is ext
        assert np.array_equal(ext, region.exterior_distance_sq(batch.xy))
        contains = raster.contains_mask(region)
        assert raster.contains_mask(region) is contains
        assert np.array_equal(contains, region.contains_many(batch.xy))
        assert not ext.flags.writeable and not contains.flags.writeable

    def test_region_controller_counts_unchanged(self):
        """`region_counts` through the raster equals the per-query
        relevant_mask scan it replaced."""
        from repro.datasets import build_intel_scenario
        from repro.queries import RegionMonitoringQuery

        rng = np.random.default_rng(99)
        sensors = random_sensors(rng, n=50, side=40.0)
        world = build_intel_scenario(9, n_sensors=10, n_slots=5)
        queries = [
            RegionMonitoringQuery(
                region=Region.random_subregion(
                    Region.from_origin(40.0, 40.0), rng, min_side=8, max_side=20
                ),
                t1=0, t2=9, budget=30.0, gp=world.gp,
            )
            for _ in range(4)
        ]
        controller = RegionMonitoringController()
        counts = controller.region_counts(queries, sensors, t=0)
        xy = np.asarray([(s.location.x, s.location.y) for s in sensors])
        expected = np.zeros(len(sensors), dtype=np.int64)
        for q in queries:
            expected += q.relevant_mask(xy)
        assert counts == {
            s.sensor_id: int(k) for s, k in zip(sensors, expected)
        }


# ----------------------------------------------------------------------
# the fallback lattice: overrides route out of the fused path
# ----------------------------------------------------------------------
class TestFallbackLattice:
    def test_builtin_blocks_are_trusted(self):
        from repro.queries.aggregate import _CoverageBatch
        from repro.queries.event import _EventBatch
        from repro.queries.point import _BestSensorBatch, _TopKBatch

        for cls in (_CoverageBatch, _EventBatch, _BestSensorBatch, _TopKBatch):
            assert gain_block_trusted(cls), cls.__name__

    def test_gain_many_override_distrusts_the_inherited_block(self):
        class RowOverride(_CoverageBatch):
            def gain_many(self, indices):
                return super().gain_many(indices)

        assert not gain_block_trusted(RowOverride)

        class RowAndBlockOverride(RowOverride):
            @classmethod
            def block(cls, members):
                return GainBlock(members)

        assert gain_block_trusted(RowAndBlockOverride)

    def test_scalar_gain_override_distrusts_the_inherited_batch(self):
        class ScalarOverride(_CoverageState):
            def gain(self, snapshot):
                return super().gain(snapshot)

        rng = np.random.default_rng(5)
        sensors = random_sensors(rng, n=10, side=20.0)
        query = SpatialAggregateQuery(
            Region(2, 2, 15, 15), budget=20.0, sensing_range=5.0
        )
        roster = SensorRoster(sensors)
        generic = resolve_batch_state(ScalarOverride(query), roster)
        assert type(generic) is BatchGainState
        native = resolve_batch_state(_CoverageState(query), roster)
        assert type(native) is _CoverageBatch

    @pytest.mark.parametrize("seed", range(3))
    def test_gain_many_override_is_honoured_end_to_end(self, seed):
        """Aggregate queries whose batch state overrides only ``gain_many``
        must be evaluated through it (generic row-looping GainBlock), with
        allocations identical to the per-row path."""
        calls = []

        class TracingBatch(_CoverageBatch):
            def gain_many(self, indices):
                calls.append(len(indices))
                return super().gain_many(indices)

        class TracingState(_CoverageState):
            def batch(self, roster):
                return TracingBatch(self, roster)

        class TracingAggregate(SpatialAggregateQuery):
            def new_state(self):
                return TracingState(self)

        rng = np.random.default_rng(6000 + seed)
        sensors = random_sensors(rng, n=90, side=40.0)
        world = Region.from_origin(40.0, 40.0)
        queries = [
            TracingAggregate(
                Region.random_subregion(world, rng, min_side=10, max_side=20),
                budget=45.0, sensing_range=7.0, coverage_radius=3.5,
            )
            for _ in range(5)
        ]
        fused = GreedyAllocator(fused="auto").allocate(queries, sensors)
        assert calls, "override was never routed through"
        fused_calls = len(calls)
        calls.clear()
        masked = GreedyAllocator(fused=False).allocate(queries, sensors)
        assert calls, "per-row path must call gain_many too"
        assert fused_calls and len(calls)
        assert_allocations_identical(fused, masked)

    @pytest.mark.parametrize("seed", range(3))
    def test_scalar_gain_override_is_honoured_end_to_end(self, seed):
        """A valuation state overriding only scalar ``gain`` is batched via
        the generic per-snapshot BatchGainState, fused or not."""
        calls = []

        class ScalarTracingState(_CoverageState):
            def gain(self, snapshot):
                calls.append(snapshot.sensor_id)
                return super().gain(snapshot)

        class ScalarTracingAggregate(SpatialAggregateQuery):
            def new_state(self):
                return ScalarTracingState(self)

        rng = np.random.default_rng(7000 + seed)
        sensors = random_sensors(rng, n=60, side=40.0)
        world = Region.from_origin(40.0, 40.0)
        sub = Region.random_subregion(world, rng, min_side=10, max_side=20)
        traced = [
            ScalarTracingAggregate(
                sub, budget=45.0, sensing_range=7.0, coverage_radius=3.5,
                query_id=f"trace-{i}",
            )
            for i in range(3)
        ]
        plain = [
            SpatialAggregateQuery(
                sub, budget=45.0, sensing_range=7.0, coverage_radius=3.5,
                query_id=f"trace-{i}",
            )
            for i in range(3)
        ]
        fused = GreedyAllocator(fused="auto").allocate(traced, sensors)
        assert calls, "scalar override was never routed through"
        reference = GreedyAllocator(fused="auto").allocate(plain, sensors)
        # Aggregate scalar and batch gains share one arithmetic path, so
        # the traced slot must still allocate identically.
        assert_allocations_identical(fused, reference)


# ----------------------------------------------------------------------
# _recompute_net: one-pass cumsum vs the sequential reference
# ----------------------------------------------------------------------
class TestRecomputeNet:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_sequential_sum_bitwise(self, seed):
        rng = np.random.default_rng(8000 + seed)
        n_queries, n = 37, 53
        gain_matrix = rng.uniform(0.0, 1.0, size=(n_queries, n))
        # Adversarial magnitudes: summation order matters.
        gain_matrix *= 10.0 ** rng.integers(-12, 12, size=(n_queries, n))
        gain_matrix[rng.random((n_queries, n)) < 0.6] = 0.0
        gain_matrix[rng.choice(n_queries, size=10)] = 0.0  # whole zero rows
        costs = rng.uniform(0.5, 5.0, size=n)
        columns = np.sort(rng.choice(n, size=30, replace=False))
        net = np.zeros(n)
        GreedyAllocator._recompute_net(gain_matrix, costs, columns, net)
        for j in columns:
            total = 0.0
            for i in range(n_queries):
                g = gain_matrix[i, j]
                if g != 0.0:
                    total += g
            assert net[j] == total - costs[j]

    def test_all_zero_columns(self):
        gain_matrix = np.zeros((4, 6))
        costs = np.arange(6, dtype=float) + 1.0
        net = np.full(6, np.nan)
        GreedyAllocator._recompute_net(
            gain_matrix, costs, np.arange(6), net
        )
        assert np.array_equal(net, -costs)
