"""Phenomena substrate: GP fields, synthetic datasets, regression models."""

from .fields import INTEL_LAB_REGION, CorrelatedField, stationary_deployment
from .gaussian_process import (
    GaussianProcessField,
    GPHyperParameters,
    MaternKernel,
    RBFKernel,
    VarianceReductionState,
    fit_hyperparameters,
)
from .sampling_times import schedule_for_window, select_sampling_times
from .timeseries import (
    HarmonicRegressionModel,
    OzoneTraceSynthesizer,
    residual_sum_of_squares,
)

__all__ = [
    "RBFKernel",
    "MaternKernel",
    "GaussianProcessField",
    "GPHyperParameters",
    "VarianceReductionState",
    "fit_hyperparameters",
    "CorrelatedField",
    "stationary_deployment",
    "INTEL_LAB_REGION",
    "OzoneTraceSynthesizer",
    "HarmonicRegressionModel",
    "residual_sum_of_squares",
    "select_sampling_times",
    "schedule_for_window",
]
