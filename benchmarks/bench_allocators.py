"""Micro-benchmarks: per-slot allocation cost of each scheduling algorithm.

Four frozen slots are timed: the historical 300 queries x 200 sensors
case, the paper-scale RNC slot (300 queries x 635 sensors) where the
vectorized greedy's batch-gain protocol is the headline, the large-fleet
slot (300 localized queries x 20000 sensors) where the spatially sharded
kernel is, and the region-heavy slot (20 large aggregate/trajectory
queries x 20000 sensors) where the batch-relevance masks are.  The suite
also asserts hard floors — vectorized greedy at least 3x the scalar
reference at paper scale, the sharded kernel at least 5x the dense kernel
at large-fleet scale, the array-backed cold slot (announcement build +
kernel build) at least 15x the per-sensor object walk at 20k sensors, the
mask-driven region-heavy slot at least 3x the scalar-relevance reference
(measured ~35-40x), and preallocated slot workspaces cutting a warm greedy
call's seam-routed temporary allocations at least 5x versus pass-through
mode (measured: to zero) — all with identical (region-heavy and workspace:
exactly ``==``) allocations/arrays — and emits a ``BENCH_allocators.json``
perf trajectory (per-case mean/stdev seconds) so future changes have
numbers to compare against.  Set ``REPRO_BENCH_JSON`` to choose the output
path.

Run:  pytest benchmarks/bench_allocators.py --benchmark-only -s
"""

from __future__ import annotations

import json
import os
import statistics
import time

import numpy as np
import pytest

from repro.backend import InstrumentedNumpyBackend, use_backend
from repro.core import (
    BaselineAllocator,
    GreedyAllocator,
    LocalSearchPointAllocator,
    OptimalPointAllocator,
    ShardedKernel,
    ValuationKernel,
)
from repro.mobility import ChurnMobility, RandomWaypointMobility
from repro.queries import (
    AggregateQueryWorkload,
    PointQueryWorkload,
    TrajectoryQueryWorkload,
)
from repro.sensors import FleetConfig, SensorFleet, SensorSnapshot
from repro.spatial import Region

_RESULTS: dict[str, dict[str, float]] = {}


def _record_case(name: str, mean: float, stdev: float, rounds: int) -> None:
    _RESULTS[name] = {
        "mean_seconds": float(mean),
        "stdev_seconds": float(stdev),
        "rounds": int(rounds),
    }


def _record_benchmark(name: str, benchmark) -> None:
    """Record a pytest-benchmark case (no-op under --benchmark-disable,
    where ``benchmark.stats`` is None)."""
    if benchmark.stats is None:
        return
    stats = benchmark.stats.stats
    _record_case(name, stats.mean, stats.stddev, stats.rounds)


@pytest.fixture(scope="session", autouse=True)
def bench_trajectory_json():
    """Write the per-case timing table after the whole bench session."""
    yield
    if not _RESULTS:
        return
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_allocators.json")
    with open(path, "w") as fh:
        json.dump(_RESULTS, fh, indent=2, sort_keys=True)
    print(f"\nwrote {len(_RESULTS)} bench cases to {path}")


def make_slot(n_queries: int, n_sensors: int, side: float = 50.0):
    rng = np.random.default_rng(2013)
    region = Region.from_origin(side, side)
    sensors = [
        SensorSnapshot(
            i,
            region.sample_location(rng),
            10.0,
            float(rng.uniform(0, 0.2)),
            1.0,
        )
        for i in range(n_sensors)
    ]
    queries = PointQueryWorkload(
        region, n_queries=n_queries, budget=15.0, dmax=5.0
    ).generate(0, rng)
    return queries, sensors


@pytest.fixture(scope="module")
def slot():
    return make_slot(300, 200)


@pytest.fixture(scope="module")
def paper_slot():
    """The paper's RNC scale: 635 sensors announcing, 300 point queries."""
    return make_slot(300, 635)


@pytest.mark.parametrize(
    "allocator",
    [
        OptimalPointAllocator(),
        LocalSearchPointAllocator(),
        GreedyAllocator(),
        BaselineAllocator(),
    ],
    ids=["optimal", "local_search", "greedy", "baseline"],
)
def test_allocator_slot_cost(benchmark, slot, allocator):
    queries, sensors = slot
    result = benchmark(allocator.allocate, queries, sensors)
    assert result.total_utility >= 0.0
    _record_benchmark(f"{allocator.name.lower()}_300x200", benchmark)


@pytest.mark.parametrize(
    "allocator,case",
    [
        (GreedyAllocator(), "greedy_vectorized_300x635"),
        (GreedyAllocator(vectorized=False), "greedy_scalar_300x635"),
        (BaselineAllocator(), "baseline_300x635"),
    ],
    ids=["greedy_vectorized", "greedy_scalar", "baseline"],
)
def test_allocator_paper_scale_cost(benchmark, paper_slot, allocator, case):
    queries, sensors = paper_slot
    result = benchmark(allocator.allocate, queries, sensors)
    assert result.total_utility >= 0.0
    _record_benchmark(case, benchmark)


def test_greedy_vectorized_speedup_at_paper_scale(paper_slot):
    """Hard floor: the batch-gain greedy must be >= 3x the scalar path on
    the paper-scale slot, with identical allocations."""
    queries, sensors = paper_slot
    vectorized = GreedyAllocator(verify=False)
    scalar = GreedyAllocator(verify=False, vectorized=False)

    # Interleave the two paths so clock-frequency drift or co-tenant noise
    # hits both equally; best-of-N on each side filters the spikes.
    fast, slow = [], []
    for _ in range(7):
        start = time.perf_counter()
        vectorized.allocate(queries, sensors)
        fast.append(time.perf_counter() - start)
        start = time.perf_counter()
        scalar.allocate(queries, sensors)
        slow.append(time.perf_counter() - start)
    _record_case(
        "greedy_vectorized_noverify_300x635",
        statistics.mean(fast), statistics.stdev(fast), len(fast),
    )
    _record_case(
        "greedy_scalar_noverify_300x635",
        statistics.mean(slow), statistics.stdev(slow), len(slow),
    )
    speedup = min(slow) / min(fast)
    print(
        f"\ngreedy slot 300x635: scalar {min(slow)*1e3:.1f} ms, "
        f"vectorized {min(fast)*1e3:.1f} ms, speedup {speedup:.1f}x"
    )

    # Sensor picks and assignment sets match exactly; recorded values and
    # cost shares may differ in the final ulp (np.hypot vs math.hypot —
    # same tolerance the parity suite documents).
    a = vectorized.allocate(queries, sensors)
    b = scalar.allocate(queries, sensors)
    assert a.assignments == b.assignments
    assert set(a.selected) == set(b.selected)
    assert a.values.keys() == b.values.keys()
    for qid, value in b.values.items():
        assert a.values[qid] == pytest.approx(value, rel=1e-12, abs=1e-12)
    assert a.payments.keys() == b.payments.keys()
    for key, payment in b.payments.items():
        assert a.payments[key] == pytest.approx(payment, rel=1e-12, abs=1e-12)

    assert speedup >= 3.0, (
        f"batch-gain greedy ({min(fast)*1e3:.1f} ms) must be >= 3x the "
        f"scalar reference ({min(slow)*1e3:.1f} ms); got {speedup:.2f}x"
    )


@pytest.fixture(scope="module")
def large_fleet_slot():
    """Production-scale fleet, localized queries: 20k sensors announcing
    over a 400x400 region, 300 point queries with dmax 5 — each query can
    reach ~0.015% of the fleet, the regime sharding is built for."""
    return make_slot(300, 20000, side=400.0)


def test_sharded_large_fleet_speedup(large_fleet_slot):
    """Hard floor: the grid-sharded kernel must be >= 5x the dense kernel
    on the large-fleet localized slot, with bit-identical allocations."""
    queries, sensors = large_fleet_slot
    allocator = GreedyAllocator(verify=False)
    dense_kernel = ValuationKernel.from_sensors(sensors)
    sharded_kernel = ShardedKernel.from_sensors(sensors)

    # Bit-identical allocations first (this also warms the lazy shard grid).
    a = allocator.allocate(queries, sensors, kernel=sharded_kernel)
    b = allocator.allocate(queries, sensors, kernel=dense_kernel)
    assert a.assignments == b.assignments
    assert set(a.selected) == set(b.selected)
    assert a.values == b.values
    assert a.payments == b.payments

    # Interleaved best-of-N timing of the warm slot path (the engine reuses
    # kernels across slots; the cold path is recorded separately below).
    fast, slow = [], []
    for _ in range(5):
        start = time.perf_counter()
        allocator.allocate(queries, sensors, kernel=sharded_kernel)
        fast.append(time.perf_counter() - start)
        start = time.perf_counter()
        allocator.allocate(queries, sensors, kernel=dense_kernel)
        slow.append(time.perf_counter() - start)
    _record_case(
        "greedy_sharded_300x20000",
        statistics.mean(fast), statistics.stdev(fast), len(fast),
    )
    _record_case(
        "greedy_dense_300x20000",
        statistics.mean(slow), statistics.stdev(slow), len(slow),
    )
    speedup = min(slow) / min(fast)
    print(
        f"\ngreedy slot 300x20000: dense {min(slow)*1e3:.1f} ms, "
        f"sharded {min(fast)*1e3:.1f} ms, speedup {speedup:.1f}x "
        f"({sharded_kernel.n_shards} shards, "
        f"cell {sharded_kernel.resolved_cell_size:.2f})"
    )

    # Cold-slot reference: kernel build + shard grid from scratch each
    # round, the worst case for a fully mobile fleet.
    cold = []
    for _ in range(3):
        start = time.perf_counter()
        allocator.allocate(
            queries, sensors, kernel=ShardedKernel.from_sensors(sensors)
        )
        cold.append(time.perf_counter() - start)
    _record_case(
        "greedy_sharded_cold_300x20000",
        statistics.mean(cold), statistics.stdev(cold), len(cold),
    )

    assert speedup >= 5.0, (
        f"sharded kernel ({min(fast)*1e3:.1f} ms) must be >= 5x the dense "
        f"kernel ({min(slow)*1e3:.1f} ms) at 20k sensors; got {speedup:.2f}x"
    )


@pytest.fixture(scope="module")
def region_heavy_slot():
    """The batch-relevance regime: 20k sensors announcing over 400x400,
    ~20 *large* aggregate/trajectory queries (24-48-side regions, long
    corridors).  Without masks every query re-scans all 20k candidates
    through scalar ``relevant`` and the coverage states rasterize per
    sensor; with them relevance is one vectorized pass per query and the
    coverage-mask matrices build straight from the stacked arrays."""
    rng = np.random.default_rng(2013)
    region = Region.from_origin(400.0, 400.0)
    sensors = [
        SensorSnapshot(
            i,
            region.sample_location(rng),
            10.0,
            float(rng.uniform(0, 0.2)),
            1.0,
        )
        for i in range(20000)
    ]
    aggregates = AggregateQueryWorkload(
        region, budget_factor=2.5, mean_queries=16, count_spread=0,
        sensing_range=10.0, coverage_radius=5.0, min_side=24.0, max_side=48.0,
    ).generate(0, rng)
    trajectories = TrajectoryQueryWorkload(
        region, budget_factor=2.5, queries_per_slot=4, sensing_range=10.0
    ).generate(0, rng)
    return aggregates + trajectories, sensors


def test_region_heavy_masked_speedup(region_heavy_slot):
    """Hard floor: the mask-driven batch path must be >= 3x the scalar-
    relevance reference on the region-heavy 20k-sensor slot, with exactly
    identical (``==``) allocations, values and payments — dense and
    sharded, greedy and baseline.  (Aggregate/trajectory arithmetic is
    bit-identical between the scalar and batch paths, so this comparison
    is exact, not approximate.)"""
    queries, sensors = region_heavy_slot
    masked = GreedyAllocator(verify=False, fused=False)
    scalar = GreedyAllocator(verify=False, vectorized=False)
    dense_kernel = ValuationKernel.from_sensors(sensors)
    sharded_kernel = ShardedKernel.from_sensors(sensors)

    # Masked path, dense and sharded: best-of-3 each (also warms caches).
    fast_dense, fast_sharded = [], []
    for _ in range(3):
        start = time.perf_counter()
        a = masked.allocate(queries, sensors, kernel=dense_kernel)
        fast_dense.append(time.perf_counter() - start)
        start = time.perf_counter()
        b = masked.allocate(queries, sensors, kernel=sharded_kernel)
        fast_sharded.append(time.perf_counter() - start)
    # Scalar-relevance reference: one round — it is minutes-per-round slow
    # at this scale (which is exactly the point), and the floor is 3x
    # while the measured gap is an order of magnitude wider.
    start = time.perf_counter()
    c = scalar.allocate(queries, sensors, kernel=dense_kernel)
    slow = time.perf_counter() - start

    assert a.assignments == c.assignments
    assert set(a.selected) == set(c.selected)
    assert a.values == c.values
    assert a.payments == c.payments
    assert b.assignments == a.assignments
    assert b.values == a.values
    assert b.payments == a.payments

    x = BaselineAllocator().allocate(queries, sensors, kernel=dense_kernel)
    y = BaselineAllocator().allocate(queries, sensors, kernel=sharded_kernel)
    assert y.assignments == x.assignments
    assert y.values == x.values
    assert y.payments == x.payments

    _record_case(
        "greedy_masked_region_20x20000",
        statistics.mean(fast_dense), statistics.stdev(fast_dense), len(fast_dense),
    )
    _record_case(
        "greedy_masked_sharded_region_20x20000",
        statistics.mean(fast_sharded), statistics.stdev(fast_sharded), len(fast_sharded),
    )
    _record_case("greedy_scalar_region_20x20000", slow, 0.0, 1)
    speedup = slow / min(fast_dense)
    print(
        f"\nregion-heavy slot {len(queries)}x20000: scalar {slow:.2f} s, "
        f"masked dense {min(fast_dense)*1e3:.0f} ms, "
        f"masked sharded {min(fast_sharded)*1e3:.0f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, (
        f"mask-driven greedy ({min(fast_dense):.2f} s) must be >= 3x the "
        f"scalar-relevance reference ({slow:.2f} s); got {speedup:.2f}x"
    )


@pytest.fixture(scope="module")
def region_storm_slot():
    """The fused-pipeline regime: 20k sensors announcing over 400x400 and
    128 overlapping aggregate queries.  Per greedy round dozens of same-
    type rows go dirty at once; the per-row masked path pays one
    ``gain_many`` call (plus its own mask matrix) per dirty row, while the
    fused path evaluates all dirty (query, sensor) pairs in one
    ``gain_many_block`` pass over the shared world raster's CSR coverage
    rows."""
    rng = np.random.default_rng(2013)
    region = Region.from_origin(400.0, 400.0)
    sensors = [
        SensorSnapshot(
            i,
            region.sample_location(rng),
            10.0,
            float(rng.uniform(0, 0.2)),
            1.0,
        )
        for i in range(20000)
    ]
    aggregates = AggregateQueryWorkload(
        region, budget_factor=2.5, mean_queries=128, count_spread=0,
        sensing_range=10.0, coverage_radius=5.0, min_side=24.0, max_side=48.0,
    ).generate(0, rng)
    return aggregates, sensors


def test_fused_region_heavy_speedup(region_storm_slot):
    """Hard floor: the fused block pipeline must be >= 2x the per-row
    masked (``fused=False``) path on the 128-aggregate 20k-sensor storm
    slot, with exactly identical (``==``) allocations, values and payments
    — dense and sharded."""
    queries, sensors = region_storm_slot
    fused = GreedyAllocator(verify=False, fused="auto")
    masked = GreedyAllocator(verify=False, fused=False)
    dense_kernel = ValuationKernel.from_sensors(sensors)
    sharded_kernel = ShardedKernel.from_sensors(sensors)

    # Interleaved best-of-3 (also warms the raster/shard caches; the slot
    # engine reuses kernels across slots, so the warm path is the one that
    # matters — and the raster rebuild is part of round one either way).
    fast, slow, fast_sharded = [], [], []
    for _ in range(3):
        start = time.perf_counter()
        a = fused.allocate(queries, sensors, kernel=dense_kernel)
        fast.append(time.perf_counter() - start)
        start = time.perf_counter()
        b = masked.allocate(queries, sensors, kernel=dense_kernel)
        slow.append(time.perf_counter() - start)
        start = time.perf_counter()
        c = fused.allocate(queries, sensors, kernel=sharded_kernel)
        fast_sharded.append(time.perf_counter() - start)

    assert a.assignments == b.assignments
    assert set(a.selected) == set(b.selected)
    assert a.values == b.values
    assert a.payments == b.payments
    assert c.assignments == b.assignments
    assert c.values == b.values
    assert c.payments == b.payments

    _record_case(
        "greedy_fused_storm_128x20000",
        statistics.mean(fast), statistics.stdev(fast), len(fast),
    )
    _record_case(
        "greedy_masked_storm_128x20000",
        statistics.mean(slow), statistics.stdev(slow), len(slow),
    )
    _record_case(
        "greedy_fused_sharded_storm_128x20000",
        statistics.mean(fast_sharded), statistics.stdev(fast_sharded),
        len(fast_sharded),
    )
    speedup = min(slow) / min(fast)
    print(
        f"\nregion storm slot {len(queries)}x20000: masked {min(slow)*1e3:.0f} ms, "
        f"fused {min(fast)*1e3:.0f} ms, "
        f"fused sharded {min(fast_sharded)*1e3:.0f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 2.0, (
        f"fused pipeline ({min(fast)*1e3:.0f} ms) must be >= 2x the per-row "
        f"masked path ({min(slow)*1e3:.0f} ms); got {speedup:.2f}x"
    )


def test_warm_round_workspace_allocations(region_storm_slot):
    """Hard floor: preallocated slot workspaces must cut the seam-routed
    temporary allocations of a warm greedy call on the 128-aggregate
    20k-sensor storm slot by >= 5x versus pass-through mode, with exactly
    identical (``==``) allocations, values and payments.  Wall-clock for
    both settings is recorded in the trajectory (``warm_round_workspace_*``)
    but not floor-gated — the headline here is allocator pressure, which is
    deterministic on 1-core CI where timing is not."""
    queries, sensors = region_storm_slot
    kernel = ValuationKernel.from_sensors(sensors)

    def metered_warm_call(allocator):
        # Warm-up call outside the meter: arenas grow to their high-water
        # shapes, the raster/coverage caches build.
        allocator.allocate(queries, sensors, kernel=kernel)
        meter = InstrumentedNumpyBackend()
        with use_backend(meter):
            start = time.perf_counter()
            result = allocator.allocate(queries, sensors, kernel=kernel)
            elapsed = time.perf_counter() - start
        snapshot = meter.snapshot()
        count = sum(c for c, _ in snapshot.values())
        nbytes = sum(b for _, b in snapshot.values())
        return result, count, nbytes, elapsed

    a, count_on, bytes_on, time_on = metered_warm_call(
        GreedyAllocator(verify=False, workspace="auto")
    )
    b, count_off, bytes_off, time_off = metered_warm_call(
        GreedyAllocator(verify=False, workspace=False)
    )

    # The hard contract first: the workspace is invisible in the results.
    assert a.assignments == b.assignments
    assert set(a.selected) == set(b.selected)
    assert a.values == b.values
    assert a.payments == b.payments

    _record_case("warm_round_workspace_on_128x20000", time_on, 0.0, 1)
    _record_case("warm_round_workspace_off_128x20000", time_off, 0.0, 1)
    ratio = count_off / max(count_on, 1)
    print(
        f"\nwarm greedy call 128x20000: workspace off {count_off} allocs "
        f"({bytes_off} B, {time_off*1e3:.0f} ms), on {count_on} allocs "
        f"({bytes_on} B, {time_on*1e3:.0f} ms), {ratio:.1f}x fewer"
    )
    assert count_off >= 5 * max(count_on, 1), (
        f"slot workspaces must cut warm-call temporary allocations >= 5x: "
        f"off={count_off}, on={count_on} ({ratio:.2f}x)"
    )


def test_batch_cold_slot_speedup():
    """Hard floor: the array-backed cold slot — announcement build plus
    kernel build, the phase a fully mobile fleet pays from scratch every
    slot — must be >= 15x the per-sensor object walk at 20k sensors, with
    identical announcement arrays (measured ~70x on the dev box)."""
    region = Region.from_origin(400, 400)
    rng = np.random.default_rng(2013)
    fleet = SensorFleet(
        RandomWaypointMobility(region, 20000, rng), region, FleetConfig(), rng
    )
    # The object path's materials, prebuilt once the way the historical
    # fleet held them: Sensor objects plus per-slot Location lists.
    sensor_objs = fleet.sensors
    working_region = fleet.working_region

    def object_path() -> ValuationKernel:
        snapshots = []
        for sensor, location in zip(sensor_objs, fleet.mobility.locations()):
            if sensor.is_exhausted:
                continue
            if not working_region.contains(location):
                continue
            snapshots.append(sensor.snapshot(location, fleet.clock))
        return ValuationKernel.from_sensors(snapshots)

    def batch_path() -> ValuationKernel:
        return ValuationKernel.from_batch(fleet.announcements())

    # Identical stacked arrays first (also warms both paths).
    a, b = batch_path(), object_path()
    assert np.array_equal(a.sensor_xy, b.sensor_xy)
    assert np.array_equal(a.costs, b.costs)
    assert np.array_equal(a.gamma, b.gamma)
    assert np.array_equal(a.trust, b.trust)
    assert [s.sensor_id for s in b.sensors] == list(a.sensors.ids)

    fast, slow = [], []
    for _ in range(5):
        start = time.perf_counter()
        batch_path()
        fast.append(time.perf_counter() - start)
        start = time.perf_counter()
        object_path()
        slow.append(time.perf_counter() - start)
    _record_case(
        "cold_slot_batch_20000",
        statistics.mean(fast), statistics.stdev(fast), len(fast),
    )
    _record_case(
        "cold_slot_object_20000",
        statistics.mean(slow), statistics.stdev(slow), len(slow),
    )
    speedup = min(slow) / min(fast)
    print(
        f"\ncold slot 20000 sensors: object {min(slow)*1e3:.1f} ms, "
        f"batch {min(fast)*1e3:.1f} ms, speedup {speedup:.1f}x"
    )

    # The sharded cold build rides the same batch: record its trajectory
    # (grid construction is shared work on top of the batch arrays).
    cold = []
    for _ in range(3):
        start = time.perf_counter()
        ShardedKernel.from_batch(fleet.announcements())
        cold.append(time.perf_counter() - start)
    _record_case(
        "cold_slot_batch_sharded_20000",
        statistics.mean(cold), statistics.stdev(cold), len(cold),
    )

    assert speedup >= 15.0, (
        f"batch cold slot ({min(fast)*1e3:.2f} ms) must be >= 15x the "
        f"object walk ({min(slow)*1e3:.1f} ms) at 20k sensors; got "
        f"{speedup:.2f}x"
    )


def test_incremental_warm_slot_speedup():
    """Hard floor: the differential slot state — delta announce, patched
    sharded kernel, spliced raster relevance/coverage for a standing
    aggregate workload — must make a warm slot >= 5x faster than the full
    per-slot rebuild at 20k sensors with ~1% churn, with exactly identical
    (``==``) allocations and payments on every measured slot."""
    region = Region.from_origin(400.0, 400.0)

    def make_fleet():
        rng = np.random.default_rng(2013)
        return SensorFleet(
            ChurnMobility(region, 20000, rng, fraction=0.01),
            region,
            FleetConfig(),
            rng,
        )

    fleet_full, fleet_inc = make_fleet(), make_fleet()
    queries = AggregateQueryWorkload(
        region, budget_factor=2.5, mean_queries=64, count_spread=0,
        sensing_range=10.0, coverage_radius=5.0, min_side=24.0, max_side=48.0,
    ).generate(0, np.random.default_rng(7))

    def touch(kernel):
        """The slot's raster relevance + coverage materialization for the
        standing queries — the rebuild-vs-splice workload under test."""
        raster = kernel.raster
        for q in queries:
            d2 = raster.exterior_distance_sq(q.region)
            cols = np.flatnonzero(d2 <= q.sensing_range * q.sensing_range)
            raster.coverage_rows(q.coverage, cols)

    def full_slot(kernel):
        batch = fleet_full.announcements()
        kernel = ShardedKernel.ensure(kernel, batch)
        touch(kernel)
        return kernel

    def incremental_slot(kernel):
        batch, delta = fleet_inc.announcements_with_delta()
        kernel = ShardedKernel.ensure_delta(kernel, batch, delta)
        touch(kernel)
        return kernel

    # Slot 0 (cold, untimed) warms both sides identically.
    kernel_full = full_slot(None)
    kernel_inc = incremental_slot(None)
    allocator = GreedyAllocator(verify=False)

    fast, slow = [], []
    for t in range(4):
        fleet_full.advance()
        fleet_inc.advance()
        start = time.perf_counter()
        kernel_full = full_slot(kernel_full)
        slow.append(time.perf_counter() - start)
        start = time.perf_counter()
        kernel_inc = incremental_slot(kernel_inc)
        fast.append(time.perf_counter() - start)
        # Bit-identical allocations every measured slot (untimed).
        a = allocator.allocate(queries, kernel_full.sensors, kernel=kernel_full)
        b = allocator.allocate(queries, kernel_inc.sensors, kernel=kernel_inc)
        assert a.assignments == b.assignments
        assert set(a.selected) == set(b.selected)
        assert a.values == b.values
        assert a.payments == b.payments

    _record_case(
        "warm_slot_incremental_64x20000",
        statistics.mean(fast), statistics.stdev(fast), len(fast),
    )
    _record_case(
        "warm_slot_rebuild_64x20000",
        statistics.mean(slow), statistics.stdev(slow), len(slow),
    )
    speedup = min(slow) / min(fast)
    print(
        f"\nwarm slot 20000 sensors @1% churn: rebuild {min(slow)*1e3:.1f} ms, "
        f"incremental {min(fast)*1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0, (
        f"incremental warm slot ({min(fast)*1e3:.1f} ms) must be >= 5x the "
        f"full rebuild ({min(slow)*1e3:.1f} ms) at 20k sensors / 1% churn; "
        f"got {speedup:.2f}x"
    )
