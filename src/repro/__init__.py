"""repro — reproduction of *Utility-driven Data Acquisition in Participatory
Sensing* (Riahi, Papaioannou, Trummer, Aberer; EDBT 2013).

A participatory-sensing aggregator receives queries of many types (point,
spatial aggregate, trajectory, location/region monitoring) and, each time
slot, selects which mobile sensors to buy measurements from so that the
total utility — query valuations minus sensor costs — is maximized, sharing
sensors (and their costs) across queries.

Quickstart::

    import numpy as np
    from repro import (
        Region, RandomWaypointMobility, SensorFleet, FleetConfig,
        PointQueryWorkload, OptimalPointAllocator, OneShotSimulation,
    )

    rng = np.random.default_rng(0)
    world = Region.from_origin(80, 80)
    hotspot = Region.centered_in(world, 50, 50)
    fleet = SensorFleet(RandomWaypointMobility(world, 200, rng), hotspot,
                        FleetConfig(), rng)
    workload = PointQueryWorkload(hotspot, n_queries=300, budget=15.0)
    sim = OneShotSimulation(fleet, workload, OptimalPointAllocator(), rng)
    summary = sim.run(50)
    print(summary.average_utility, summary.satisfaction_ratio)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced figure.
"""

from .core import (
    Aggregator,
    AllocationError,
    AllocationResult,
    Allocator,
    BaselineAllocator,
    BaselineMixAllocator,
    GreedyAllocator,
    LocalSearchPointAllocator,
    LocationMonitoringController,
    LocationMonitoringSimulation,
    MixAllocator,
    MixOutcome,
    MixSimulation,
    OneShotSimulation,
    OptimalPointAllocator,
    PaymentInvariantError,
    RandomizedLocalSearchAllocator,
    RegionMonitoringController,
    RegionMonitoringSimulation,
    ReproError,
    SimulationSummary,
    SolverError,
    UserAccount,
    QueryReceipt,
    SlotDigest,
    solve_clairvoyant,
    simulate_myopic_gap,
    exhaustive_point_search,
    paper_weight_function,
    plan_sampling,
)
from .mobility import (
    MobilityModel,
    MobilityTrace,
    NokiaCampaignSynthesizer,
    RandomWaypointMobility,
    StationaryMobility,
    TraceMobility,
    WaypointMobility,
)
from .phenomena import (
    CorrelatedField,
    MaternKernel,
    GaussianProcessField,
    HarmonicRegressionModel,
    OzoneTraceSynthesizer,
    RBFKernel,
    fit_hyperparameters,
    schedule_for_window,
    select_sampling_times,
)
from .queries import (
    AggregateQueryWorkload,
    EventDetectionQuery,
    EventDetectionWorkload,
    LocationMonitoringQuery,
    LocationMonitoringWorkload,
    MultiSensorPointQuery,
    PointQuery,
    PointQueryWorkload,
    Query,
    QueryType,
    RegionMonitoringQuery,
    RegionMonitoringWorkload,
    SpatialAggregateQuery,
    TrajectoryQuery,
    reading_quality,
)
from .sensors import (
    BetaReputationTracker,
    FixedEnergyCost,
    FleetConfig,
    FullTrust,
    LinearEnergyCost,
    PrivacyCostModel,
    PrivacySensitivity,
    Sensor,
    SensorFleet,
    SensorSnapshot,
    UniformTrust,
)
from .spatial import Grid, GridIndex, Location, Region, Trajectory

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # spatial
    "Location",
    "Region",
    "Grid",
    "GridIndex",
    "Trajectory",
    # mobility
    "MobilityModel",
    "RandomWaypointMobility",
    "WaypointMobility",
    "StationaryMobility",
    "MobilityTrace",
    "TraceMobility",
    "NokiaCampaignSynthesizer",
    # sensors
    "Sensor",
    "SensorSnapshot",
    "SensorFleet",
    "FleetConfig",
    "FixedEnergyCost",
    "LinearEnergyCost",
    "PrivacyCostModel",
    "PrivacySensitivity",
    "FullTrust",
    "UniformTrust",
    "BetaReputationTracker",
    # phenomena
    "RBFKernel",
    "MaternKernel",
    "GaussianProcessField",
    "CorrelatedField",
    "OzoneTraceSynthesizer",
    "HarmonicRegressionModel",
    "fit_hyperparameters",
    "select_sampling_times",
    "schedule_for_window",
    # queries
    "Query",
    "QueryType",
    "PointQuery",
    "MultiSensorPointQuery",
    "SpatialAggregateQuery",
    "TrajectoryQuery",
    "LocationMonitoringQuery",
    "RegionMonitoringQuery",
    "EventDetectionQuery",
    "reading_quality",
    "PointQueryWorkload",
    "AggregateQueryWorkload",
    "LocationMonitoringWorkload",
    "RegionMonitoringWorkload",
    "EventDetectionWorkload",
    # core
    "Aggregator",
    "UserAccount",
    "QueryReceipt",
    "SlotDigest",
    "solve_clairvoyant",
    "simulate_myopic_gap",
    "AllocationResult",
    "Allocator",
    "OptimalPointAllocator",
    "exhaustive_point_search",
    "LocalSearchPointAllocator",
    "RandomizedLocalSearchAllocator",
    "GreedyAllocator",
    "BaselineAllocator",
    "LocationMonitoringController",
    "RegionMonitoringController",
    "MixAllocator",
    "BaselineMixAllocator",
    "MixOutcome",
    "plan_sampling",
    "paper_weight_function",
    "OneShotSimulation",
    "LocationMonitoringSimulation",
    "RegionMonitoringSimulation",
    "MixSimulation",
    "SimulationSummary",
    "ReproError",
    "AllocationError",
    "PaymentInvariantError",
    "SolverError",
]
