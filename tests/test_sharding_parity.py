"""Sharded-vs-dense parity: the :class:`ShardedKernel` must produce
bit-identical value matrices and allocations to the dense
:class:`ValuationKernel` on every query type, across shard cell sizes,
and end-to-end through the four figure families.

The contract under test (see ``repro.core.sharding``): candidate shards
are supersets of each query's relevant sensors, every omitted (query,
sensor) pair is exactly ``0.0`` under the dense formulas, and candidate
pairs go through the same elementwise operation sequence — so allocations
must match *exactly*, not just to tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_point_query, make_snapshot
from repro.core import (
    BaselineAllocator,
    GreedyAllocator,
    ShardedKernel,
    ValuationKernel,
    resolve_cell_size,
)
from repro.core.engine import (
    event_detection_engine,
    location_monitoring_engine,
    mix_engine,
    one_shot_engine,
    region_monitoring_engine,
)
from repro.datasets import (
    ScenarioSpec,
    StreamSpec,
    build_intel_scenario,
    build_ozone_dataset,
    build_rwm_scenario,
)
from repro.queries import (
    AggregateQueryWorkload,
    EventDetectionWorkload,
    EventSlotQuery,
    LocationMonitoringWorkload,
    MultiSensorPointQuery,
    PointQuery,
    PointQueryWorkload,
    RegionMonitoringWorkload,
    SpatialAggregateQuery,
    TrajectoryQuery,
)
from repro.spatial import Location, Region, Trajectory

CELL_SIZES = [0.75, 2.5, 6.0, 50.0]  # fine shards ... one-shard degenerate


def random_sensors(rng, n=40, side=30.0):
    return [
        make_snapshot(
            i,
            x=float(rng.uniform(0, side)),
            y=float(rng.uniform(0, side)),
            cost=float(rng.uniform(1, 10)),
            inaccuracy=float(rng.uniform(0, 0.2)),
            trust=float(rng.uniform(0.5, 1.0)),
        )
        for i in range(n)
    ]


def queries_of_every_type(rng, side=30.0):
    region = Region.from_origin(side, side)
    sub = Region.random_subregion(region, rng, min_side=5, max_side=12)
    trajectory = Trajectory([Location(2, 2), Location(10, 12), Location(25, 6)])
    return [
        PointQuery(Location(5, 5), budget=15.0, dmax=8.0),
        MultiSensorPointQuery(Location(12, 9), budget=25.0, n_readings=3, dmax=9.0),
        SpatialAggregateQuery(sub, budget=40.0, sensing_range=6.0, coverage_radius=3.0),
        TrajectoryQuery(trajectory, budget=35.0, sensing_range=4.0),
        EventSlotQuery(
            Location(8, 14), budget=20.0, required_confidence=0.9,
            theta_min=0.1, dmax=7.0, parent_id="ev-parent",
        ),
    ] + [
        PointQuery(
            region.sample_location(rng),
            budget=float(rng.uniform(5, 25)),
            dmax=6.0,
        )
        for _ in range(12)
    ]


def assert_allocations_identical(a, b):
    """Exact (bitwise) equality of two allocation results."""
    assert a.assignments == b.assignments
    assert set(a.selected) == set(b.selected)
    assert a.values == b.values
    assert a.payments == b.payments


def assert_summaries_identical(a, b):
    assert a.n_slots == b.n_slots
    for got, want in zip(a.slots, b.slots):
        assert got.slot == want.slot
        assert got.issued == want.issued
        assert got.answered == want.answered
        assert got.value == want.value
        assert got.cost == want.cost
        assert got.qualities == want.qualities
        assert got.extras == want.extras
    assert set(a.quality_stats) == set(b.quality_stats)
    for label, stat in b.quality_stats.items():
        assert a.quality_stats[label].count == stat.count
        assert a.quality_stats[label].total == stat.total
    assert a.total_queries == b.total_queries
    assert a.positive_utility_queries == b.positive_utility_queries


# ----------------------------------------------------------------------
# kernel-level parity
# ----------------------------------------------------------------------
class TestKernelParity:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("cell", CELL_SIZES)
    def test_single_values_bit_identical(self, seed, cell):
        rng = np.random.default_rng(seed)
        sensors = random_sensors(rng)
        queries = [
            make_point_query(
                x=float(rng.uniform(-5, 35)), y=float(rng.uniform(-5, 35)),
                budget=15.0, dmax=float(rng.uniform(2, 12)),
            )
            for _ in range(15)
        ]
        dense = ValuationKernel.from_sensors(sensors)
        sharded = ShardedKernel.from_sensors(sensors, cell_size=cell)
        assert np.array_equal(dense.single_values(queries), sharded.single_values(queries))
        assert np.array_equal(dense.relevance(queries), sharded.relevance(queries))

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("cell", CELL_SIZES)
    def test_value_rows_bit_identical(self, seed, cell):
        rng = np.random.default_rng(50 + seed)
        sensors = random_sensors(rng)
        queries = [
            make_point_query(
                x=float(rng.uniform(0, 30)), y=float(rng.uniform(0, 30)),
                budget=float(rng.uniform(5, 25)), dmax=7.0,
            )
            for _ in range(10)
        ]
        dense = ValuationKernel.from_sensors(sensors)
        sharded = ShardedKernel.from_sensors(sensors, cell_size=cell)
        assert np.array_equal(dense.value_rows(queries), sharded.value_rows(queries))

    @pytest.mark.parametrize("seed", range(6))
    def test_candidates_are_supersets_of_relevance(self, seed):
        rng = np.random.default_rng(100 + seed)
        sensors = random_sensors(rng)
        sharded = ShardedKernel.from_sensors(sensors, cell_size=3.0)
        for query in queries_of_every_type(rng):
            cand = sharded.candidate_indices(query)
            assert cand is not None
            relevant = {j for j, s in enumerate(sensors) if query.relevant(s)}
            assert relevant <= set(cand.tolist())

    def test_unknown_query_type_falls_back_to_full_scan(self):
        class OpaqueQuery(PointQuery):
            """Subclass — the exact-type contract must refuse to shard it."""

        rng = np.random.default_rng(0)
        sensors = random_sensors(rng)
        sharded = ShardedKernel.from_sensors(sensors, cell_size=3.0)
        assert sharded.candidate_indices(OpaqueQuery(Location(1, 1), 10.0)) is None
        # sparse_single_values must still serve it (full roster).
        [(idx, vals)] = sharded.sparse_single_values([OpaqueQuery(Location(1, 1), 10.0)])
        assert idx.tolist() == list(range(len(sensors)))

    def test_empty_inputs(self):
        sharded = ShardedKernel.from_sensors([])
        assert sharded.single_values([]).shape == (0, 0)
        assert sharded.n_shards == 0
        query = make_point_query(x=0, y=0)
        assert sharded.single_values([query]).shape == (1, 0)

    def test_normalize_sharding_vocabulary(self):
        from repro.core import normalize_sharding

        assert normalize_sharding(None) is None
        assert normalize_sharding(False) is None
        assert normalize_sharding(True) == "auto"
        assert normalize_sharding("auto") == "auto"
        assert normalize_sharding(2) == 2.0
        assert normalize_sharding(3.5) == 3.5
        for junk in ("fast", 0, -1.0, [2.0]):
            with pytest.raises(ValueError):
                normalize_sharding(junk)

    def test_sharding_requires_the_slot_kernel(self):
        from repro.core import SlotEngine
        from repro.core.engine import OneShotStream
        from repro.queries import PointQueryWorkload

        scenario = build_rwm_scenario(1, n_sensors=10, n_slots=2)
        workload = PointQueryWorkload(scenario.working_region, n_queries=2)
        with pytest.raises(ValueError, match="use_kernel"):
            SlotEngine(
                scenario.make_fleet(),
                [OneShotStream(workload)],
                GreedyAllocator(),
                np.random.default_rng(0),
                use_kernel=False,
                sharding=True,
            )

    def test_heuristic_cell_size_positive(self):
        rng = np.random.default_rng(1)
        xy = rng.uniform(0, 100, size=(500, 2))
        assert resolve_cell_size(xy) > 0
        assert resolve_cell_size(np.zeros((0, 2))) == 1.0
        assert resolve_cell_size(np.array([[3.0, 3.0]])) == 1.0
        colinear = np.stack([np.arange(50.0), np.full(50, 2.0)], axis=1)
        assert resolve_cell_size(colinear) > 0

    def test_shard_structure(self):
        rng = np.random.default_rng(9)
        sensors = random_sensors(rng, n=60)
        sharded = ShardedKernel.from_sensors(sensors, cell_size=5.0)
        members = np.concatenate([s.indices for s in sharded.shards()])
        assert sorted(members.tolist()) == list(range(60))
        shard = next(iter(sharded.shards()))
        local = shard.kernel  # lazily built shard-local kernel
        assert local.n_sensors == shard.n_sensors
        assert np.array_equal(local.sensor_xy, sharded.sensor_xy[shard.indices])
        # The shard-local kernel is itself a full protocol citizen.
        query = make_point_query(
            x=float(local.sensor_xy[0, 0]), y=float(local.sensor_xy[0, 1])
        )
        dense_row = ValuationKernel.from_sensors(local.sensors).single_values([query])
        assert np.array_equal(local.single_values([query]), dense_row)

    def test_ensure_reuses_matching_sharded_kernel(self):
        rng = np.random.default_rng(3)
        sensors = random_sensors(rng)
        kernel = ShardedKernel.from_sensors(sensors, cell_size=4.0)
        _ = kernel.index  # warm the grid
        repriced = [
            make_snapshot(
                s.sensor_id, x=s.location.x, y=s.location.y, cost=1.0,
                inaccuracy=s.inaccuracy, trust=s.trust,
            )
            for s in sensors
        ]
        reused = ShardedKernel.ensure(kernel, repriced, cell_size=4.0)
        assert reused is kernel
        assert reused.sensors is repriced  # rebound to the current list
        moved = random_sensors(np.random.default_rng(4))
        rebuilt = ShardedKernel.ensure(kernel, moved, cell_size=4.0)
        assert rebuilt is not kernel
        # A dense kernel never satisfies the sharded reuse check.
        dense = ValuationKernel.from_sensors(sensors)
        assert isinstance(ShardedKernel.ensure(dense, sensors), ShardedKernel)


# ----------------------------------------------------------------------
# boundary-straddling edge cases
# ----------------------------------------------------------------------
class TestBoundaryStraddling:
    def grid_world(self):
        # Sensors on an exact integer lattice, shard cell 2.0: rows/columns
        # of sensors sit exactly on shard boundaries.
        sensors = [
            make_snapshot(
                10 * c + r, x=float(c), y=float(r), cost=3.0,
                inaccuracy=0.1, trust=1.0,
            )
            for c in range(10)
            for r in range(10)
        ]
        return sensors

    @pytest.mark.parametrize("cell", [1.0, 2.0, 3.0])
    def test_queries_on_shard_corners(self, cell):
        sensors = self.grid_world()
        dense = ValuationKernel.from_sensors(sensors)
        sharded = ShardedKernel.from_sensors(sensors, cell_size=cell)
        # Query locations on cell corners, edges and centres; radii that
        # end exactly on boundaries.
        queries = [
            PointQuery(Location(x, y), budget=15.0, dmax=r, theta_min=0.2)
            for (x, y) in [(2.0, 2.0), (2.0, 3.5), (4.999, 5.001), (0.0, 0.0), (9.0, 9.0)]
            for r in (1.0, 2.0, 2.5)
        ]
        assert np.array_equal(dense.single_values(queries), sharded.single_values(queries))
        a = GreedyAllocator().allocate(queries, sensors, kernel=dense)
        b = GreedyAllocator().allocate(queries, sensors, kernel=sharded)
        assert_allocations_identical(a, b)

    def test_region_query_aligned_with_shard_edges(self):
        sensors = self.grid_world()
        dense = ValuationKernel.from_sensors(sensors)
        sharded = ShardedKernel.from_sensors(sensors, cell_size=2.0)
        queries = [
            SpatialAggregateQuery(
                Region(2.0, 2.0, 6.0, 6.0), budget=50.0,
                sensing_range=2.0, coverage_radius=1.0,
            ),
            SpatialAggregateQuery(
                Region(3.0, 1.0, 5.0, 9.0), budget=40.0,
                sensing_range=1.0, coverage_radius=1.0,
            ),
        ]
        a = GreedyAllocator().allocate(queries, sensors, kernel=dense)
        b = GreedyAllocator().allocate(queries, sensors, kernel=sharded)
        assert_allocations_identical(a, b)

    def test_single_shard_reach_uses_shard_members_directly(self):
        sensors = self.grid_world()
        sharded = ShardedKernel.from_sensors(sensors, cell_size=20.0)
        assert sharded.n_shards == 1
        query = PointQuery(Location(5.0, 5.0), budget=15.0, dmax=3.0)
        cand = sharded.candidate_indices(query)
        assert sorted(cand.tolist()) == list(range(100))

    def test_query_outside_fleet_bbox(self):
        sensors = self.grid_world()
        dense = ValuationKernel.from_sensors(sensors)
        sharded = ShardedKernel.from_sensors(sensors, cell_size=2.0)
        queries = [
            PointQuery(Location(-50.0, -50.0), budget=15.0, dmax=5.0),  # far off-grid
            PointQuery(Location(-3.0, 5.0), budget=15.0, dmax=4.0),     # straddles the edge
            PointQuery(Location(11.0, 11.0), budget=15.0, dmax=3.0),    # beyond max corner
        ]
        assert np.array_equal(dense.single_values(queries), sharded.single_values(queries))


# ----------------------------------------------------------------------
# allocator-level parity
# ----------------------------------------------------------------------
class TestAllocatorParity:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("cell", CELL_SIZES)
    def test_greedy_mixed_instances(self, seed, cell):
        rng = np.random.default_rng(1000 + seed)
        sensors = random_sensors(rng, n=45)
        queries = queries_of_every_type(rng)
        a = GreedyAllocator().allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        b = GreedyAllocator().allocate(
            queries, sensors, kernel=ShardedKernel.from_sensors(sensors, cell_size=cell)
        )
        assert_allocations_identical(a, b)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("cell", [0.75, 2.5, 6.0])
    def test_baseline_mixed_instances(self, seed, cell):
        rng = np.random.default_rng(2000 + seed)
        sensors = random_sensors(rng, n=45)
        queries = queries_of_every_type(rng)
        a = BaselineAllocator().allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        b = BaselineAllocator().allocate(
            queries, sensors, kernel=ShardedKernel.from_sensors(sensors, cell_size=cell)
        )
        assert_allocations_identical(a, b)

    @pytest.mark.parametrize("seed", range(4))
    def test_scalar_greedy_accepts_sharded_kernel(self, seed):
        rng = np.random.default_rng(3000 + seed)
        sensors = random_sensors(rng, n=35)
        queries = queries_of_every_type(rng)
        a = GreedyAllocator(vectorized=False).allocate(
            queries, sensors, kernel=ValuationKernel.from_sensors(sensors)
        )
        b = GreedyAllocator(vectorized=False).allocate(
            queries, sensors, kernel=ShardedKernel.from_sensors(sensors, cell_size=3.0)
        )
        assert_allocations_identical(a, b)

    def test_sharded_kernel_with_repriced_announcements(self):
        """Costs come from the passed announcements, never the shard cache."""
        queries = [make_point_query(x=0, y=0, budget=20.0, theta_min=0.0)]
        original = [make_snapshot(0, x=0, y=0, cost=5.0)]
        kernel = ShardedKernel.from_sensors(original, cell_size=2.0)
        kernel.single_values(queries)  # warm the shard caches
        repriced = [make_snapshot(0, x=0, y=0, cost=1.0)]
        assert kernel.matches(repriced)
        result = GreedyAllocator().allocate(queries, repriced, kernel=kernel)
        assert result.selected[0].cost == 1.0
        assert result.sensor_income(0) == pytest.approx(1.0)


# ----------------------------------------------------------------------
# end-to-end: the four figure families + mix, sharded vs dense engines
# ----------------------------------------------------------------------
class TestEndToEndFigureFamilies:
    SEED = 321
    N_SLOTS = 5

    def _run(self, family, sharding):
        scenario = build_rwm_scenario(self.SEED, n_sensors=60, n_slots=10)
        allocator = GreedyAllocator()
        rng = np.random.default_rng(self.SEED)
        if family == "point":
            workload = PointQueryWorkload(
                scenario.working_region, n_queries=30, budget=15.0, dmax=scenario.dmax
            )
            engine = one_shot_engine(
                scenario.make_fleet(), workload, allocator, rng, sharding=sharding
            )
        elif family == "aggregate":
            workload = AggregateQueryWorkload(
                scenario.working_region, budget_factor=15.0, mean_queries=4,
                count_spread=2, sensing_range=scenario.dmax,
            )
            engine = one_shot_engine(
                scenario.make_fleet(), workload, allocator, rng, sharding=sharding
            )
        elif family == "location_monitoring":
            ozone = build_ozone_dataset(self.SEED)
            workload = LocationMonitoringWorkload(
                scenario.working_region, ozone.values, ozone.model(),
                budget_factor=15.0, max_live=6, arrivals_per_slot=2,
                duration_range=(2, 5), dmax=scenario.dmax,
            )
            engine = location_monitoring_engine(
                scenario.make_fleet(), workload, allocator, rng, sharding=sharding
            )
        elif family == "event":
            workload = EventDetectionWorkload(
                scenario.working_region, threshold=40.0, arrivals_per_slot=2,
                duration_range=(2, 5), dmax=scenario.dmax,
            )
            engine = event_detection_engine(
                scenario.make_fleet(), workload, allocator, rng, sharding=sharding
            )
        else:  # region_monitoring
            world = build_intel_scenario(self.SEED, n_sensors=40, n_slots=10)
            workload = RegionMonitoringWorkload(
                world.scenario.working_region, world.gp, budget_factor=15.0,
                duration_range=(2, 4), sensing_radius=world.scenario.dmax,
            )
            engine = region_monitoring_engine(
                world.scenario.make_fleet(), workload, allocator, rng,
                sharding=sharding,
            )
        return engine.run(self.N_SLOTS)

    @pytest.mark.parametrize(
        "family",
        ["point", "aggregate", "location_monitoring", "region_monitoring", "event"],
    )
    def test_family_parity(self, family):
        assert_summaries_identical(
            self._run(family, sharding=None), self._run(family, sharding=True)
        )

    @pytest.mark.parametrize("sharding", [True, 2.0])
    def test_mix_family_parity(self, sharding):
        scenario = build_rwm_scenario(self.SEED, n_sensors=50, n_slots=10)
        ozone = build_ozone_dataset(self.SEED)
        summaries = []
        for mode in (None, sharding):
            point_wl = PointQueryWorkload(
                scenario.working_region, n_queries=20, budget=15.0, dmax=scenario.dmax
            )
            agg_wl = AggregateQueryWorkload(
                scenario.working_region, budget_factor=15.0, mean_queries=3,
                count_spread=1, sensing_range=scenario.dmax,
            )
            lm_wl = LocationMonitoringWorkload(
                scenario.working_region, ozone.values, ozone.model(),
                budget_factor=15.0, max_live=5, arrivals_per_slot=2,
                duration_range=(2, 4), dmax=scenario.dmax,
            )
            engine = mix_engine(
                scenario.make_fleet(), point_wl, agg_wl, lm_wl,
                np.random.default_rng(self.SEED),
                joint=GreedyAllocator(), sharding=mode,
            )
            summaries.append(engine.run(self.N_SLOTS))
        assert_summaries_identical(summaries[0], summaries[1])

    def test_sequential_buffered_parity(self):
        """Stage-2 zero-cost re-announcements must reuse the sharded kernel
        (positions unchanged) while taking costs from the re-priced list."""
        scenario = build_rwm_scenario(self.SEED, n_sensors=50, n_slots=10)
        ozone = build_ozone_dataset(self.SEED)
        summaries = []
        for mode in (None, True):
            point_wl = PointQueryWorkload(
                scenario.working_region, n_queries=20, budget=15.0, dmax=scenario.dmax
            )
            agg_wl = AggregateQueryWorkload(
                scenario.working_region, budget_factor=15.0, mean_queries=3,
                count_spread=1, sensing_range=scenario.dmax,
            )
            lm_wl = LocationMonitoringWorkload(
                scenario.working_region, ozone.values, ozone.model(),
                budget_factor=15.0, max_live=5, arrivals_per_slot=2,
                duration_range=(2, 4), dmax=scenario.dmax,
            )
            engine = mix_engine(
                scenario.make_fleet(), point_wl, agg_wl, lm_wl,
                np.random.default_rng(self.SEED),
                sequential=True,
                stage1_allocator=GreedyAllocator(),
                stage2_allocator=GreedyAllocator(),
                sharding=mode,
            )
            summaries.append(engine.run(self.N_SLOTS))
        assert_summaries_identical(summaries[0], summaries[1])

    def test_baseline_allocator_end_to_end(self):
        scenario = build_rwm_scenario(self.SEED, n_sensors=60, n_slots=10)
        summaries = []
        for mode in (None, 2.0):
            workload = PointQueryWorkload(
                scenario.working_region, n_queries=30, budget=15.0, dmax=scenario.dmax
            )
            engine = one_shot_engine(
                scenario.make_fleet(), workload, BaselineAllocator(),
                np.random.default_rng(self.SEED), sharding=mode,
            )
            summaries.append(engine.run(self.N_SLOTS))
        assert_summaries_identical(summaries[0], summaries[1])

    def test_scenario_spec_sharding_knob(self):
        base = ScenarioSpec(
            name="parity",
            dataset="rwm",
            seed=77,
            n_sensors=50,
            n_slots=4,
            allocator="greedy",
            streams=(
                StreamSpec("point", params={"n_queries": 20, "budget": 15.0}),
                StreamSpec("event", params={"threshold": 45.0, "arrivals_per_slot": 1}),
            ),
        )
        import dataclasses

        sharded = dataclasses.replace(base, sharding=True)
        assert sharded.to_dict()["sharding"] is True
        assert ScenarioSpec.from_dict(sharded.to_dict()) == sharded
        # "auto" is the same spelling the engine and CLI accept.
        auto = dataclasses.replace(base, sharding="auto")
        assert ScenarioSpec.from_dict(auto.to_dict()) == auto
        with pytest.raises(ValueError, match="sharding"):
            dataclasses.replace(base, sharding="fast")
        with pytest.raises(ValueError, match="sharding"):
            dataclasses.replace(base, sharding=-1.0)
        assert_summaries_identical(base.run(), sharded.run())
        assert_summaries_identical(base.run(), auto.run())
