"""Greedy multi-query sensor selection — Algorithm 1 (Section 3.2).

At every step the algorithm picks the sensor maximizing the *partial
overall utility*: the sum over queries of its positive marginal valuations,
minus its cost.  The selected sensor's cost is split among the benefiting
queries in proportion to their marginal gains (line 10), which yields
Theorem 1's guarantees:

1. telescoping — each query's recorded value equals ``v_q(S_q)``;
2. positive total utility whenever anything was selected;
3. non-negative individual query utility;
4. ``O(|Q| |S|^2)`` valuation calls.

The implementation adds one exact optimization: a sensor's cached marginal
sum only changes when one of *its* relevant queries received a new sensor,
so after committing sensor ``a`` we re-evaluate only the sensors whose
relevant-query sets intersect ``Q_a`` (this is the paper's ``Q_{l_s}``
pre-filtering taken to its logical end; it changes nothing about which
sensor wins each round).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..queries import PointQuery, Query, ValuationState
from ..sensors import SensorSnapshot
from .allocation import AllocationResult, check_distinct
from .payments import proportionate_shares
from .valuation import ValuationKernel

__all__ = ["GreedyAllocator", "relevant_queries_by_sensor"]


def relevant_queries_by_sensor(
    queries: Sequence[Query],
    sensors: Sequence[SensorSnapshot],
    kernel: ValuationKernel | None = None,
) -> dict[int, list[str]]:
    """The paper's ``Q_{l_s}`` prefilter: per sensor, its relevant query ids.

    With a slot kernel the single-sensor point queries — the bulk of every
    mixed slot — are screened in one vectorized pass; other query types fall
    back to their scalar ``relevant``.  Query order within each sensor's
    list matches the input order exactly, as the greedy settlement depends
    on it.
    """
    relevant: dict[int, list[str]] = {}
    plain_points = (
        [(i, q) for i, q in enumerate(queries) if type(q) is PointQuery]
        if kernel is not None and kernel.matches(sensors)
        else []
    )
    if plain_points:
        rel = kernel.relevance([q for _, q in plain_points])
        point_pos = np.asarray([i for i, _ in plain_points], dtype=np.intp)
        others = [(i, q) for i, q in enumerate(queries) if type(q) is not PointQuery]
        for j, snapshot in enumerate(sensors):
            indices = list(point_pos[rel[:, j]])
            indices.extend(i for i, q in others if q.relevant(snapshot))
            indices.sort()
            if indices:
                relevant[snapshot.sensor_id] = [queries[i].query_id for i in indices]
    else:
        for snapshot in sensors:
            qids = [q.query_id for q in queries if q.relevant(snapshot)]
            if qids:
                relevant[snapshot.sensor_id] = qids
    return relevant


class GreedyAllocator:
    """Algorithm 1: greedy joint sensor selection for arbitrary query mixes.

    Args:
        min_gain: numerical floor below which a marginal gain is treated as
            zero (guards against float noise keeping the loop alive).
        verify: run the Theorem-1 invariant checks on the result (cheap;
            disable only in tight benchmarking loops).
    """

    name = "Greedy"
    supports_kernel = True

    def __init__(self, min_gain: float = 1e-9, verify: bool = True) -> None:
        if min_gain < 0:
            raise ValueError("min_gain must be non-negative")
        self.min_gain = min_gain
        self.verify = verify

    def allocate(
        self,
        queries: Sequence[Query],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None = None,
    ) -> AllocationResult:
        check_distinct(queries, sensors)
        result = AllocationResult()
        if not queries or not sensors:
            return result

        states: dict[str, ValuationState] = {q.query_id: q.new_state() for q in queries}
        queries_by_id = {q.query_id: q for q in queries}

        # The paper's Q_{l_s}: only queries a sensor could possibly serve.
        relevant = relevant_queries_by_sensor(queries, sensors, kernel)
        remaining: dict[int, SensorSnapshot] = {
            s.sensor_id: s for s in sensors if s.sensor_id in relevant
        }

        # Cached (net utility, per-query positive gains); recomputed lazily.
        cache: dict[int, tuple[float, dict[str, float]]] = {}
        dirty = set(remaining)

        while remaining:
            for sid in dirty:
                if sid not in remaining:
                    continue
                snapshot = remaining[sid]
                gains: dict[str, float] = {}
                for qid in relevant[sid]:
                    gain = states[qid].gain(snapshot)
                    if gain > self.min_gain:
                        gains[qid] = gain
                cache[sid] = (sum(gains.values()) - snapshot.cost, gains)
            dirty.clear()

            best_sid = max(remaining, key=lambda sid: cache[sid][0])
            best_net, best_gains = cache[best_sid]
            if best_net <= 0.0 or not best_gains:
                break

            snapshot = remaining.pop(best_sid)
            cache.pop(best_sid, None)
            shares = proportionate_shares(best_gains, snapshot.cost)
            for qid, gain in best_gains.items():
                realized = states[qid].add(snapshot)
                # The committed gain must match the cached evaluation; the
                # states are only mutated here, so any drift is a query-
                # implementation bug worth failing loudly on.
                if abs(realized - gain) > 1e-6 * max(1.0, abs(gain)):
                    raise RuntimeError(
                        f"query {qid} marginal gain drifted: cached {gain}, "
                        f"realized {realized}"
                    )
                result.record(queries_by_id[qid], snapshot, gain, shares[qid])

            # Invalidate sensors sharing any query that just grew.
            touched = set(best_gains)
            for sid in remaining:
                if touched.intersection(relevant[sid]):
                    dirty.add(sid)

        if self.verify:
            result.verify()
        return result
