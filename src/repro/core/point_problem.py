"""Shared representation of a single-sensor point-query scheduling problem.

Section 3.1 algorithms (optimal BILP, local search, the Section 4.3
baseline) all operate on the same structure: queried locations ``l``, the
per-location aggregated values ``v_l(s) = sum_{q in Q_l} v_q(s)`` and the
sensor costs.  :class:`PointProblem` builds that structure once per slot —
vectorized, because the paper-scale instances evaluate hundreds of queries
against hundreds of sensors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..queries import PointQuery
from ..sensors import SensorSnapshot
from ..spatial import Location
from .allocation import AllocationResult, check_distinct
from .errors import AllocationError
from .payments import proportionate_shares
from .valuation import ValuationKernel

__all__ = ["PointProblem"]


@dataclass
class PointProblem:
    """Dense value matrix form of a point-query allocation instance.

    Attributes:
        sensors: the slot's announcements (column order of the matrices).
        locations: distinct queried locations (row order).
        location_queries: queries grouped per location.
        query_values: per query, its value row ``v_q(s_j)`` over sensors.
        values: the aggregated matrix ``V[l, j] = v_l(s_j)`` of eq. 9/12.
        costs: announced sensor costs ``c_j``.
    """

    sensors: list[SensorSnapshot]
    locations: list[Location]
    location_queries: list[list[PointQuery]]
    query_values: dict[str, np.ndarray]
    values: np.ndarray
    costs: np.ndarray

    @classmethod
    def build(
        cls,
        queries: list[PointQuery],
        sensors: list[SensorSnapshot],
        kernel: ValuationKernel | None = None,
    ) -> "PointProblem":
        """Build the dense problem, reusing a slot-shared ``kernel`` if given.

        The kernel carries only geometry/quality arrays, so one built from
        this slot's announcements can be reused even when the caller hands a
        re-priced copy of the same sensors (costs always come from the
        ``sensors`` argument).  An incompatible kernel is silently replaced
        by a fresh one.
        """
        for query in queries:
            if not isinstance(query, PointQuery):
                raise AllocationError(
                    f"point-query allocators accept only PointQuery, got "
                    f"{type(query).__name__} ({query.query_id})"
                )
        check_distinct(queries, sensors)
        sensors = list(sensors)
        n = len(sensors)
        kernel = ValuationKernel.ensure(kernel, sensors)

        groups: dict[tuple[float, float], list[PointQuery]] = {}
        for query in queries:
            groups.setdefault((query.location.x, query.location.y), []).append(query)
        locations = [Location(x, y) for (x, y) in groups]
        location_queries = list(groups.values())
        row_index = {key: row for row, key in enumerate(groups)}
        rows_per_query = np.asarray(
            [row_index[(q.location.x, q.location.y)] for q in queries], dtype=np.intp
        )

        # One broadcasted pass over every (query, sensor) pair — no
        # per-location Python loop.
        query_rows = kernel.value_rows(queries)
        query_values: dict[str, np.ndarray] = {
            query.query_id: query_rows[i] for i, query in enumerate(queries)
        }
        if len(locations) == len(queries):
            # All locations distinct (the paper's random workloads): the
            # aggregated matrix IS the per-query matrix.  Copy so later
            # in-place edits of ``values`` can never corrupt query rows.
            values = query_rows.copy()
        else:
            values = np.zeros((len(locations), n))
            if queries and n:
                # Unbuffered accumulation visits queries in input order, so
                # each location row sums its queries exactly as the
                # per-location loop used to.
                np.add.at(values, rows_per_query, query_rows)
        return cls(
            sensors,
            locations,
            location_queries,
            query_values,
            values,
            costs=np.asarray([s.cost for s in sensors], dtype=float),
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def n_sensors(self) -> int:
        return len(self.sensors)

    @property
    def n_locations(self) -> int:
        return len(self.locations)

    def utility(self, member_mask: np.ndarray) -> float:
        """Eq. (12): ``u(S') = sum_l max_{s in S'} v_l(s) - sum_{s in S'} c_s``."""
        if not member_mask.any():
            return 0.0
        best = self.values[:, member_mask].max(axis=1)
        return float(np.maximum(best, 0.0).sum() - self.costs[member_mask].sum())

    def assign_winners(self, member_mask: np.ndarray) -> dict[int, int]:
        """Map location row -> winning sensor column within the member set.

        "Each sensor is assigned to a query location for which it yields the
        best valuation compared to other sensors" (Section 3.1.2); locations
        where even the best member yields nothing stay unassigned.
        """
        winners: dict[int, int] = {}
        if not member_mask.any():
            return winners
        member_idx = np.flatnonzero(member_mask)
        sub = self.values[:, member_idx]
        best_pos = sub.argmax(axis=1)
        best_val = sub[np.arange(len(self.locations)), best_pos]
        for row in range(len(self.locations)):
            if best_val[row] > 0.0:
                winners[row] = int(member_idx[best_pos[row]])
        return winners

    def settle(self, winners: dict[int, int]) -> AllocationResult:
        """Build the allocation result + eq. (11) payments for a winner map.

        For each selected sensor, the denominator of eq. (11) is the total
        value it yields across all locations it won; each query at such a
        location with positive value gets the reading and pays its
        proportionate share.
        """
        result = AllocationResult()
        by_sensor: dict[int, list[int]] = {}
        for row, col in winners.items():
            by_sensor.setdefault(col, []).append(row)
        for col, rows in by_sensor.items():
            snapshot = self.sensors[col]
            beneficiary_values: dict[str, float] = {}
            for row in rows:
                for query in self.location_queries[row]:
                    value = float(self.query_values[query.query_id][col])
                    if value > 0.0:
                        beneficiary_values[query.query_id] = value
            shares = proportionate_shares(beneficiary_values, snapshot.cost)
            for qid, value in beneficiary_values.items():
                result.record(qid, snapshot, value, shares[qid])
        return result
