"""Local-search scheduling of point queries (Section 3.1.2).

The utility of a sensor set (eq. 12)::

    u(S') = sum_l max_{s in S'} v_l(s) - sum_{s in S'} c_s

is non-monotone submodular, so the paper applies Feige, Mirrokni and
Vondrák's deterministic Local Search [3]: start from the best singleton,
repeatedly add any element improving ``u`` by more than a ``(1 + eps/n^2)``
factor, then delete any element whose removal improves similarly, and
finally return the better of ``W`` and ``S \\ W``.  This guarantees a
``(1/3 - eps/n)``-approximation with ``O(n^3 log n)`` utility evaluations;
the randomized 2/5-approximation variant from the same paper is provided as
:class:`RandomizedLocalSearchAllocator` (mentioned but unused in the
paper's experiments).

Our implementation evaluates add/delete phases in vectorized form over the
value matrix, so each pass costs ``O(L * n)`` numpy work instead of
``O(L * n)`` Python-level utility calls.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..queries import PointQuery
from ..sensors import SensorSnapshot
from .allocation import AllocationResult
from .point_problem import PointProblem
from .valuation import ValuationKernel

__all__ = ["LocalSearchPointAllocator", "RandomizedLocalSearchAllocator"]


def _best_and_second(values: np.ndarray, member_idx: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-location best value, best member column, and second-best value
    over the member columns (clamped at zero — an unserved location
    contributes nothing, per eq. 12's implicit ``max(., 0)``)."""
    sub = values[:, member_idx]
    order = np.argsort(sub, axis=1)
    best_pos = order[:, -1]
    best = sub[np.arange(len(sub)), best_pos]
    if len(member_idx) > 1:
        second = sub[np.arange(len(sub)), order[:, -2]]
    else:
        second = np.zeros(len(sub))
    return (
        np.maximum(best, 0.0),
        member_idx[best_pos],
        np.maximum(second, 0.0),
    )


class LocalSearchPointAllocator:
    """Deterministic Feige et al. local search on eq. (12).

    Args:
        epsilon: improvement threshold parameter; a move must improve the
            utility by more than ``epsilon * |u| / n^2`` to be taken (the
            paper's ``(1 + eps/n^2)`` multiplicative test, with an absolute
            floor to guarantee termination near ``u = 0``).
    """

    name = "LocalSearch"
    supports_kernel = True

    def __init__(self, epsilon: float = 0.01) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon

    # ------------------------------------------------------------------
    def allocate(
        self,
        queries: Sequence[PointQuery],
        sensors: Sequence[SensorSnapshot],
        kernel: ValuationKernel | None = None,
    ) -> AllocationResult:
        problem = PointProblem.build(list(queries), list(sensors), kernel=kernel)
        if problem.n_sensors == 0 or problem.n_locations == 0:
            return AllocationResult()
        member_mask = self.search(problem)
        winners = problem.assign_winners(member_mask)
        result = problem.settle(winners)
        result.verify()
        return result

    # ------------------------------------------------------------------
    def search(self, problem: PointProblem) -> np.ndarray:
        """Run the local search; returns the selected-member mask."""
        values, costs = problem.values, problem.costs
        n = problem.n_sensors

        # Start with the single sensor maximizing u({v}).
        singleton_utilities = np.maximum(values, 0.0).sum(axis=0) - costs
        best_single = int(singleton_utilities.argmax())
        if singleton_utilities[best_single] <= 0.0:
            return np.zeros(n, dtype=bool)

        member = np.zeros(n, dtype=bool)
        member[best_single] = True
        utility = float(singleton_utilities[best_single])

        max_moves = 4 * n * n  # safety valve; the threshold bounds moves anyway
        for _ in range(max_moves):
            threshold = self.epsilon * max(abs(utility), 1.0) / (n * n)
            member_idx = np.flatnonzero(member)
            best, _, second = _best_and_second(values, member_idx)

            # Add phase: gain(a) = sum_l max(v_la - best_l, 0) - c_a.
            gains = np.maximum(values - best[:, None], 0.0).sum(axis=0) - costs
            gains[member] = -np.inf
            add_candidate = int(gains.argmax())
            if gains[add_candidate] > threshold:
                member[add_candidate] = True
                utility += float(gains[add_candidate])
                continue

            # Delete phase: removing w loses, at each location it wins,
            # the drop to the second-best member, but refunds its cost.
            deltas = np.full(n, -np.inf)
            for w in member_idx:
                wins = (values[:, w] >= best) & (best > 0.0) & (values[:, w] > 0.0)
                loss = (best[wins] - second[wins]).sum()
                deltas[w] = costs[w] - loss
            delete_candidate = int(deltas.argmax())
            if deltas[delete_candidate] > threshold and member.sum() > 1:
                member[delete_candidate] = False
                utility += float(deltas[delete_candidate])
                continue
            break

        # Feige et al.: return the better of W and S \ W.
        complement = ~member
        if problem.utility(complement) > problem.utility(member):
            member = complement
        # Post-process: members that win no location only add cost.
        winners = problem.assign_winners(member)
        useful = set(winners.values())
        for col in np.flatnonzero(member):
            if int(col) not in useful:
                member[col] = False
        return member


class RandomizedLocalSearchAllocator(LocalSearchPointAllocator):
    """The randomized 2/5-approximation variant of [3].

    Runs the deterministic search on a random perturbation of the value
    matrix (smoothed local search), several times, and keeps the best
    outcome by true utility.  Provided for completeness; the paper's
    experiments use only the deterministic variant.
    """

    name = "RandomizedLocalSearch"

    def __init__(
        self,
        epsilon: float = 0.01,
        n_restarts: int = 3,
        noise_scale: float = 0.05,
        seed: int = 0,
    ) -> None:
        super().__init__(epsilon)
        if n_restarts < 1:
            raise ValueError("n_restarts must be >= 1")
        if noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")
        self.n_restarts = n_restarts
        self.noise_scale = noise_scale
        self.seed = seed

    def search(self, problem: PointProblem) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        best_mask = super().search(problem)
        best_utility = problem.utility(best_mask)
        original = problem.values
        for _ in range(self.n_restarts):
            noise = 1.0 + self.noise_scale * rng.standard_normal(original.shape)
            problem.values = original * np.clip(noise, 0.5, 1.5)
            try:
                mask = super().search(problem)
            finally:
                problem.values = original
            utility = problem.utility(mask)
            if utility > best_utility:
                best_mask, best_utility = mask, utility
        return best_mask
