"""Text and JSON reporters shared by ``repro lint`` and CI.

Rows (CHANGES-style):
    format_text - ``path:line:col: CODE [rule] message`` + summary footer
    format_json - machine-readable payload (findings, counts, rule table)
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .rules import RULES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import LintResult

__all__ = ["format_text", "format_json"]


def format_text(result: "LintResult", verbose: bool = False) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.code} [{f.rule}] {f.message}"
        for f in result.findings
    ]
    if verbose:
        lines.extend(
            f"{f.path}:{f.line}:{f.col + 1}: {f.code} [{f.rule}] suppressed"
            + (f" ({reason})" if reason else "")
            for f, reason in result.suppressed
        )
        lines.extend(
            f"{f.path}:{f.line}:{f.col + 1}: {f.code} [{f.rule}] baselined"
            for f in result.baselined
        )
    for fp, count in sorted(result.stale_baseline.items()):
        lines.append(
            f"baseline: {count} grandfathered entr{'y' if count == 1 else 'ies'} "
            f"{fp} no longer occur(s) — regenerate with --write-baseline"
        )
    lines.append(
        f"{len(result.findings)} finding(s), {len(result.suppressed)} "
        f"suppressed, {len(result.baselined)} baselined "
        f"({result.modules} modules indexed)"
    )
    return "\n".join(lines)


def format_json(result: "LintResult") -> str:
    payload = {
        "findings": [
            {
                "rule": f.rule,
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in result.findings
        ],
        "counts": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline": int(sum(result.stale_baseline.values())),
            "modules": result.modules,
        },
        "rules": {rule.id: {"code": rule.code, "summary": rule.summary}
                  for rule in RULES.values()},
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2)
