"""Query abstractions shared by every allocator.

The aggregator treats valuation functions as black boxes (Section 2: "the
aggregator relies on the end users to provide a valuation function
``v_q(.)`` with each query").  Concretely, every query exposes

* :meth:`Query.value` — the set valuation ``v_q(S)`` over sensor snapshots;
* :meth:`Query.relevant` — a cheap spatial prefilter (the paper's ``Q_ls``
  in Algorithm 1: only queries a sensor can contribute to are examined);
* :meth:`Query.new_state` — an incremental-valuation state so greedy
  algorithms can evaluate marginal gains without recomputing ``v_q`` from
  scratch (the default state does exactly that recomputation; performance-
  critical query types override it).
"""

from __future__ import annotations

import abc
import enum
import itertools
from typing import Iterable, Sequence

from ..sensors import SensorSnapshot

__all__ = ["QueryType", "Query", "ValuationState", "new_query_id"]

_query_counter = itertools.count()


def new_query_id(prefix: str = "q") -> str:
    """Process-unique query identifier (stable ordering, human readable)."""
    return f"{prefix}{next(_query_counter)}"


class QueryType(enum.Enum):
    """The query taxonomy of Figure 1 (plus the event-detection extension)."""

    POINT = "point"
    MULTI_POINT = "multi_point"
    AGGREGATE = "aggregate"
    TRAJECTORY = "trajectory"
    LOCATION_MONITORING = "location_monitoring"
    REGION_MONITORING = "region_monitoring"
    EVENT = "event"

    @property
    def is_continuous(self) -> bool:
        return self in (
            QueryType.LOCATION_MONITORING,
            QueryType.REGION_MONITORING,
            QueryType.EVENT,
        )


class ValuationState:
    """Incremental evaluation of ``v_q`` while a greedy algorithm grows a set.

    The generic implementation recomputes the full set valuation on every
    :meth:`gain` call, which is always correct; query types with structure
    (max for point queries, coverage masks for aggregates, GP Cholesky
    updates for region monitoring) override for speed.
    """

    def __init__(self, query: "Query") -> None:
        self.query = query
        self.selected: list[SensorSnapshot] = []
        self.value = 0.0

    def gain(self, snapshot: SensorSnapshot) -> float:
        """Marginal gain ``v_q(S + s) - v_q(S)`` without mutating the state."""
        return self.query.value(self.selected + [snapshot]) - self.value

    def add(self, snapshot: SensorSnapshot) -> float:
        """Commit ``snapshot`` to the set; returns the realized gain."""
        gain = self.gain(snapshot)
        self.selected.append(snapshot)
        self.value += gain
        return gain


class Query(abc.ABC):
    """Base class: identity, budget, lifetime, and the valuation interface."""

    def __init__(self, budget: float, query_id: str | None = None, issued_at: int = 0) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = budget
        self.query_id = query_id if query_id is not None else new_query_id()
        self.issued_at = issued_at

    # ------------------------------------------------------------------
    # the valuation interface
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def query_type(self) -> QueryType: ...

    @abc.abstractmethod
    def value(self, snapshots: Sequence[SensorSnapshot]) -> float:
        """Set valuation ``v_q(S)`` in currency units."""

    @abc.abstractmethod
    def relevant(self, snapshot: SensorSnapshot) -> bool:
        """Whether the sensor could contribute any value to this query."""

    def new_state(self) -> ValuationState:
        """Fresh incremental-valuation state (see :class:`ValuationState`)."""
        return ValuationState(self)

    @property
    def max_value(self) -> float:
        """Upper reference value used for quality-of-results reporting.

        For the paper's valuation functions (eqs. 3, 5, 16) this is the
        budget ``B_q``; region monitoring (eq. 7) may exceed it because
        ``F`` is unbounded — the paper's Figure 9(b) shows exactly that.
        """
        return self.budget

    def filter_relevant(self, snapshots: Iterable[SensorSnapshot]) -> list[SensorSnapshot]:
        return [s for s in snapshots if self.relevant(s)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.query_id} budget={self.budget:g}>"
