"""Uniform-grid spatial index over a stacked point set.

The sharding subsystem (:mod:`repro.core.sharding`) partitions one slot's
announcements into uniform grid cells so that a localized query touches
only the sensors in its spatial neighbourhood instead of the whole fleet.
:class:`UniformGridIndex` is the data structure behind that partition: it
buckets a fixed ``(n, 2)`` coordinate array once (vectorized, CSR-style)
and answers *cell-range* queries — "all points in the cells intersecting
this box" — with a handful of array slices.

Contrast with :class:`repro.spatial.grid.GridIndex`, the per-item bucket
dict used by incremental consumers: this index is built in one shot from a
stacked array, returns **column indices** into that array (what the
valuation kernels need), and answers box queries as cell *supersets* —
callers' own arithmetic discards the out-of-radius corners, which is
exactly what keeps sharded valuations bit-identical to dense ones (values
beyond ``dmax`` are zero either way).

Internals: points are assigned integer cells relative to the point set's
own bounding box, cell keys are sorted once, and each bucket is a slice of
the sorted order.  Buckets of one grid column are key-contiguous, so a box
query gathers at most one slice per intersected column (``searchsorted``
over the distinct keys), independent of how many cells the box spans.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

__all__ = ["UniformGridIndex"]

_EMPTY = np.zeros(0, dtype=np.intp)


class UniformGridIndex:
    """Immutable grid bucketing of ``xy`` with square cells of ``cell_size``.

    Attributes:
        xy: the indexed ``(n, 2)`` coordinates (not copied; treated frozen).
        cell_size: side length of the square cells.
        n_cols / n_rows: grid extent, derived from the points' bounding box.
    """

    def __init__(self, xy: np.ndarray, cell_size: float) -> None:
        xy = np.asarray(xy, dtype=float)
        if xy.ndim != 2 or (len(xy) and xy.shape[1] != 2):
            raise ValueError("xy must be an (n, 2) array")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.xy = xy
        self.cell_size = float(cell_size)
        n = len(xy)
        if n == 0:
            self._x0 = self._y0 = 0.0
            self.n_cols = self.n_rows = 0
            self._keys = np.zeros(0, dtype=np.int64)
            self._starts = np.zeros(1, dtype=np.intp)
            self._order = _EMPTY
            return
        self._x0 = float(xy[:, 0].min())
        self._y0 = float(xy[:, 1].min())
        cols = np.floor((xy[:, 0] - self._x0) / self.cell_size).astype(np.int64)
        rows = np.floor((xy[:, 1] - self._y0) / self.cell_size).astype(np.int64)
        self.n_cols = int(cols.max()) + 1
        self.n_rows = int(rows.max()) + 1
        keys = cols * self.n_rows + rows
        order = np.argsort(keys, kind="stable")
        unique_keys, starts = np.unique(keys[order], return_index=True)
        self._keys = unique_keys  # sorted distinct cell keys
        self._starts = np.append(starts, n).astype(np.intp)
        self._order = order.astype(np.intp)

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return len(self.xy)

    @property
    def n_shards(self) -> int:
        """Number of non-empty cells."""
        return len(self._keys)

    def cell_keys_of(self, xy: np.ndarray) -> np.ndarray:
        """Linearized (unclamped) cell keys of arbitrary coordinates —
        equal keys mean same bucket under this index's frozen geometry."""
        cols = np.floor((xy[:, 0] - self._x0) / self.cell_size).astype(np.int64)
        rows = np.floor((xy[:, 1] - self._y0) / self.cell_size).astype(np.int64)
        return cols * self.n_rows + rows

    def cell_of(self, x: float, y: float) -> tuple[int, int]:
        """Integer cell ``(col, row)`` of a coordinate (may lie off-grid)."""
        return (
            int(math.floor((x - self._x0) / self.cell_size)),
            int(math.floor((y - self._y0) / self.cell_size)),
        )

    # ------------------------------------------------------------------
    # bucket access
    # ------------------------------------------------------------------
    def members(self, cell: tuple[int, int]) -> np.ndarray:
        """Sorted point indices bucketed in ``cell`` (empty if none).

        A single bucket is ascending by construction: the stable argsort
        over cell keys preserves the original (already ascending) index
        order within equal keys, so no re-sort is needed.
        """
        col, row = cell
        if not (0 <= col < self.n_cols and 0 <= row < self.n_rows):
            return _EMPTY
        key = col * self.n_rows + row
        b = int(np.searchsorted(self._keys, key))
        if b == len(self._keys) or self._keys[b] != key:
            return _EMPTY
        return self._order[self._starts[b] : self._starts[b + 1]].copy()

    def shards(self) -> Iterator[tuple[tuple[int, int], np.ndarray]]:
        """Iterate ``(cell, sorted member indices)`` over non-empty cells."""
        for b, key in enumerate(self._keys):
            cell = (int(key) // self.n_rows, int(key) % self.n_rows)
            yield cell, self._order[self._starts[b] : self._starts[b + 1]].copy()

    # ------------------------------------------------------------------
    # incremental bucket moves
    # ------------------------------------------------------------------
    def updated(
        self,
        xy: np.ndarray,
        old_to_new: np.ndarray,
        inserted: np.ndarray,
    ) -> "UniformGridIndex | None":
        """A new index over ``xy`` spliced from this one's buckets.

        ``old_to_new`` maps every current column to its column in ``xy``
        (``-1`` = dropped); ``inserted`` lists the ``xy`` columns whose
        bucket must be (re)computed — new arrivals plus movers.
        ``inserted`` is authoritative: a column listed there is evicted
        from any carried bucket before being re-bucketed at its new
        coordinates, so movers need no special marking in ``old_to_new``.
        Surviving columns keep their buckets; only ≤ ``2·len(inserted)``
        buckets change, so the cost is proportional to churn, not ``n``.

        The grid geometry (origin, cell size, extent) is **frozen** from
        this index, so candidate sets may differ from a fresh build's —
        both remain supersets whose extra pairs value to exactly 0.0,
        which is all the sharded-valuation parity argument needs.  Returns
        ``None`` when splicing is unsound or unprofitable (an inserted
        point escapes the frozen extent, the churn is a large fraction of
        the fleet, or this index is empty): the caller builds fresh.

        Requirement (guaranteed by the announce delta): ``old_to_new`` is
        strictly increasing on its kept entries — needed to keep carried
        buckets index-sorted without a re-sort.  ``inserted`` may arrive
        in any order; it is sorted here.
        """
        xy = np.asarray(xy, dtype=float)
        n_old = self.n_points
        if n_old == 0 or len(old_to_new) != n_old:
            return None
        inserted = np.sort(np.asarray(inserted, dtype=np.intp))
        if len(inserted) > max(64, len(xy) // 8):
            return None
        if inserted.size:
            pts = xy[inserted]
            cols = np.floor((pts[:, 0] - self._x0) / self.cell_size).astype(np.int64)
            rows = np.floor((pts[:, 1] - self._y0) / self.cell_size).astype(np.int64)
            if (
                cols.min() < 0
                or rows.min() < 0
                or cols.max() >= self.n_cols
                or rows.max() >= self.n_rows
            ):
                return None
            keys_ins = cols * self.n_rows + rows
        else:
            keys_ins = np.zeros(0, dtype=np.int64)

        mapped = old_to_new[self._order]
        keep = mapped >= 0
        if inserted.size:
            # Evict movers from their carried buckets: the inserted list
            # owns their (re)placement at the new coordinates.
            ins_mask = np.zeros(len(xy), dtype=bool)
            ins_mask[inserted] = True
            keep[keep] &= ~ins_mask[mapped[keep]]
        remaining = mapped[keep].astype(np.intp)
        sorted_keys = np.repeat(self._keys, np.diff(self._starts))
        remaining_keys = sorted_keys[keep]

        if inserted.size:
            by_key = np.argsort(keys_ins, kind="stable")
            keys_ins = keys_ins[by_key]
            cols_ins = inserted[by_key]
            lo = np.searchsorted(remaining_keys, keys_ins, side="left")
            hi = np.searchsorted(remaining_keys, keys_ins, side="right")
            pos = lo.copy()
            for i in range(len(keys_ins)):
                if lo[i] < hi[i]:
                    pos[i] = lo[i] + int(
                        np.searchsorted(remaining[lo[i] : hi[i]], cols_ins[i])
                    )
            order = np.insert(remaining, pos, cols_ins)
            new_keys = np.insert(remaining_keys, pos, keys_ins)
        else:
            order = remaining
            new_keys = remaining_keys

        out = object.__new__(UniformGridIndex)
        out.xy = xy
        out.cell_size = self.cell_size
        out._x0, out._y0 = self._x0, self._y0
        out.n_cols, out.n_rows = self.n_cols, self.n_rows
        n = len(order)
        if n == 0:
            out._keys = np.zeros(0, dtype=np.int64)
            out._starts = np.zeros(1, dtype=np.intp)
            out._order = _EMPTY
            return out
        starts = np.concatenate(([0], np.flatnonzero(np.diff(new_keys)) + 1))
        out._keys = new_keys[starts]
        out._starts = np.append(starts, n).astype(np.intp)
        out._order = order.astype(np.intp)
        return out

    # ------------------------------------------------------------------
    # box queries
    # ------------------------------------------------------------------
    def cell_range(
        self, x_min: float, x_max: float, y_min: float, y_max: float
    ) -> tuple[int, int, int, int] | None:
        """Clipped inclusive cell bounds ``(c0, c1, r0, r1)`` covering the
        box, or ``None`` when the box misses the grid entirely.

        The tuple is a stable identity for the candidate set — two boxes
        with equal ranges touch exactly the same cells — which is what the
        sharded kernel keys its candidate cache on.
        """
        if self.n_points == 0:
            return None
        c0 = math.floor((x_min - self._x0) / self.cell_size)
        c1 = math.floor((x_max - self._x0) / self.cell_size)
        r0 = math.floor((y_min - self._y0) / self.cell_size)
        r1 = math.floor((y_max - self._y0) / self.cell_size)
        if c1 < 0 or r1 < 0 or c0 >= self.n_cols or r0 >= self.n_rows:
            return None
        return (
            max(int(c0), 0),
            min(int(c1), self.n_cols - 1),
            max(int(r0), 0),
            min(int(r1), self.n_rows - 1),
        )

    def indices_in_cell_range(self, c0: int, c1: int, r0: int, r1: int) -> np.ndarray:
        """Sorted point indices of every cell in the inclusive range.

        One slice per intersected grid column: a column's buckets are
        key-contiguous, so its ``[r0, r1]`` rows are one ``searchsorted``
        window over the distinct keys.  Ranges are clipped to the grid —
        an off-grid row bound must not let the linearized key window bleed
        into the neighbouring column's key space.
        """
        if self.n_points == 0:
            return _EMPTY
        c0, c1 = max(c0, 0), min(c1, self.n_cols - 1)
        r0, r1 = max(r0, 0), min(r1, self.n_rows - 1)
        if c0 > c1 or r0 > r1:
            return _EMPTY
        chunks = []
        buckets = 0
        for col in range(c0, c1 + 1):
            base = col * self.n_rows
            lo = int(np.searchsorted(self._keys, base + r0, side="left"))
            hi = int(np.searchsorted(self._keys, base + r1, side="right"))
            if lo < hi:
                chunks.append(self._order[self._starts[lo] : self._starts[hi]])
                buckets += hi - lo
        if not chunks:
            return _EMPTY
        if buckets == 1:
            # One bucket is already ascending (stable argsort preserves the
            # original index order within equal keys); multi-bucket slices
            # are ascending only within each bucket and must be re-sorted.
            return chunks[0].copy()
        out = np.concatenate(chunks) if len(chunks) > 1 else chunks[0].copy()
        out.sort()
        return out

    def indices_in_box(
        self, x_min: float, x_max: float, y_min: float, y_max: float
    ) -> np.ndarray:
        """Sorted indices of all points in cells intersecting the box.

        A *superset* of the points inside the box (whole cells are
        returned); a superset of any disk inscribed in the box a fortiori.
        """
        rng = self.cell_range(x_min, x_max, y_min, y_max)
        if rng is None:
            return _EMPTY
        return self.indices_in_cell_range(*rng)

    def indices_in_disk(self, x: float, y: float, radius: float) -> np.ndarray:
        """Sorted indices of all points in cells touching the disk's
        bounding box — a superset of the points within ``radius``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        return self.indices_in_box(x - radius, x + radius, y - radius, y + radius)
