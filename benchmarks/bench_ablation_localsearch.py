"""Ablation: the local-search improvement threshold epsilon.

[3]'s guarantee degrades as (1/3 - eps/n); larger eps stops the search
earlier.  This sweep measures the utility/time trade-off on a frozen
paper-scale slot, plus the randomized 2/5-approximation variant the paper
mentions but does not use.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import run_once
from repro.core import (
    LocalSearchPointAllocator,
    OptimalPointAllocator,
    RandomizedLocalSearchAllocator,
)
from repro.queries import PointQueryWorkload
from repro.sensors import SensorSnapshot
from repro.spatial import Region

EPSILONS = (0.001, 0.01, 0.1, 1.0)


def build_slot():
    rng = np.random.default_rng(2013)
    region = Region.from_origin(50, 50)
    sensors = [
        SensorSnapshot(i, region.sample_location(rng), 10.0, float(rng.uniform(0, 0.2)), 1.0)
        for i in range(150)
    ]
    queries = PointQueryWorkload(region, n_queries=200, budget=15.0, dmax=5.0).generate(0, rng)
    return queries, sensors


def sweep():
    queries, sensors = build_slot()
    optimum = OptimalPointAllocator().allocate(queries, sensors).total_utility
    rows = []
    for eps in EPSILONS:
        start = time.perf_counter()
        result = LocalSearchPointAllocator(epsilon=eps).allocate(queries, sensors)
        elapsed = time.perf_counter() - start
        rows.append((f"eps={eps}", result.total_utility, optimum, elapsed))
    start = time.perf_counter()
    result = RandomizedLocalSearchAllocator(n_restarts=3, seed=1).allocate(queries, sensors)
    rows.append(("randomized", result.total_utility, optimum, time.perf_counter() - start))
    return rows


def test_localsearch_epsilon_ablation(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nvariant      utility   vs-optimal   time")
    for name, utility, optimum, elapsed in rows:
        print(f"{name:11s}  {utility:8.1f}  {utility / optimum:9.3f}  {elapsed * 1e3:6.1f}ms")
    # Every epsilon keeps far more than the 1/3 guarantee on this workload.
    for _, utility, optimum, _ in rows:
        assert utility >= optimum / 3.0
