"""The paper's core contribution: allocation algorithms, controllers, engine."""

from .aggregator import Aggregator, QueryReceipt, SlotDigest, UserAccount
from .allocation import AllocationResult, Allocator, check_distinct
from .baselines import BaselineAllocator
from .clairvoyant import ClairvoyantPlan, simulate_myopic_gap, solve_clairvoyant
from .engine import (
    EventDetectionStream,
    JointSlotAllocation,
    LocationMonitoringStream,
    OneShotStream,
    QueryStream,
    RegionMonitoringStream,
    SequentialBufferedAllocation,
    SlotEngine,
    normalize_incremental,
    event_detection_engine,
    location_monitoring_engine,
    mix_engine,
    one_shot_engine,
    region_monitoring_engine,
)
from .errors import AllocationError, PaymentInvariantError, ReproError, SolverError
from .greedy import GreedyAllocator, relevant_queries_by_sensor
from .local_search import LocalSearchPointAllocator, RandomizedLocalSearchAllocator
from .metrics import RunningStat, SimulationSummary, SlotRecord
from .mix import BaselineMixAllocator, MixAllocator, MixOutcome
from .monitoring import (
    LocationMonitoringController,
    RegionMonitoringController,
    RegionSlotOutcome,
)
from .optimal import OptimalPointAllocator, exhaustive_point_search
from .payments import proportionate_shares, redistribute_contribution
from .point_problem import PointProblem
from .sampling import SamplingPlan, paper_weight_function, plan_sampling
from .sharding import FleetShard, ShardedKernel, normalize_sharding, resolve_cell_size
from .simulation import (
    LocationMonitoringSimulation,
    MixSimulation,
    OneShotSimulation,
    RegionMonitoringSimulation,
)
from .valuation import ValuationKernel, delta_old_to_new

__all__ = [
    "Aggregator",
    "QueryReceipt",
    "SlotDigest",
    "UserAccount",
    "ClairvoyantPlan",
    "solve_clairvoyant",
    "simulate_myopic_gap",
    "AllocationResult",
    "Allocator",
    "check_distinct",
    "ReproError",
    "AllocationError",
    "PaymentInvariantError",
    "SolverError",
    "OptimalPointAllocator",
    "exhaustive_point_search",
    "LocalSearchPointAllocator",
    "RandomizedLocalSearchAllocator",
    "GreedyAllocator",
    "relevant_queries_by_sensor",
    "BaselineAllocator",
    "PointProblem",
    "ValuationKernel",
    "ShardedKernel",
    "FleetShard",
    "normalize_sharding",
    "normalize_incremental",
    "resolve_cell_size",
    "delta_old_to_new",
    "SlotEngine",
    "QueryStream",
    "OneShotStream",
    "LocationMonitoringStream",
    "RegionMonitoringStream",
    "EventDetectionStream",
    "JointSlotAllocation",
    "SequentialBufferedAllocation",
    "one_shot_engine",
    "location_monitoring_engine",
    "region_monitoring_engine",
    "event_detection_engine",
    "mix_engine",
    "proportionate_shares",
    "redistribute_contribution",
    "LocationMonitoringController",
    "RegionMonitoringController",
    "RegionSlotOutcome",
    "SamplingPlan",
    "plan_sampling",
    "paper_weight_function",
    "MixAllocator",
    "BaselineMixAllocator",
    "MixOutcome",
    "SimulationSummary",
    "SlotRecord",
    "RunningStat",
    "OneShotSimulation",
    "LocationMonitoringSimulation",
    "RegionMonitoringSimulation",
    "MixSimulation",
]
