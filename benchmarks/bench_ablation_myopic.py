"""Ablation: the myopic simplification (eq. 2) vs the clairvoyant ideal (eq. 1).

The paper replaces the long-horizon objective by per-slot optimization,
arguing the required future knowledge does not exist.  On tiny frozen
instances the ideal *is* computable; this bench measures what myopia costs
when the slot-coupling effects (sensor lifetime, privacy-history pricing)
bite.
"""

from __future__ import annotations

import numpy as np

from conftest import run_once
from repro.core import OptimalPointAllocator, simulate_myopic_gap
from repro.queries import PointQuery
from repro.sensors import FixedEnergyCost, PrivacyCostModel, PrivacySensitivity, Sensor
from repro.spatial import Location


def tiny_world(seed: int, lifetime: int, privacy: PrivacySensitivity):
    rng = np.random.default_rng(seed)
    sensors = [
        Sensor(
            i,
            lifetime=lifetime,
            energy_model=FixedEnergyCost(10.0),
            privacy_model=PrivacyCostModel(privacy, base_price=10.0, window=3),
        )
        for i in range(3)
    ]
    positions, queries = [], []
    for _ in range(3):
        positions.append([Location(float(rng.uniform(0, 10)), 0.0) for _ in sensors])
        queries.append(
            [
                PointQuery(
                    Location(float(rng.uniform(0, 10)), 0.0),
                    budget=float(rng.uniform(15, 30)),
                    theta_min=0.0,
                    dmax=6.0,
                )
                for _ in range(3)
            ]
        )
    return queries, positions, sensors


def sweep():
    variants = {
        "uncoupled (lifetime 50)": (50, PrivacySensitivity.ZERO),
        "lifetime 1": (1, PrivacySensitivity.ZERO),
        "privacy HIGH": (10, PrivacySensitivity.HIGH),
        "lifetime 1 + privacy": (1, PrivacySensitivity.HIGH),
    }
    rows = []
    for name, (lifetime, privacy) in variants.items():
        myopic_total, clair_total = 0.0, 0.0
        for seed in range(6):
            queries, positions, sensors = tiny_world(seed, lifetime, privacy)
            myopic, clairvoyant = simulate_myopic_gap(
                queries, positions, sensors, OptimalPointAllocator()
            )
            myopic_total += myopic
            clair_total += clairvoyant
        rows.append((name, myopic_total, clair_total))
    return rows


def test_myopic_gap_ablation(benchmark):
    rows = run_once(benchmark, sweep)
    print("\nvariant                     myopic  clairvoyant  ratio")
    for name, myopic, clairvoyant in rows:
        ratio = myopic / clairvoyant if clairvoyant else 1.0
        print(f"{name:25s}  {myopic:8.1f}  {clairvoyant:11.1f}  {ratio:5.3f}")
    # Without slot coupling the myopic policy is exactly optimal.
    _, myopic, clairvoyant = rows[0]
    assert abs(myopic - clairvoyant) < 1e-6
    # Myopia never wins, and coupling creates a real gap somewhere.
    for _, m, c in rows:
        assert m <= c + 1e-6
    assert any(c - m > 1e-6 for _, m, c in rows[1:])
