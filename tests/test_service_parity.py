"""The service honesty contract: for a recorded admission trace, the
marketplace service's per-slot allocations are bit-identical to an
offline :class:`~repro.core.engine.SlotEngine` replay of the same query
sequence (the :func:`~repro.experiments.allocation_signature` relabeling
discipline of ``experiments/replay.py``).

Every engine configuration the batch layer ships — dense and sharded
kernels, fused and per-row gain refreshes, full-rebuild and incremental
slot state — must uphold the contract, so the suite sweeps recorded
traces across those corners plus saturated admission (rejections must
not perturb what *was* admitted).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.datasets import ScenarioSpec, StreamSpec
from repro.service import (
    BurstyProfile,
    LoadGenerator,
    MarketplaceService,
    PoissonProfile,
    replay_admission_trace,
)

N_TICKS = 4


def make_spec(name, **knobs):
    """A small mixed point+aggregate world the service can tick quickly."""
    return ScenarioSpec(
        name=name,
        dataset="rwm",
        seed=99,
        n_sensors=900,
        n_slots=N_TICKS,
        allocator="greedy",
        streams=[
            StreamSpec("point", {"n_queries": 6, "budget": 12.0}),
            StreamSpec(
                "aggregate",
                {"mean_queries": 3, "count_spread": 0, "min_side": 10.0,
                 "max_side": 20.0},
            ),
        ],
        **knobs,
    )


SCENARIOS = {
    # dense kernel, per-row gains, full rebuild every slot
    "dense": make_spec("svc-dense", sharding=None, fused=False, incremental=False),
    # sharded kernel + fused type-blocked gain batches
    "sharded-fused": make_spec("svc-sharded-fused", sharding="auto", fused="auto"),
    # sharded kernel + incremental slot state over churn mobility
    "sharded-incremental": make_spec(
        "svc-sharded-incremental",
        sharding="auto",
        fused="auto",
        incremental="auto",
        mobility={"kind": "churn", "fraction": 0.02},
    ),
    # dense kernel + incremental slot state (delta path without shards)
    "dense-incremental": make_spec(
        "svc-dense-incremental",
        sharding=None,
        incremental="auto",
        mobility={"kind": "churn", "fraction": 0.02},
    ),
}


def run_and_replay(spec, service, generator, n_ticks=N_TICKS):
    """Drive the service open-loop, then replay its admission trace
    offline against a fresh batch engine of the same spec."""
    generator.drive(service, n_ticks)
    flat = [q for batch in generator.schedule(n_ticks) for q in batch]
    replayed = replay_admission_trace(spec, service.trace, flat)
    return replayed, service.slot_signatures


@pytest.mark.parametrize("name", sorted(SCENARIOS), ids=str)
def test_service_matches_offline_replay(name):
    spec = SCENARIOS[name]
    service = MarketplaceService.from_spec(spec)
    generator = LoadGenerator(
        PoissonProfile(10.0), service.workloads, seed=spec.seed
    )
    replayed, live = run_and_replay(spec, service, generator)
    assert service.metrics.admitted > 0
    assert len(live) == N_TICKS
    assert replayed == live


def test_parity_survives_saturated_admission():
    """Queue-full rejections drop arrivals but must not perturb the
    allocations of what was admitted: the trace (admitted seqs only)
    replays to identical signatures."""
    spec = SCENARIOS["sharded-fused"]
    service = MarketplaceService.from_spec(
        spec, max_queue_depth=8, max_admitted_per_tick=4
    )
    generator = LoadGenerator(
        BurstyProfile(rate=2.0, burst_rate=40.0, period=4, burst_length=1),
        service.workloads,
        seed=7,
    )
    replayed, live = run_and_replay(spec, service, generator)
    assert service.metrics.rejected.get("queue_full", 0) > 0
    assert service.metrics.max_queue_depth <= 8
    assert all(s.admitted <= 4 for s in service.metrics.slots)
    assert replayed == live


def test_parity_across_engine_corners_is_mutual():
    """The same recorded trace replays identically through *different*
    engine knob settings — the service contract composes with the batch
    layer's own dense/sharded and fused/per-row equivalences."""
    spec = SCENARIOS["dense"]
    service = MarketplaceService.from_spec(spec)
    generator = LoadGenerator(
        PoissonProfile(8.0), service.workloads, seed=spec.seed
    )
    replayed, live = run_and_replay(spec, service, generator)
    assert replayed == live

    flat = [q for batch in generator.schedule(N_TICKS) for q in batch]
    sharded = dataclasses.replace(spec, sharding="auto", fused="auto")
    assert replay_admission_trace(sharded, service.trace, flat) == live


def test_trace_queries_replay_without_regeneration():
    """``queries_by_seq=None`` replays the service's own recorded query
    objects — the weaker (object-identity) form of the contract."""
    spec = SCENARIOS["dense"]
    service = MarketplaceService.from_spec(spec)
    generator = LoadGenerator(
        PoissonProfile(6.0), service.workloads, seed=3
    )
    generator.drive(service, N_TICKS)
    replayed = replay_admission_trace(spec, service.trace)
    assert replayed == service.slot_signatures
