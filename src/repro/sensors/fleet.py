"""The sensor fleet: population + mobility + per-slot announcements.

The fleet is the boundary between the physical world (mobility, batteries,
privacy histories) and the aggregator.  Each slot it publishes the
announcements of the sensors that are (a) inside the working region and
(b) not exhausted; after allocation it books the selected measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..mobility import MobilityModel
from ..spatial import Region
from .costs import (
    FixedEnergyCost,
    LinearEnergyCost,
    PrivacyCostModel,
    PrivacySensitivity,
)
from .sensor import Sensor, SensorSnapshot
from .trust import FullTrust, TrustModel

__all__ = ["SensorFleet", "FleetConfig"]


@dataclass(frozen=True)
class FleetConfig:
    """Population-level parameters used to build a fleet (Section 4.1).

    Attributes:
        base_price: ``C_s`` (paper: 10 for every sensor).
        inaccuracy_range: per-sensor gamma ~ U[range] (paper: [0, 0.2]).
        lifetime: max readings per sensor (paper: simulation length, or 25).
        linear_energy: if True use the linear energy model with per-sensor
            ``beta ~ U[beta_range]``; otherwise the fixed model.
        beta_range: support of the beta draw (paper: [0, 4]).
        random_privacy: if True draw each sensor's privacy sensitivity level
            uniformly from the five levels; otherwise all Zero.
        privacy_window: the ``w`` of eq. 14.
        trust_model: distribution of per-sensor trust (paper default: full).
    """

    base_price: float = 10.0
    inaccuracy_range: tuple[float, float] = (0.0, 0.2)
    lifetime: int = 50
    linear_energy: bool = False
    beta_range: tuple[float, float] = (0.0, 4.0)
    random_privacy: bool = False
    privacy_window: int = 5
    trust_model: TrustModel = FullTrust()

    def __post_init__(self) -> None:
        lo, hi = self.inaccuracy_range
        if not (0.0 <= lo <= hi <= 1.0):
            raise ValueError("inaccuracy_range must satisfy 0 <= lo <= hi <= 1")
        if self.lifetime < 1:
            raise ValueError("lifetime must be >= 1")
        b_lo, b_hi = self.beta_range
        if not (0.0 <= b_lo <= b_hi):
            raise ValueError("beta_range must satisfy 0 <= lo <= hi")


class SensorFleet:
    """All sensors of a scenario plus the mobility model that moves them."""

    def __init__(
        self,
        mobility: MobilityModel,
        working_region: Region,
        config: FleetConfig,
        rng: np.random.Generator,
    ) -> None:
        if not mobility.region.contains_region(working_region):
            raise ValueError("working region must lie inside the mobility region")
        self._mobility = mobility
        self._working_region = working_region
        self._config = config
        self._clock = 0
        n = mobility.n_sensors
        gammas = rng.uniform(*config.inaccuracy_range, size=n)
        trusts = config.trust_model.sample(n, rng)
        levels = list(PrivacySensitivity)
        self._sensors: list[Sensor] = []
        for i in range(n):
            if config.linear_energy:
                beta = float(rng.uniform(*config.beta_range))
                energy_model = LinearEnergyCost(config.base_price, beta)
            else:
                energy_model = FixedEnergyCost(config.base_price)
            if config.random_privacy:
                sensitivity = levels[int(rng.integers(0, len(levels)))]
            else:
                sensitivity = PrivacySensitivity.ZERO
            privacy_model = PrivacyCostModel(
                sensitivity=sensitivity,
                base_price=config.base_price,
                window=config.privacy_window,
            )
            self._sensors.append(
                Sensor(
                    sensor_id=i,
                    inaccuracy=float(gammas[i]),
                    trust=float(trusts[i]),
                    lifetime=config.lifetime,
                    energy_model=energy_model,
                    privacy_model=privacy_model,
                )
            )

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """Current time slot (starts at 0)."""
        return self._clock

    @property
    def working_region(self) -> Region:
        return self._working_region

    @property
    def n_sensors(self) -> int:
        return len(self._sensors)

    @property
    def sensors(self) -> Sequence[Sensor]:
        return self._sensors

    def sensor(self, sensor_id: int) -> Sensor:
        return self._sensors[sensor_id]

    # ------------------------------------------------------------------
    # the slot protocol
    # ------------------------------------------------------------------
    def announcements(self) -> list[SensorSnapshot]:
        """Snapshots of usable sensors currently in the working region.

        "At the beginning of each time slot [sensors] announce their
        location and price of providing a measurement at that location"
        (Section 2.1).  Exhausted sensors stay silent (Section 4.1's
        lifetime rule).
        """
        snapshots = []
        locations = self._mobility.locations()
        for sensor, location in zip(self._sensors, locations):
            if sensor.is_exhausted:
                continue
            if not self._working_region.contains(location):
                continue
            snapshots.append(sensor.snapshot(location, self._clock))
        return snapshots

    def record_measurements(self, sensor_ids: Sequence[int]) -> None:
        """Book one reading for each selected sensor at the current slot."""
        for sensor_id in set(sensor_ids):
            self._sensors[sensor_id].record_measurement(self._clock)

    def advance(self) -> None:
        """End the slot: move every sensor and tick the clock."""
        self._mobility.advance()
        self._clock += 1

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def exhausted_count(self) -> int:
        return sum(1 for s in self._sensors if s.is_exhausted)

    def total_readings(self) -> int:
        return sum(s.readings_taken for s in self._sensors)

    def apply(self, fn: Callable[[Sensor], None]) -> None:
        """Run ``fn`` on every sensor (testing/instrumentation hook)."""
        for sensor in self._sensors:
            fn(sensor)
