"""The shared world coverage raster: one slot's geometry caches.

A slot with many region queries repeats three kinds of geometric work
against the *same* announced coordinates:

* **coverage rasterization** — every aggregate/trajectory query builds an
  ``(n_relevant, n_cells)`` mask matrix (``CoverageFunction.masks_for``)
  even though a sensor's covered cells are a tiny disk of the region;
* **region containment** — monitoring controllers and relevance prefilters
  evaluate ``Region.contains_many`` / ``Region.exterior_distance_sq`` per
  consumer per call, although a (region, announcement-set) pair can only
  ever produce one answer per slot;
* and every consumer re-derives these independently, so nothing is shared
  between the dense kernel, a sharded kernel's candidate views, and the
  monitoring controllers.

:class:`WorldRaster` is the one slot-level home for all of it.  It is keyed
by the announced ``(n, 2)`` coordinate block (the same array object the
kernel, the announcement batch and the controllers already share) and
caches

* :meth:`coverage_rows` — per-sensor covered-cell rows in CSR form
  (``indptr``/``cells``), the structure the fused aggregate gain blocks
  (:class:`repro.queries.aggregate._CoverageBlock`) index into;
* :meth:`exterior_distance_sq` / :meth:`contains_mask` — per-region
  containment passes, shared by aggregate ``relevant_mask`` screening and
  ``RegionMonitoringController.region_counts``.

**Bit-identity contract.**  Every cached quantity is produced by exactly
the arithmetic of the uncached path.  Containment caches call the very
``Region`` methods consumers called before.  Coverage rows reproduce the
membership of ``masks_for_xy`` row-for-row: the grid-accelerated builder
only *pre-selects candidate cells* with a conservative index box — the
final membership test is the same ``sqrt(dx*dx + dy*dy) <= sensing_range``
on the function's own stored cell coordinates, so a cell is covered in the
CSR iff it is covered in the dense mask, down to the last ulp of a
boundary case.

**The grid fast path.**  For exact :class:`~repro.spatial.AreaCoverage` /
:class:`~repro.spatial.WeightedCoverage` instances (subclasses are *not*
trusted — they may re-rasterize arbitrarily and fall back to the dense
mask builder) the cell layout is the row-major ``Region.grid_cells`` grid,
so each sensor's candidate cells form a small index box around it: the
builder enumerates ``O(r^2 / cell^2)`` candidates per sensor instead of
testing all ``n_cells``, which is what turns a 48x48-region slot's
per-sensor work from ~2300 cells into ~120.  The layout is validated
against the function's stored ``_cells`` (count and exact first/last
centres) before it is trusted.

Lifetime: a raster lives exactly as long as its coordinate block — it is
attached to the announcement batch (or kernel) that owns the array, so all
of one slot's consumers (dense kernel, sharded kernel candidate machinery,
monitoring controllers) resolve to the same instance and every cache entry
is computed at most once per slot.
"""

from __future__ import annotations

import numpy as np

from .coverage import AreaCoverage, CoverageFunction, WeightedCoverage, masks_for_xy
from .region import Region

__all__ = ["WorldRaster", "get_raster"]

_ATTR = "_world_raster"


def get_raster(holder, xy: np.ndarray) -> "WorldRaster":
    """The :class:`WorldRaster` shared by all consumers of ``xy``.

    ``holder`` is the object that owns the coordinate block — an
    :class:`~repro.sensors.AnnouncementBatch`, usually.  The raster is
    cached as an attribute on it so the kernel, the sharded candidate
    machinery and the monitoring controllers all resolve to one instance;
    holders that refuse attributes (plain lists) simply get a fresh raster
    per call, which is correct and merely uncached.
    """
    raster = getattr(holder, _ATTR, None)
    if raster is not None and raster.xy is xy:
        return raster
    raster = WorldRaster(xy)
    try:
        setattr(holder, _ATTR, raster)
    except (AttributeError, TypeError):
        pass
    return raster


def _grid_layout(fn: CoverageFunction):
    """``(x_min, y_min, cell, nx, ny)`` when ``fn`` is a trusted region grid.

    Exact-type gate (mirroring ``ShardedKernel._query_box``): only the
    in-repo rasterized region functions are known to lay their cells out as
    the row-major ``Region.grid_cells`` grid.  The reconstruction is then
    validated against the stored cells — count plus exact first/last centre
    coordinates (the same ``x_min + (i + 0.5) * cell`` expression
    ``grid_cells`` evaluates, so equality is exact, not approximate).
    """
    if type(fn) not in (AreaCoverage, WeightedCoverage):
        return None
    region, cell = fn.region, float(fn.cell_size)
    if not cell > 0.0:
        return None
    nx = max(1, int(round(region.width / cell)))
    ny = max(1, int(round(region.height / cell)))
    cells = fn._cells
    if len(cells) != nx * ny:
        return None
    first_x = region.x_min + (0 + 0.5) * cell
    first_y = region.y_min + (0 + 0.5) * cell
    last_x = region.x_min + (nx - 1 + 0.5) * cell
    last_y = region.y_min + (ny - 1 + 0.5) * cell
    if (
        cells[0, 0] != first_x
        or cells[0, 1] != first_y
        or cells[-1, 0] != last_x
        or cells[-1, 1] != last_y
    ):
        return None
    return region.x_min, region.y_min, cell, nx, ny


class WorldRaster:
    """Per-slot geometry caches over one announced coordinate block.

    Attributes:
        xy: the ``(n, 2)`` world coordinates every cache is keyed under —
            the same array object the kernel/batch stacked, never copied.
    """

    def __init__(self, xy: np.ndarray) -> None:
        self.xy = np.asarray(xy, dtype=float)
        # id(fn) -> (fn, cols, indptr, cells); fn is held strongly both to
        # pin the id against reuse and because the raster's lifetime is one
        # slot's announcement block.
        self._coverage_rows: dict[int, tuple] = {}
        self._exterior: dict[Region, np.ndarray] = {}
        self._contains: dict[Region, np.ndarray] = {}

    # ------------------------------------------------------------------
    # region containment caches
    # ------------------------------------------------------------------
    def exterior_distance_sq(self, region: Region) -> np.ndarray:
        """Cached ``region.exterior_distance_sq`` over the world block.

        The returned array is shared and read-only; thresholding it (e.g.
        ``<= sensing_range**2`` for the aggregate relevance prefilter)
        allocates a fresh mask, so consumers compose freely.
        """
        out = self._exterior.get(region)
        if out is None:
            out = region.exterior_distance_sq(self.xy)
            out.setflags(write=False)
            self._exterior[region] = out
        return out

    def contains_mask(self, region: Region) -> np.ndarray:
        """Cached ``region.contains_many`` over the world block (read-only)."""
        out = self._contains.get(region)
        if out is None:
            out = region.contains_many(self.xy)
            out.setflags(write=False)
            self._contains[region] = out
        return out

    # ------------------------------------------------------------------
    # per-sensor covered-cell rows
    # ------------------------------------------------------------------
    def coverage_rows(
        self, fn: CoverageFunction, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """CSR covered-cell rows of ``fn`` for the world columns ``cols``.

        Returns ``(indptr, cells)``: row ``i`` (sensor ``cols[i]``) covers
        the cell indices ``cells[indptr[i]:indptr[i+1]]`` of ``fn``'s own
        cell order — exactly the ``True`` positions of row ``i`` of
        ``masks_for_xy(fn, xy[cols])``, ascending.  Both arrays are shared
        and read-only.
        """
        cols = np.asarray(cols, dtype=np.intp)
        key = id(fn)
        entry = self._coverage_rows.get(key)
        if (
            entry is not None
            and entry[0] is fn
            and (entry[1] is cols or np.array_equal(entry[1], cols))
        ):
            return entry[2], entry[3]
        indptr, cells = self._build_rows(fn, cols)
        indptr.setflags(write=False)
        cells.setflags(write=False)
        self._coverage_rows[key] = (fn, cols, indptr, cells)
        return indptr, cells

    def _build_rows(
        self, fn: CoverageFunction, cols: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        layout = _grid_layout(fn)
        if layout is None:
            # Dense fallback: any coverage function, any cell layout.  The
            # mask matrix is transient — only its nonzero structure is kept.
            masks = masks_for_xy(fn, self.xy[cols])
            rows, cells = np.nonzero(masks)
            counts = np.bincount(rows, minlength=len(cols))
            indptr = np.zeros(len(cols) + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            return indptr, cells.astype(np.int64, copy=False)
        x_min, y_min, cell, nx, ny = layout
        r = float(fn.sensing_range)
        sx = self.xy[cols, 0]
        sy = self.xy[cols, 1]
        # Conservative candidate index boxes (padded by one cell so float
        # rounding of the division can never exclude a boundary cell); the
        # exact distance test below decides true membership.
        ix_lo = np.floor((sx - r - x_min) / cell - 0.5).astype(np.int64) - 1
        ix_hi = np.ceil((sx + r - x_min) / cell - 0.5).astype(np.int64) + 1
        iy_lo = np.floor((sy - r - y_min) / cell - 0.5).astype(np.int64) - 1
        iy_hi = np.ceil((sy + r - y_min) / cell - 0.5).astype(np.int64) + 1
        np.clip(ix_lo, 0, nx - 1, out=ix_lo)
        np.clip(ix_hi, 0, nx - 1, out=ix_hi)
        np.clip(iy_lo, 0, ny - 1, out=iy_lo)
        np.clip(iy_hi, 0, ny - 1, out=iy_hi)
        box_nx = ix_hi - ix_lo + 1
        box_ny = iy_hi - iy_lo + 1
        counts = box_nx * box_ny
        total = int(counts.sum())
        if total == 0:
            return np.zeros(len(cols) + 1, dtype=np.int64), np.zeros(0, dtype=np.int64)
        owner = np.repeat(np.arange(len(cols), dtype=np.int64), counts)
        prev = np.zeros(len(cols), dtype=np.int64)
        np.cumsum(counts[:-1], out=prev[1:])
        rank = np.arange(total, dtype=np.int64) - prev[owner]
        ix = ix_lo[owner] + rank // box_ny[owner]
        iy = iy_lo[owner] + rank % box_ny[owner]
        cell_idx = ix * ny + iy
        # Membership on the function's stored cell coordinates, with the
        # dense builder's exact arithmetic (cell - sensor, sqrt, <= r).
        cxy = fn._cells[cell_idx]
        dx = cxy[:, 0] - sx[owner]
        dy = cxy[:, 1] - sy[owner]
        keep = np.sqrt(dx * dx + dy * dy) <= r
        owner = owner[keep]
        cells = cell_idx[keep]
        counts = np.bincount(owner, minlength=len(cols))
        indptr = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, cells
