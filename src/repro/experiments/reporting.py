"""Plain-text rendering of reproduced figures.

The paper's figures are line plots; we print the underlying series as
aligned tables (one row per x value, one column per algorithm), which is
what EXPERIMENTS.md records and what the benches emit.
"""

from __future__ import annotations

from .runner import FigureResult

__all__ = ["format_figure", "format_metric_table", "ascii_chart"]


def ascii_chart(
    result: FigureResult,
    metric: str,
    width: int = 60,
    height: int = 12,
) -> str:
    """A terminal line chart of one metric across the sweep.

    One symbol per algorithm; points are plotted on a character canvas and
    the y-range annotated — enough to eyeball the crossovers the paper's
    figures show without a plotting stack.
    """
    algorithms = [a for a in result.series if metric in result.series[a]]
    if not algorithms or not result.x_values:
        return f"(no series for metric {metric!r})"
    symbols = "ox+*#@%&"
    all_values = [v for a in algorithms for v in result.series[a][metric]]
    lo, hi = min(all_values), max(all_values)
    if hi == lo:
        hi = lo + 1.0
    canvas = [[" "] * width for _ in range(height)]
    n = len(result.x_values)
    for ai, algorithm in enumerate(algorithms):
        series = result.series[algorithm][metric]
        for i, value in enumerate(series):
            col = 0 if n == 1 else int(round(i * (width - 1) / (n - 1)))
            row = int(round((value - lo) / (hi - lo) * (height - 1)))
            canvas[height - 1 - row][col] = symbols[ai % len(symbols)]
    lines = [f"[{metric}]  y: {lo:.3g} .. {hi:.3g}"]
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    x_lo, x_hi = result.x_values[0], result.x_values[-1]
    lines.append(f" x: {x_lo:g} .. {x_hi:g} ({result.x_label})")
    lines.append(
        "   " + "  ".join(f"{symbols[i % len(symbols)]}={a}" for i, a in enumerate(algorithms))
    )
    return "\n".join(lines)


def format_metric_table(result: FigureResult, metric: str) -> str:
    """One metric as an aligned table over the sweep."""
    algorithms = [a for a in result.series if metric in result.series[a]]
    if not algorithms:
        return f"(no series for metric {metric!r})"
    header = [result.x_label] + algorithms
    rows: list[list[str]] = []
    for i, x in enumerate(result.x_values):
        row = [f"{x:g}"]
        for algorithm in algorithms:
            series = result.series[algorithm][metric]
            row.append(f"{series[i]:.3f}" if i < len(series) else "-")
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) for c in range(len(header))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_figure(result: FigureResult) -> str:
    """Every metric of a figure, titled, ready for the terminal."""
    metrics: list[str] = []
    for per_alg in result.series.values():
        for metric in per_alg:
            if metric not in metrics:
                metrics.append(metric)
    blocks = [f"== {result.figure_id}: {result.title} =="]
    if result.elapsed_seconds:
        blocks[0] += f"  ({result.elapsed_seconds:.1f}s)"
    for metric in metrics:
        blocks.append(f"\n[{metric}]")
        blocks.append(format_metric_table(result, metric))
    if result.notes:
        blocks.append(f"\nnotes: {result.notes}")
    return "\n".join(blocks)
