"""Tests for continuous queries: location and region monitoring state."""

from __future__ import annotations

import numpy as np
import pytest

from helpers import make_snapshot
from repro.phenomena import (
    GaussianProcessField,
    HarmonicRegressionModel,
    OzoneTraceSynthesizer,
    RBFKernel,
    schedule_for_window,
)
from repro.queries import LocationMonitoringQuery, RegionMonitoringQuery
from repro.spatial import Location, Region

SERIES = OzoneTraceSynthesizer().generate(50, np.random.default_rng(5))
MODEL = HarmonicRegressionModel(50, 1)


def lm_query(t1=10, duration=12, budget_factor=15.0, desired=None) -> LocationMonitoringQuery:
    t2 = t1 + duration - 1
    if desired is None:
        desired = schedule_for_window(SERIES, t1, duration, max(1, duration // 3), MODEL)
    return LocationMonitoringQuery(
        Location(5, 5), t1, t2, desired, budget=duration * budget_factor,
        series=SERIES, model=MODEL,
    )


class TestContinuousLifecycle:
    def test_active_window(self):
        q = lm_query(t1=10, duration=5)
        assert not q.active(9)
        assert q.active(10) and q.active(14)
        assert q.expired(15)

    def test_duration(self):
        assert lm_query(t1=3, duration=7).duration == 7

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            LocationMonitoringQuery(
                Location(0, 0), 5, 4, [], 10.0, SERIES, MODEL
            )

    def test_remaining_budget(self):
        q = lm_query(budget_factor=10.0, duration=10)
        assert q.remaining_budget == 100.0
        q.apply_sample(q.t1, 1.0, 30.0)
        assert q.remaining_budget == 70.0


class TestLocationMonitoringValuation:
    def test_desired_times_must_be_in_window(self):
        with pytest.raises(ValueError):
            LocationMonitoringQuery(Location(0, 0), 10, 15, [20], 10.0, SERIES, MODEL)

    def test_gain_ratio_one_at_full_schedule(self):
        q = lm_query()
        assert q.gain_ratio(q.desired_times) == pytest.approx(1.0)

    def test_gain_ratio_below_one_for_partial_schedule(self):
        q = lm_query(duration=15)
        partial = q.desired_times[:1]
        assert q.gain_ratio(partial) < 1.0

    def test_value_eq16(self):
        q = lm_query()
        q.apply_sample(q.desired_times[0], 0.8, 5.0)
        expected = q.budget * q.gain_ratio(q.sampled_times) * 0.8
        assert q.achieved_value() == pytest.approx(expected)

    def test_value_zero_without_samples(self):
        assert lm_query().achieved_value() == 0.0

    def test_full_perfect_schedule_attains_budget(self):
        q = lm_query()
        for t in q.desired_times:
            q.apply_sample(t, 1.0, 1.0)
        assert q.achieved_value() == pytest.approx(q.budget)
        assert q.quality_of_results() == pytest.approx(1.0)

    def test_marginal_gain_nonnegative(self):
        q = lm_query()
        for t in range(q.t1, q.t2 + 1):
            assert q.marginal_gain(t) >= 0.0

    def test_surplus_grows_with_cheap_samples(self):
        q = lm_query()
        assert q.surplus == 0.0
        q.apply_sample(q.desired_times[0], 1.0, 0.5)
        assert q.surplus > 0.0


class TestScheduleTracking:
    def test_next_scheduled_time_advances(self):
        q = lm_query()
        first = q.desired_times[0]
        assert q.next_scheduled_time() == first
        q.apply_sample(first, 1.0, 1.0)
        nxt = q.next_scheduled_time()
        assert nxt is None or nxt > first

    def test_missed_schedule_detection(self):
        q = lm_query()
        first = q.desired_times[0]
        assert not q.has_missed_schedule(first)
        assert q.has_missed_schedule(first + 1)

    def test_sample_after_miss_covers_schedule(self):
        q = lm_query()
        first = q.desired_times[0]
        q.apply_sample(first + 1, 1.0, 1.0)  # catch-up sample
        nxt = q.next_scheduled_time()
        assert nxt is None or nxt > first

    def test_past_schedule(self):
        q = lm_query()
        assert q.past_schedule(q.desired_times[-1] + 1)
        assert not q.past_schedule(q.desired_times[0])

    def test_negative_payment_rejected(self):
        q = lm_query()
        with pytest.raises(ValueError):
            q.apply_sample(q.t1, 1.0, -1.0)


class TestRegionMonitoring:
    GP = GaussianProcessField(RBFKernel(1.0, 2.0), noise=0.2)

    def rm_query(self, t1=0, duration=10, budget=60.0) -> RegionMonitoringQuery:
        return RegionMonitoringQuery(
            Region(0, 0, 8, 6), t1, t1 + duration - 1, budget, self.GP
        )

    def test_cells_rasterized(self):
        q = self.rm_query()
        assert len(q.cells) == 48

    def test_slot_value_eq7(self):
        q = self.rm_query(budget=50.0)
        snaps = [make_snapshot(0, x=2, y=2, inaccuracy=0.1), make_snapshot(1, x=6, y=4)]
        reduction = q.variance_reduction([s.location for s in snaps])
        mean_q = (0.9 + 1.0) / 2
        assert q.slot_value(snaps) == pytest.approx(50.0 * reduction * mean_q)

    def test_slot_value_empty(self):
        assert self.rm_query().slot_value([]) == 0.0

    def test_record_slot_accumulates(self):
        q = self.rm_query()
        snaps = [make_snapshot(0, x=2, y=2)]
        value = q.record_slot(snaps, planned_value=5.0, payment=3.0)
        assert value > 0
        assert q.spent == 3.0
        assert q.used_sensor_count == 1
        assert q.total_value() == pytest.approx(value)

    def test_quality_of_results_ratio(self):
        q = self.rm_query()
        snaps = [make_snapshot(0, x=2, y=2)]
        achieved = q.slot_value(snaps)
        q.record_slot(snaps, planned_value=achieved / 2.0, payment=0.0)
        assert q.quality_of_results() == pytest.approx(2.0)

    def test_quality_skips_unplanned_slots(self):
        q = self.rm_query()
        q.record_slot([], planned_value=0.0, payment=0.0)
        assert q.quality_of_results() == 0.0

    def test_reduction_state_matches_direct(self):
        q = self.rm_query()
        state = q.reduction_state()
        locs = [Location(1, 1), Location(5, 3)]
        for loc in locs:
            state.add(loc)
        assert state.reduction == pytest.approx(q.variance_reduction(locs), rel=1e-6)

    def test_negative_payment_rejected(self):
        with pytest.raises(ValueError):
            self.rm_query().record_slot([], 0.0, -1.0)

    def test_coarser_cells_reduce_target_count(self):
        fine = RegionMonitoringQuery(Region(0, 0, 8, 6), 0, 5, 10.0, self.GP, cell_size=1.0)
        coarse = RegionMonitoringQuery(Region(0, 0, 8, 6), 0, 5, 10.0, self.GP, cell_size=2.0)
        assert len(coarse.cells) < len(fine.cells)
