"""Command-line interface: reproduce figures, run demos and scenario specs.

Usage::

    python -m repro figures --figure fig2 --scale ci
    python -m repro figures --all --scale paper --out results/
    python -m repro scenario --example > myspec.json
    python -m repro scenario myspec.json --slots 20
    python -m repro scenario myspec.json --json > summary.json
    python -m repro replay myspec.json --csv replay.csv
    python -m repro serve --spec myspec.json --slots 20 --exit-after
    python -m repro loadgen myspec.json --slots 20 --check-parity
    python -m repro lint --format=json
    python -m repro demo
    python -m repro info
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from . import __version__
from .experiments import ALL_FIGURES, format_figure, get_scale, validate_figure
from .experiments.reporting import ascii_chart

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Utility-driven Data Acquisition in "
            "Participatory Sensing' (EDBT 2013)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="reproduce evaluation figures")
    figures.add_argument("--figure", action="append", default=None,
                         help="figure id (repeatable); e.g. fig2")
    figures.add_argument("--all", action="store_true", help="run every figure")
    figures.add_argument("--scale", default=None, choices=["paper", "ci"],
                         help="experiment scale (default: REPRO_SCALE or ci)")
    figures.add_argument("--seed", type=int, default=2013)
    figures.add_argument("--out", default=None,
                         help="directory for JSON series dumps")
    figures.add_argument("--chart", action="store_true",
                         help="render ASCII charts in addition to tables")
    figures.add_argument("--validate", action="store_true",
                         help="run the DESIGN.md shape checklist on each figure")

    scenario = sub.add_parser(
        "scenario", help="run a declared ScenarioSpec (JSON) through the SlotEngine"
    )
    scenario.add_argument("spec", nargs="*", default=[],
                          help="path(s) to ScenarioSpec JSON files")
    scenario.add_argument("--example", action="store_true",
                          help="print a ready-to-run sample spec and exit")
    scenario.add_argument("--slots", type=int, default=None,
                          help="override the spec's n_slots")
    scenario.add_argument("--sharding", default=None, metavar="CELL",
                          help="override the spec's spatial sharding: 'off', "
                               "'auto', or a shard cell size (allocations are "
                               "bit-identical either way)")
    scenario.add_argument("--fused", default=None, metavar="MODE",
                          help="override the spec's fused gain-block pipeline: "
                               "'off' or 'auto' (allocations are bit-identical "
                               "either way)")
    scenario.add_argument("--incremental", default=None, metavar="MODE",
                          help="override the spec's incremental slot state: "
                               "'off' or 'auto' (allocations are "
                               "bit-identical either way)")
    scenario.add_argument("--backend", default=None, metavar="NAME",
                          help="override the spec's array backend: 'numpy', "
                               "'instrumented' (allocation metering), 'cupy' "
                               "or 'jax' (numpy-family backends are "
                               "bit-identical)")
    scenario.add_argument("--workspace", default=None, metavar="MODE",
                          help="override the spec's preallocated slot "
                               "workspaces: 'off' or 'auto' (allocations are "
                               "bit-identical either way)")
    scenario.add_argument("--profile", action="store_true",
                          help="print a per-slot phase-timing breakdown "
                               "(announce / kernel / allocate / settle); "
                               "with --backend instrumented, also per-phase "
                               "allocation counts")
    scenario.add_argument("--json", action="store_true",
                          help="dump the machine-readable summary (metrics + "
                               "per-phase timings) to stdout instead of the "
                               "human-readable report; one object for a "
                               "single spec, an array for several")
    scenario.add_argument("--out", default=None,
                          help="write per-spec summary JSON files here")

    replay = sub.add_parser(
        "replay",
        help="replay a spec against full-rebuild vs incremental engines "
             "and assert bit-identical allocations",
    )
    replay.add_argument("spec", nargs="+",
                        help="path(s) to ScenarioSpec JSON files")
    replay.add_argument("--slots", type=int, default=None,
                        help="override the spec's n_slots")
    replay.add_argument("--backend", default=None, metavar="NAME",
                        help="override the spec's array backend (see "
                             "'repro scenario --backend')")
    replay.add_argument("--profile", action="store_true",
                        help="run both engines on the allocation-metering "
                             "backend and add per-phase allocation "
                             "count/bytes columns to the report and CSV")
    replay.add_argument("--csv", default=None, metavar="PATH",
                        help="write the per-slot latency/churn/parity CSV "
                             "here (per spec; multiple specs get a "
                             "-<name> suffix)")

    serve = sub.add_parser(
        "serve",
        help="run a spec as a long-lived marketplace service (async slot "
             "ticker + admission control); with an arrivals block or "
             "--rate, an open-loop load generator drives it",
    )
    serve.add_argument("--spec", required=True,
                       help="path to the ScenarioSpec JSON file")
    serve.add_argument("--slots", type=int, default=None,
                       help="number of ticks to run (default: the spec's "
                            "n_slots)")
    serve.add_argument("--backend", default=None, metavar="NAME",
                       help="override the spec's array backend (see "
                            "'repro scenario --backend')")
    serve.add_argument("--tick", type=float, default=None, metavar="SECONDS",
                       help="override the ticker interval (0 = "
                            "run-to-completion)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="override the admission queue bound")
    serve.add_argument("--admit-cap", type=int, default=None,
                       help="override the per-tick admission cap")
    serve.add_argument("--rate", type=float, default=None,
                       help="attach a Poisson load generator at this "
                            "arrival rate (overrides the spec's arrivals "
                            "block)")
    serve.add_argument("--exit-after", action="store_true",
                       help="exit once --slots ticks have run (without it "
                            "the service ticks until interrupted)")
    serve.add_argument("--metrics", default=None, metavar="PATH",
                       help="write the service SLO metrics JSON here")
    serve.add_argument("--metrics-csv", default=None, metavar="PATH",
                       help="write the per-slot service metrics CSV here")

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop load generation: drive a spec's marketplace "
             "service with Poisson/bursty arrivals and report admission "
             "stats + slot latency SLOs",
    )
    loadgen.add_argument("spec", help="path to the ScenarioSpec JSON file")
    loadgen.add_argument("--slots", type=int, default=None,
                         help="number of ticks (default: the spec's n_slots)")
    loadgen.add_argument("--profile", default=None,
                         choices=["poisson", "bursty"],
                         help="arrival profile (default: the spec's "
                              "arrivals block, else poisson)")
    loadgen.add_argument("--rate", type=float, default=None,
                         help="base arrival rate per tick")
    loadgen.add_argument("--burst-rate", type=float, default=None,
                         help="bursty profile: arrival rate inside bursts")
    loadgen.add_argument("--period", type=int, default=None,
                         help="bursty profile: ticks between burst starts")
    loadgen.add_argument("--burst-length", type=int, default=None,
                         help="bursty profile: burst duration in ticks")
    loadgen.add_argument("--seed", type=int, default=None,
                         help="arrival-stream seed")
    loadgen.add_argument("--queue-depth", type=int, default=None,
                         help="override the admission queue bound")
    loadgen.add_argument("--admit-cap", type=int, default=None,
                         help="override the per-tick admission cap")
    loadgen.add_argument("--check-parity", action="store_true",
                         help="after the run, batch-replay the recorded "
                              "admission trace offline and fail (exit 1) "
                              "unless every slot's allocation is "
                              "bit-identical")
    loadgen.add_argument("--metrics", default=None, metavar="PATH",
                         help="write the service SLO metrics JSON here")
    loadgen.add_argument("--metrics-csv", default=None, metavar="PATH",
                         help="write the per-slot service metrics CSV here")

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant checker (capability hooks, batch-hook "
             "pairing, determinism, ULP hygiene, hot loops, async hygiene)",
    )
    lint.add_argument("paths", nargs="*", default=[],
                      help="files/dirs to lint (default: src/repro)")
    lint.add_argument("--root", default=".",
                      help="repo root the rule scopes and baseline resolve "
                           "against (default: cwd)")
    lint.add_argument("--format", default="text", choices=["text", "json"],
                      help="report format")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="baseline JSON of grandfathered findings "
                           "(default: <root>/lint-baseline.json when present)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="grandfather every current finding into the "
                           "baseline file and exit 0")
    lint.add_argument("--rules", default=None, metavar="IDS",
                      help="comma-separated rule subset (see --list-rules)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every registered rule and exit")
    lint.add_argument("--verbose", action="store_true",
                      help="also report suppressed and baselined findings")

    sub.add_parser("demo", help="run the quickstart comparison")
    sub.add_parser(
        "info",
        help="print version, available subcommands and figures",
    )
    return parser


def _run_figures(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    wanted = list(ALL_FIGURES) if args.all else (args.figure or ["fig2"])
    unknown = [f for f in wanted if f not in ALL_FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_FIGURES)}", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    failures = 0
    for name in wanted:
        result = ALL_FIGURES[name](scale, seed=args.seed)
        print(format_figure(result))
        if args.validate:
            for check in validate_figure(result):
                print(check.format())
                failures += 0 if check.passed else 1
        if args.chart:
            metrics = {m for per_alg in result.series.values() for m in per_alg}
            for metric in sorted(metrics):
                print()
                print(ascii_chart(result, metric))
        print()
        if out_dir:
            payload = dataclasses.asdict(result)
            (out_dir / f"{name}_{scale.name}.json").write_text(
                json.dumps(payload, indent=2)
            )
    if failures:
        print(f"{failures} shape check(s) FAILED", file=sys.stderr)
        return 1
    return 0


def _parse_sharding(value: str | None):
    """CLI sharding override: 'off'/'none' -> dense, 'auto'/'on' -> the
    density heuristic, anything else a shard cell size.  The resulting
    value goes through the shared ``normalize_sharding`` validation."""
    if value is None:
        return None
    from .core.sharding import normalize_sharding

    lowered = value.lower()
    if lowered in ("off", "none", "false", "dense"):
        return None
    if lowered in ("on", "true"):
        lowered = "auto"
    try:
        setting = lowered if lowered == "auto" else float(value)
        return normalize_sharding(setting)
    except ValueError:
        print(f"invalid --sharding value {value!r}", file=sys.stderr)
        raise SystemExit(2) from None


def _parse_fused(value: str | None):
    """CLI fused override: 'off' -> per-row batch path, 'on'/'auto' -> the
    fused block pipeline.  The resulting value goes through the shared
    ``normalize_fused`` validation."""
    if value is None:
        return None
    from .core.greedy import normalize_fused

    lowered = value.lower()
    try:
        if lowered in ("off", "none", "false"):
            return normalize_fused(False)
        if lowered in ("on", "true", "auto"):
            return normalize_fused("auto")
        raise ValueError(value)
    except ValueError:
        print(f"invalid --fused value {value!r}", file=sys.stderr)
        raise SystemExit(2) from None


def _parse_incremental(value: str | None):
    """CLI incremental override: 'off' -> full per-slot rebuilds,
    'on'/'auto' -> differential slot state.  The resulting value goes
    through the shared ``normalize_incremental`` validation."""
    if value is None:
        return None
    from .core.engine import normalize_incremental

    lowered = value.lower()
    try:
        if lowered in ("off", "none", "false"):
            return normalize_incremental(False)
        if lowered in ("on", "true", "auto"):
            return normalize_incremental("auto")
        raise ValueError(value)
    except ValueError:
        print(f"invalid --incremental value {value!r}", file=sys.stderr)
        raise SystemExit(2) from None


def _parse_backend(value: str | None):
    """CLI backend override: a registered backend name ('numpy',
    'instrumented', 'cupy', 'jax').  The name goes through the shared
    ``normalize_backend`` validation."""
    if value is None:
        return None
    from .backend import normalize_backend

    try:
        return normalize_backend(value.lower())
    except ValueError as exc:
        print(f"invalid --backend value {value!r}: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _parse_workspace(value: str | None):
    """CLI workspace override: 'off' -> fresh scratch every round,
    'on'/'auto' -> preallocated slot workspaces.  The resulting value goes
    through the shared ``normalize_workspace`` validation."""
    if value is None:
        return None
    from .backend import normalize_workspace

    lowered = value.lower()
    try:
        if lowered in ("off", "none", "false"):
            return normalize_workspace(False)
        if lowered in ("on", "true", "auto"):
            return normalize_workspace("auto")
        raise ValueError(value)
    except ValueError:
        print(f"invalid --workspace value {value!r}", file=sys.stderr)
        raise SystemExit(2) from None


def _run_scenario(args: argparse.Namespace) -> int:
    from .datasets import ScenarioSpec

    if args.example:
        print(json.dumps(ScenarioSpec.example().to_dict(), indent=2))
        return 0
    if not args.spec:
        print("give at least one spec file, or --example", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    from .core import ReproError

    from .service.metrics import summary_payload

    sharding_override = _parse_sharding(args.sharding)
    fused_override = _parse_fused(args.fused)
    incremental_override = _parse_incremental(args.incremental)
    backend_override = _parse_backend(args.backend)
    workspace_override = _parse_workspace(args.workspace)
    json_payloads: list[dict] = []
    for path in args.spec:
        try:
            spec = ScenarioSpec.from_json(path)
            if args.sharding is not None:
                spec = dataclasses.replace(spec, sharding=sharding_override)
            if args.fused is not None:
                spec = dataclasses.replace(spec, fused=fused_override)
            if args.incremental is not None:
                spec = dataclasses.replace(spec, incremental=incremental_override)
            if args.backend is not None:
                spec = dataclasses.replace(spec, backend=backend_override)
            if args.workspace is not None:
                spec = dataclasses.replace(spec, workspace=workspace_override)
        except (OSError, ValueError, TypeError) as exc:
            print(f"error loading {path}: {exc}", file=sys.stderr)
            return 2
        n_slots = args.slots if args.slots is not None else spec.n_slots
        try:
            if args.profile or args.json:
                # --json always profiles: the payload's per-phase timing
                # totals come from the t_<phase> slot extras.
                engine = spec.build()
                engine.profile = True
                summary = engine.run(n_slots)
            else:
                summary = spec.run(n_slots)
        except (ValueError, TypeError, ReproError) as exc:
            # mis-declared spec: rm without intel, bad workload params,
            # allocator/stream mismatch the static checks can't see, ...
            print(f"error running {spec.name}: {exc}", file=sys.stderr)
            return 2
        payload = summary_payload(spec.to_dict(), n_slots, summary)
        if args.json:
            json_payloads.append(payload)
        else:
            print(f"{spec.name}  [{spec.dataset}, {spec.n_sensors} sensors, "
                  f"{n_slots} slots, {spec.allocator}/{spec.allocation}]")
            print(f"  avg utility/slot : {summary.average_utility:10.2f}")
            print(f"  satisfaction     : {summary.satisfaction_ratio:10.1%}")
            print(f"  egalitarian      : {summary.egalitarian_ratio:10.1%}")
            for label in sorted(summary.quality_stats):
                print(f"  quality[{label:<20}]: {summary.average_quality(label):7.3f}")
        if args.profile and not args.json:
            from .core.engine import PHASES

            metered = any(
                f"alloc_{p}_count" in r.extras
                for r in summary.slots for p in PHASES
            )
            header = "  slot  " + "".join(f"{p:>12}" for p in PHASES)
            if metered:
                header += "  " + "".join(f"{p + ' allocs':>16}" for p in PHASES)
            print(header)
            for r in summary.slots:
                cells = "".join(
                    f"{r.extras.get(f't_{p}', 0.0) * 1e3:10.2f}ms" for p in PHASES
                )
                if metered:
                    cells += "  " + "".join(
                        f"{int(r.extras.get(f'alloc_{p}_count', 0.0)):>16}"
                        for p in PHASES
                    )
                print(f"  {r.slot:>4}  {cells}")
            totals = "".join(
                f"{sum(r.extras.get(f't_{p}', 0.0) for r in summary.slots) * 1e3:10.2f}ms"
                for p in PHASES
            )
            if metered:
                totals += "  " + "".join(
                    f"{int(sum(r.extras.get(f'alloc_{p}_count', 0.0) for r in summary.slots)):>16}"
                    for p in PHASES
                )
            print(f"  {'sum':>4}  {totals}")
        if out_dir:
            (out_dir / f"{spec.name}.json").write_text(json.dumps(payload, indent=2))
    if args.json:
        out = json_payloads[0] if len(json_payloads) == 1 else json_payloads
        print(json.dumps(out, indent=2))
    return 0


def _run_replay(args: argparse.Namespace) -> int:
    from .core import ReproError
    from .datasets import ScenarioSpec
    from .experiments import replay_spec

    backend_override = _parse_backend(args.backend)
    broken = 0
    for path in args.spec:
        try:
            spec = ScenarioSpec.from_json(path)
            if args.backend is not None:
                spec = dataclasses.replace(spec, backend=backend_override)
        except (OSError, ValueError, TypeError) as exc:
            print(f"error loading {path}: {exc}", file=sys.stderr)
            return 2
        try:
            report = replay_spec(spec, args.slots, profile=args.profile)
        except (ValueError, TypeError, ReproError) as exc:
            print(f"error replaying {spec.name}: {exc}", file=sys.stderr)
            return 2
        print(report.format())
        if args.csv:
            target = Path(args.csv)
            if len(args.spec) > 1:
                target = target.with_name(
                    f"{target.stem}-{spec.name}{target.suffix or '.csv'}"
                )
            target.parent.mkdir(parents=True, exist_ok=True)
            report.write_csv(target)
            print(f"  wrote {target}")
        if not report.parity:
            broken += 1
    if broken:
        print(f"{broken} spec(s) broke allocation parity", file=sys.stderr)
        return 1
    return 0


def _service_overrides(args: argparse.Namespace) -> dict:
    overrides = {}
    if getattr(args, "tick", None) is not None:
        overrides["tick_interval"] = args.tick
    if getattr(args, "queue_depth", None) is not None:
        overrides["max_queue_depth"] = args.queue_depth
    if getattr(args, "admit_cap", None) is not None:
        overrides["max_admitted_per_tick"] = args.admit_cap
    return overrides


def _print_service_report(service) -> None:
    from .core.engine import PHASES

    m = service.metrics
    rejected = ", ".join(f"{k}: {v}" for k, v in sorted(m.rejected.items()))
    print(f"  ticks            : {service.ticks}")
    print(f"  submitted        : {m.submitted}")
    print(f"  admitted         : {m.admitted}")
    print(f"  rejected         : {m.rejected_total}"
          + (f"  ({rejected})" if rejected else ""))
    print(f"  settled/answered : {m.settled}/{m.answered}")
    print(f"  queue depth      : mean {m.queue_depth.mean:6.1f}  "
          f"max {m.max_queue_depth}")
    print(f"  admission wait   : mean {m.admission_wait_ticks.mean:6.2f} "
          f"ticks  max {m.max_admission_wait}")
    slot = m.slot_latency
    print(f"  slot latency     : p50 {slot.p50 * 1e3:8.2f}ms  "
          f"p99 {slot.p99 * 1e3:8.2f}ms  max {slot.max * 1e3:8.2f}ms")
    for phase in PHASES:
        hist = m.phase_latency[phase]
        print(f"    {phase:<9}      : p50 {hist.p50 * 1e3:8.2f}ms  "
              f"p99 {hist.p99 * 1e3:8.2f}ms")


def _write_service_metrics(service, spec, n_slots, args) -> None:
    from .service.metrics import summary_payload

    if args.metrics:
        target = Path(args.metrics)
        target.parent.mkdir(parents=True, exist_ok=True)
        service.metrics.write_json(
            target,
            extra=summary_payload(spec.to_dict(), n_slots, service.summary),
        )
        print(f"  wrote {target}")
    if args.metrics_csv:
        target = Path(args.metrics_csv)
        target.parent.mkdir(parents=True, exist_ok=True)
        service.metrics.write_csv(target)
        print(f"  wrote {target}")


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .core import ReproError
    from .datasets import ScenarioSpec
    from .service import LoadGenerator, MarketplaceService, PoissonProfile

    backend_override = _parse_backend(args.backend)
    try:
        spec = ScenarioSpec.from_json(args.spec)
        if args.backend is not None:
            spec = dataclasses.replace(spec, backend=backend_override)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error loading {args.spec}: {exc}", file=sys.stderr)
        return 2
    try:
        service = MarketplaceService.from_spec(spec, **_service_overrides(args))
    except (ValueError, TypeError, ReproError) as exc:
        print(f"error building service for {spec.name}: {exc}", file=sys.stderr)
        return 2
    n_slots = args.slots if args.slots is not None else spec.n_slots
    generator = None
    if args.rate is not None:
        generator = LoadGenerator(
            PoissonProfile(args.rate), service.workloads, seed=spec.seed
        )
    elif service.config.arrivals is not None:
        generator = LoadGenerator.for_service(service)
    ticks = n_slots if args.exit_after else None
    cfg = service.config
    print(f"serving {spec.name}: tick {cfg.tick_interval}s, queue depth "
          f"{cfg.max_queue_depth}, admit cap {cfg.max_admitted_per_tick}"
          + (f", loadgen {generator.profile!r}" if generator else ""))

    async def _main() -> None:
        tasks = [asyncio.ensure_future(service.serve(ticks))]
        if generator is not None:
            tasks.append(
                asyncio.ensure_future(generator.drive_async(service, n_slots))
            )
        try:
            await asyncio.gather(*tasks)
        finally:
            service.stop()
            for task in tasks:
                task.cancel()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        service.stop()
        print("interrupted; shutting down", file=sys.stderr)
    print(f"{spec.name}  [service, {spec.n_sensors} sensors]")
    _print_service_report(service)
    _write_service_metrics(service, spec, service.ticks, args)
    return 0


def _run_loadgen(args: argparse.Namespace) -> int:
    from .core import ReproError
    from .datasets import ScenarioSpec
    from .service import (
        BurstyProfile,
        LoadGenerator,
        MarketplaceService,
        PoissonProfile,
        profile_from_payload,
        replay_admission_trace,
    )

    try:
        spec = ScenarioSpec.from_json(args.spec)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error loading {args.spec}: {exc}", file=sys.stderr)
        return 2
    try:
        service = MarketplaceService.from_spec(spec, **_service_overrides(args))
    except (ValueError, TypeError, ReproError) as exc:
        print(f"error building service for {spec.name}: {exc}", file=sys.stderr)
        return 2

    # Profile: CLI flags > the spec's arrivals block > Poisson default.
    seed = 0
    if service.config.arrivals is not None:
        profile, seed = profile_from_payload(service.config.arrivals)
    else:
        profile = PoissonProfile(16.0)
    kind = args.profile
    if kind == "poisson" or (kind is None and args.rate is not None
                             and args.burst_rate is None):
        profile = PoissonProfile(args.rate if args.rate is not None else 16.0)
    elif kind == "bursty" or args.burst_rate is not None:
        profile = BurstyProfile(
            rate=args.rate if args.rate is not None else 8.0,
            burst_rate=args.burst_rate if args.burst_rate is not None else 64.0,
            period=args.period if args.period is not None else 8,
            burst_length=args.burst_length if args.burst_length is not None else 2,
        )
    if args.seed is not None:
        seed = args.seed

    generator = LoadGenerator(profile, service.workloads, seed=seed)
    n_slots = args.slots if args.slots is not None else spec.n_slots
    generator.drive(service, n_slots)
    print(f"{spec.name}  [loadgen {profile!r}, {n_slots} ticks]")
    _print_service_report(service)
    _write_service_metrics(service, spec, n_slots, args)
    if args.check_parity:
        flat = [q for batch in generator.schedule(n_slots) for q in batch]
        offline = replay_admission_trace(spec, service.trace, flat)
        broken = sum(
            1 for a, b in zip(service.slot_signatures, offline) if a != b
        )
        if broken:
            print(f"  parity BROKEN on {broken}/{n_slots} slots",
                  file=sys.stderr)
            return 1
        print(f"  parity OK across {n_slots} slots (service == offline replay)")
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    import dataclasses as _dc

    from .analysis import (
        RULES,
        LintConfig,
        format_json,
        format_text,
        run_lint,
        write_baseline,
    )

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.code}  {rule.id:<20} {rule.summary}")
        return 0
    root = Path(args.root)
    baseline = Path(args.baseline) if args.baseline else root / "lint-baseline.json"
    config = LintConfig(root=root)
    if args.paths:
        config = _dc.replace(config, paths=tuple(args.paths))
    if args.rules:
        config = _dc.replace(
            config, rules=tuple(r.strip() for r in args.rules.split(",") if r.strip())
        )
    if not args.write_baseline and baseline.exists():
        config = _dc.replace(config, baseline_path=baseline)
    try:
        result = run_lint(config)
    except ValueError as exc:  # unknown rule ids, bad baseline version
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        count = write_baseline(baseline, result.findings)
        print(f"wrote {baseline} ({count} grandfathered finding(s))")
        return 0
    if args.format == "json":
        print(format_json(result))
    else:
        print(format_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


def _run_demo() -> int:
    import numpy as np

    from .core import BaselineAllocator, OptimalPointAllocator, one_shot_engine
    from .datasets import build_rwm_scenario
    from .queries import PointQueryWorkload

    scenario = build_rwm_scenario(seed=1, n_sensors=100, n_slots=5)
    print("Point queries on RWM, budget 15, 5 slots:")
    for name, allocator in [
        ("Optimal", OptimalPointAllocator()),
        ("Baseline", BaselineAllocator()),
    ]:
        workload = PointQueryWorkload(
            scenario.working_region, n_queries=100, budget=15.0, dmax=scenario.dmax
        )
        engine = one_shot_engine(
            scenario.make_fleet(), workload, allocator, np.random.default_rng(2)
        )
        summary = engine.run(5)
        print(
            f"  {name:<9} utility/slot={summary.average_utility:8.1f}  "
            f"satisfaction={summary.satisfaction_ratio:.1%}"
        )
    return 0


def _run_info(parser: argparse.ArgumentParser) -> int:
    """Version + every subcommand, introspected from the parser itself.

    Walking the registered subparsers (instead of a hand-kept list that
    already went stale once) means a new subcommand shows up here the
    moment it is added to :func:`build_parser`.
    """
    print(f"repro {__version__}")
    sub = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    print("commands:")
    for choice in sub._choices_actions:
        print(f"  {choice.dest:<9} {choice.help or ''}")
    print("figures:", ", ".join(ALL_FIGURES))
    print("scales : paper (Section 4 sizes), ci (fast shrink)")
    from .backend import available_backends

    print(
        "backends:",
        ", ".join(
            name if importable else f"{name} (not installed)"
            for name, importable in available_backends().items()
        ),
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "figures":
        return _run_figures(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "scenario":
        return _run_scenario(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "loadgen":
        return _run_loadgen(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "demo":
        return _run_demo()
    if args.command == "info":
        return _run_info(parser)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
