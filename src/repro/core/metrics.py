"""Accounting for the paper's evaluation metrics (Section 4).

Three quantities appear in every figure:

* **average utility per time slot** — the slot's social welfare
  ``sum_q v_q - sum_s c_s``, averaged over the simulation;
* **query satisfaction ratio** — the fraction of issued point queries that
  were answered (Figures 2-6);
* **average quality of results** — per answered query, the achieved
  valuation over the maximum of its valuation function (Figures 7-10);
  for region monitoring the reference is the *planned* valuation, which is
  how the paper's Figure 9(b) exceeds 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SlotRecord", "SimulationSummary"]


@dataclass
class SlotRecord:
    """Per-slot accounting."""

    slot: int
    value: float = 0.0
    cost: float = 0.0
    issued: int = 0
    answered: int = 0
    qualities: list[float] = field(default_factory=list)
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def utility(self) -> float:
        return self.value - self.cost


@dataclass
class SimulationSummary:
    """Aggregated outcome of one simulation run."""

    slots: list[SlotRecord] = field(default_factory=list)
    #: quality-of-results samples per query-type label (e.g. "point",
    #: "aggregate", "location_monitoring"); monitoring entries are appended
    #: when a query completes.
    quality_samples: dict[str, list[float]] = field(default_factory=dict)
    #: count of queries whose net utility was positive — the egalitarian
    #: objective the paper mentions as an alternative (Section 2).
    positive_utility_queries: int = 0
    total_queries: int = 0

    # ------------------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return len(self.slots)

    @property
    def total_utility(self) -> float:
        return float(sum(r.utility for r in self.slots))

    @property
    def average_utility(self) -> float:
        """Average utility per time slot — the y-axis of every (a) figure."""
        if not self.slots:
            return 0.0
        return self.total_utility / len(self.slots)

    @property
    def satisfaction_ratio(self) -> float:
        """Answered / issued over the whole run (Figures 2-6 (b))."""
        issued = sum(r.issued for r in self.slots)
        if issued == 0:
            return 0.0
        return sum(r.answered for r in self.slots) / issued

    def average_quality(self, label: str) -> float:
        """Mean quality of results for one query type (Figures 7-10 (b-d))."""
        samples = self.quality_samples.get(label, [])
        if not samples:
            return 0.0
        return float(sum(samples) / len(samples))

    def add_quality(self, label: str, quality: float) -> None:
        self.quality_samples.setdefault(label, []).append(quality)

    def record_query_outcome(self, utility: float) -> None:
        self.total_queries += 1
        if utility > 0:
            self.positive_utility_queries += 1

    @property
    def egalitarian_ratio(self) -> float:
        """Fraction of queries ending with strictly positive utility."""
        if self.total_queries == 0:
            return 0.0
        return self.positive_utility_queries / self.total_queries
