"""Event-detection queries — the extension the paper sketches but defers.

Section 2.3: "we don't specifically deal with event detection queries.
However, ... data acquisition for this type of continuous queries is very
similar to data acquisition for monitoring queries.  The main difference is
that redundant sampling might be needed to ensure the confidence requested
by the queries."

This module implements exactly that difference: an
:class:`EventDetectionQuery` (query Q3 of the paper: *notify me when
phenomenon > x with confidence > alpha at location l during [t1, t2]*)
derives, each slot, a redundant-sampling point query whose valuation pays
for additional readings only until the requested confidence is reached.

Confidence model: each reading is an independent witness whose reliability
is its eq.-(4) quality ``theta_i``; the probability that at least one
witness is faithful is ``conf(S) = 1 - prod_i (1 - theta_i)``.  The slot
valuation is ``B_slot * min(1, conf(S) / alpha)`` — monotone and submodular
in the witness set (verified by property tests), so the greedy machinery of
Algorithm 1 applies unchanged.
"""

from __future__ import annotations

from typing import Sequence

from ..sensors import SensorSnapshot
from ..spatial import Location
from .base import Query, QueryType, new_query_id
from .monitoring import ContinuousQuery
from .point import reading_quality

__all__ = ["EventDetectionQuery", "EventSlotQuery", "detection_confidence"]


def detection_confidence(qualities: Sequence[float]) -> float:
    """``1 - prod(1 - theta_i)``: confidence from redundant readings."""
    confidence = 1.0
    for theta in qualities:
        if not (0.0 <= theta <= 1.0):
            raise ValueError("reading qualities must lie in [0, 1]")
        confidence *= 1.0 - theta
    return 1.0 - confidence


class EventSlotQuery(Query):
    """The per-slot redundant-sampling query derived from an event query."""

    def __init__(
        self,
        location: Location,
        budget: float,
        required_confidence: float,
        theta_min: float,
        dmax: float,
        parent_id: str,
        issued_at: int = 0,
    ) -> None:
        super().__init__(budget, new_query_id("ev"), issued_at)
        if not (0.0 < required_confidence <= 1.0):
            raise ValueError("required confidence must be in (0, 1]")
        self.location = location
        self.required_confidence = required_confidence
        self.theta_min = theta_min
        self.dmax = dmax
        self.parent_id = parent_id

    @property
    def query_type(self) -> QueryType:
        return QueryType.EVENT

    def quality(self, snapshot: SensorSnapshot) -> float:
        theta = reading_quality(snapshot, self.location, self.dmax)
        return theta if theta >= self.theta_min else 0.0

    def value(self, snapshots: Sequence[SensorSnapshot]) -> float:
        qualities = [self.quality(s) for s in snapshots if self.quality(s) > 0]
        confidence = detection_confidence(qualities)
        return self.budget * min(1.0, confidence / self.required_confidence)

    def relevant(self, snapshot: SensorSnapshot) -> bool:
        return self.quality(snapshot) > 0.0


class EventDetectionQuery(ContinuousQuery):
    """Q3: notify when the phenomenon exceeds ``threshold`` at ``location``.

    Args:
        location: the watched location.
        threshold: the trigger level ``x``.
        confidence: the requested detection confidence ``alpha``.
        budget: total budget over the query lifetime; each slot spends at
            most ``budget / duration`` on redundant readings.
    """

    def __init__(
        self,
        location: Location,
        t1: int,
        t2: int,
        threshold: float,
        confidence: float,
        budget: float,
        theta_min: float = 0.2,
        dmax: float = 5.0,
        query_id: str | None = None,
    ) -> None:
        super().__init__(budget, t1, t2, query_id)
        if not (0.0 < confidence <= 1.0):
            raise ValueError("confidence must be in (0, 1]")
        self.location = location
        self.threshold = threshold
        self.confidence = confidence
        self.theta_min = theta_min
        self.dmax = dmax
        self.detections: list[tuple[int, float, float]] = []  # (slot, estimate, confidence)

    def slot_budget(self) -> float:
        """Per-slot spending cap: the remaining budget spread over the
        remaining lifetime (so early overspending cannot starve the tail)."""
        return self.budget / self.duration

    def create_slot_query(self, t: int) -> EventSlotQuery:
        """The redundant-sampling point query for slot ``t``."""
        if not self.active(t):
            raise ValueError(f"query {self.query_id} is not active at slot {t}")
        return EventSlotQuery(
            location=self.location,
            budget=min(self.slot_budget(), self.remaining_budget),
            required_confidence=self.confidence,
            theta_min=self.theta_min,
            dmax=self.dmax,
            parent_id=self.query_id,
            issued_at=t,
        )

    def apply_readings(
        self,
        t: int,
        readings: Sequence[tuple[float, float]],
        payment: float,
    ) -> bool:
        """Evaluate the slot's readings; returns True when the event fires.

        Args:
            t: the slot.
            readings: (value, quality) pairs from the allocated sensors.
            payment: what the slot's sampling cost the query.

        The estimate is the quality-weighted mean reading; the event fires
        when the estimate exceeds the threshold *and* the achieved
        confidence meets the request.
        """
        self.spent += payment
        if not readings:
            return False
        qualities = [q for _, q in readings]
        weight_sum = sum(qualities)
        if weight_sum <= 0:
            return False
        estimate = sum(v * q for v, q in readings) / weight_sum
        achieved = detection_confidence(qualities)
        if estimate > self.threshold and achieved >= self.confidence:
            self.detections.append((t, estimate, achieved))
            return True
        return False
