"""Axis-aligned rectangular regions.

Regions appear in three roles in the paper:

* the global *movement region* sensors roam in (e.g. 80x80 for RWM);
* the *working subregion* ("hotspot") the aggregator restricts itself to
  (e.g. the central 50x50 of the RWM region, Section 4.2);
* per-query regions of spatial aggregate and region monitoring queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .geometry import Location

__all__ = ["Region"]


@dataclass(frozen=True)
class Region:
    """Closed axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_max < self.x_min or self.y_max < self.y_min:
            raise ValueError(
                f"degenerate region: ({self.x_min},{self.y_min})-"
                f"({self.x_max},{self.y_max})"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_origin(cls, width: float, height: float) -> "Region":
        """Region ``[0, width] x [0, height]``."""
        return cls(0.0, 0.0, float(width), float(height))

    @classmethod
    def centered_in(cls, outer: "Region", width: float, height: float) -> "Region":
        """Rectangle of the given size centred inside ``outer``.

        This is how the paper derives the 50x50 hotspot from the 80x80 RWM
        region and the 100x100 working subregion of the RNC region.
        """
        if width > outer.width or height > outer.height:
            raise ValueError("inner region does not fit inside outer region")
        cx = (outer.x_min + outer.x_max) / 2.0
        cy = (outer.y_min + outer.y_max) / 2.0
        return cls(cx - width / 2.0, cy - height / 2.0, cx + width / 2.0, cy + height / 2.0)

    @classmethod
    def random_subregion(
        cls,
        outer: "Region",
        rng: np.random.Generator,
        min_side: float = 1.0,
        max_side: float | None = None,
    ) -> "Region":
        """Uniformly random rectangle contained in ``outer``.

        Used by the workload generators for aggregate and region-monitoring
        queries ("queried regions are generated randomly in the working
        region", Sections 4.4 and 4.6).
        """
        max_w = outer.width if max_side is None else min(max_side, outer.width)
        max_h = outer.height if max_side is None else min(max_side, outer.height)
        if min_side > max_w or min_side > max_h:
            raise ValueError("min_side exceeds the outer region extent")
        width = rng.uniform(min_side, max_w)
        height = rng.uniform(min_side, max_h)
        x0 = rng.uniform(outer.x_min, outer.x_max - width)
        y0 = rng.uniform(outer.y_min, outer.y_max - height)
        return cls(x0, y0, x0 + width, y0 + height)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """Area ``A(r)`` — drives the budget formulas of Sections 4.4/4.6."""
        return self.width * self.height

    @property
    def center(self) -> Location:
        return Location((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains(self, location: Location) -> bool:
        """Whether ``location`` lies in the closed rectangle."""
        return (
            self.x_min <= location.x <= self.x_max
            and self.y_min <= location.y <= self.y_max
        )

    def contains_many(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains` over an ``(n, 2)`` coordinate array.

        Element ``i`` equals ``contains(Location(*xy[i]))`` exactly (the
        closed-rectangle comparisons are identical float operations), so
        scalar and batch membership tests can never disagree.
        """
        x, y = xy[:, 0], xy[:, 1]
        return (
            (self.x_min <= x)
            & (x <= self.x_max)
            & (self.y_min <= y)
            & (y <= self.y_max)
        )

    def exterior_distance_sq(self, xy: np.ndarray) -> np.ndarray:
        """Squared distance from each point to the rectangle (0 inside).

        Replicates the scalar clamped-axis arithmetic
        (``dx = max(x_min - x, 0, x - x_max)``, then ``dx^2 + dy^2``)
        elementwise, so thresholding this array is bit-identical to the
        scalar reach tests built on the same expression (e.g.
        ``SpatialAggregateQuery.relevant``).
        """
        dx = np.maximum(np.maximum(self.x_min - xy[:, 0], 0.0), xy[:, 0] - self.x_max)
        dy = np.maximum(np.maximum(self.y_min - xy[:, 1], 0.0), xy[:, 1] - self.y_max)
        return dx * dx + dy * dy

    def contains_region(self, other: "Region") -> bool:
        return (
            self.x_min <= other.x_min
            and self.y_min <= other.y_min
            and self.x_max >= other.x_max
            and self.y_max >= other.y_max
        )

    def overlaps(self, other: "Region") -> bool:
        """Whether the closed rectangles share at least one point."""
        return not (
            self.x_max < other.x_min
            or other.x_max < self.x_min
            or self.y_max < other.y_min
            or other.y_max < self.y_min
        )

    def intersection(self, other: "Region") -> "Region | None":
        """Intersection rectangle, or ``None`` when disjoint."""
        if not self.overlaps(other):
            return None
        return Region(
            max(self.x_min, other.x_min),
            max(self.y_min, other.y_min),
            min(self.x_max, other.x_max),
            min(self.y_max, other.y_max),
        )

    # ------------------------------------------------------------------
    # sampling and iteration
    # ------------------------------------------------------------------
    def clamp(self, location: Location) -> Location:
        """Project ``location`` onto the rectangle (used by mobility bounce)."""
        return Location(
            min(max(location.x, self.x_min), self.x_max),
            min(max(location.y, self.y_min), self.y_max),
        )

    def sample_location(self, rng: np.random.Generator) -> Location:
        """Uniformly random location inside the rectangle."""
        return Location(rng.uniform(self.x_min, self.x_max), rng.uniform(self.y_min, self.y_max))

    def sample_locations(self, count: int, rng: np.random.Generator) -> list[Location]:
        """``count`` i.i.d. uniform locations inside the rectangle."""
        xs = rng.uniform(self.x_min, self.x_max, size=count)
        ys = rng.uniform(self.y_min, self.y_max, size=count)
        return [Location(float(x), float(y)) for x, y in zip(xs, ys)]

    def grid_cells(self, cell: float = 1.0) -> Iterator[Location]:
        """Iterate the centres of ``cell``-sized grid cells covering the region.

        Region monitoring (eq. 6/7) evaluates GP variance over a finite set of
        unobserved locations; we use the cell centres of the queried region.
        """
        nx = max(1, int(round(self.width / cell)))
        ny = max(1, int(round(self.height / cell)))
        for ix in range(nx):
            for iy in range(ny):
                yield Location(
                    self.x_min + (ix + 0.5) * cell,
                    self.y_min + (iy + 0.5) * cell,
                )
