"""Figure 8: location monitoring — Alg2-O / Alg2-LS / Baseline.

The paper's findings: the Algorithm 2 variants beat the desired-times-only
baseline on utility and result quality; absolute values stay small (sparse
sensors near queried locations and a weak periodic-history assumption).
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig8, format_figure


def test_fig8_location_monitoring(benchmark, scale):
    result = run_once(benchmark, fig8, scale)
    print()
    print(format_figure(result))

    # At the largest budget factor (where sampling actually happens at
    # every scale) the Algorithm 2 variants must beat the baseline on
    # quality of results.
    assert (
        result.metric("Alg2-O", "avg_quality")[-1]
        >= result.metric("Baseline", "avg_quality")[-1] - 1e-9
    )
    assert (
        result.metric("Alg2-LS", "avg_quality")[-1]
        >= result.metric("Baseline", "avg_quality")[-1] - 1e-9
    )
    # Utility grows with the budget factor for the full algorithm.
    utilities = result.metric("Alg2-O", "avg_utility")
    assert utilities[-1] >= utilities[0]
