"""Event-detection extension figure: latency / confidence vs budget.

The acquisition economics the paper sketches for event queries (Section
2.3, redundant sampling until the requested confidence) reproduced as a
figure-style sweep: confidence attainment and utility grow with the budget
factor, events actually fire once redundancy becomes affordable, and
Algorithm 1's joint selection does no worse than the sequential baseline.
"""

from __future__ import annotations

from conftest import run_once
from repro.experiments import fig_event, format_figure


def test_fig_event_detection(benchmark, scale):
    result = run_once(benchmark, fig_event, scale)
    print()
    print(format_figure(result))

    assert result.dominates("Greedy", "Baseline", "avg_utility", slack=1e-9)
    # Confidence attainment grows with budget (redundancy becomes
    # affordable) and the top budget actually detects events.
    attainment = result.metric("Greedy", "confidence_attainment")
    assert attainment[-1] > attainment[0]
    assert result.metric("Greedy", "detection_ratio")[-1] > 0.0
    # Fired detections at the top budget arrive faster than the
    # never-fired ceiling (n_slots).
    assert result.metric("Greedy", "detection_latency")[-1] < scale.n_slots
