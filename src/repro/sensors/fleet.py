"""The sensor fleet: population + mobility + per-slot batch announcements.

The fleet is the boundary between the physical world (mobility, batteries,
privacy histories) and the aggregator.  Each slot it publishes the
announcements of the sensors that are (a) inside the working region and
(b) not exhausted; after allocation it books the selected measurements.

Since the array-backed redesign the fleet keeps all per-sensor state in a
:class:`~repro.sensors.state.FleetState` (structure of arrays) and
:meth:`SensorFleet.announcements` returns an
:class:`~repro.sensors.state.AnnouncementBatch` — the whole slot protocol
(region mask, exhaustion, eq.-8 pricing, accounting) runs as vectorized
numpy with **no per-sensor Python loop**, bit-identical to the historical
:class:`~repro.sensors.sensor.Sensor`-object walk.  The batch still
behaves as a ``Sequence[SensorSnapshot]`` (snapshots materialize lazily),
and :meth:`SensorFleet.sensors` / :meth:`SensorFleet.sensor` materialize
classic :class:`Sensor` objects as read-only views over the arrays for
instrumentation and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..mobility import MobilityModel
from ..spatial import Region
from .costs import (
    FixedEnergyCost,
    LinearEnergyCost,
    PrivacyCostModel,
    PrivacySensitivity,
)
from .sensor import Sensor
from .state import AnnouncementBatch, FleetState
from .trust import FullTrust, TrustModel

__all__ = ["SensorFleet", "FleetConfig"]


@dataclass(frozen=True)
class FleetConfig:
    """Population-level parameters used to build a fleet (Section 4.1).

    Attributes:
        base_price: ``C_s`` (paper: 10 for every sensor).
        inaccuracy_range: per-sensor gamma ~ U[range] (paper: [0, 0.2]).
        lifetime: max readings per sensor (paper: simulation length, or 25).
        linear_energy: if True use the linear energy model with per-sensor
            ``beta ~ U[beta_range]``; otherwise the fixed model.
        beta_range: support of the beta draw (paper: [0, 4]).
        random_privacy: if True draw each sensor's privacy sensitivity level
            uniformly from the five levels; otherwise all Zero.
        privacy_window: the ``w`` of eq. 14.
        trust_model: distribution of per-sensor trust (paper default: full).
    """

    base_price: float = 10.0
    inaccuracy_range: tuple[float, float] = (0.0, 0.2)
    lifetime: int = 50
    linear_energy: bool = False
    beta_range: tuple[float, float] = (0.0, 4.0)
    random_privacy: bool = False
    privacy_window: int = 5
    trust_model: TrustModel = FullTrust()

    def __post_init__(self) -> None:
        lo, hi = self.inaccuracy_range
        if not (0.0 <= lo <= hi <= 1.0):
            raise ValueError("inaccuracy_range must satisfy 0 <= lo <= hi <= 1")
        if self.lifetime < 1:
            raise ValueError("lifetime must be >= 1")
        b_lo, b_hi = self.beta_range
        if not (0.0 <= b_lo <= b_hi):
            raise ValueError("beta_range must satisfy 0 <= lo <= hi")


class SensorFleet:
    """All sensors of a scenario plus the mobility model that moves them."""

    def __init__(
        self,
        mobility: MobilityModel,
        working_region: Region,
        config: FleetConfig,
        rng: np.random.Generator,
    ) -> None:
        if not mobility.region.contains_region(working_region):
            raise ValueError("working region must lie inside the mobility region")
        self._mobility = mobility
        self._working_region = working_region
        self._config = config
        self._clock = 0
        n = mobility.n_sensors
        gammas = rng.uniform(*config.inaccuracy_range, size=n)
        trusts = config.trust_model.sample(n, rng)
        # The beta / privacy-level draws interleave per sensor in the seed
        # implementation; the scalar loop is kept for those configs so the
        # rng consumption order (and therefore every fleet attribute) stays
        # bit-identical to historical fleets.  The paper-default config
        # (fixed energy, zero privacy) draws nothing here.
        betas = np.zeros(n)
        sensitivities = np.zeros(n)
        if config.linear_energy or config.random_privacy:
            levels = list(PrivacySensitivity)
            for i in range(n):
                if config.linear_energy:
                    betas[i] = float(rng.uniform(*config.beta_range))
                if config.random_privacy:
                    sensitivities[i] = levels[int(rng.integers(0, len(levels)))].value
        self._state = FleetState(
            gamma=gammas,
            trust=trusts,
            base_price=np.full(n, float(config.base_price)),
            energy_beta=betas,
            linear_energy=config.linear_energy,
            sensitivity=sensitivities,
            privacy_window=config.privacy_window,
            lifetime=np.full(n, int(config.lifetime), dtype=np.int64),
        )
        self._refresh_positions()

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------
    @property
    def clock(self) -> int:
        """Current time slot (starts at 0)."""
        return self._clock

    @property
    def working_region(self) -> Region:
        return self._working_region

    @property
    def mobility(self) -> MobilityModel:
        """The mobility model driving the population's positions."""
        return self._mobility

    @property
    def state(self) -> FleetState:
        """The array-backed per-sensor state (advanced consumers, benches)."""
        return self._state

    @property
    def n_sensors(self) -> int:
        return self._state.n_sensors

    @property
    def sensors(self) -> Sequence[Sensor]:
        """Classic :class:`Sensor` objects materialized from the arrays.

        Read-only views: each access rebuilds fresh objects reflecting the
        live array state; mutating a returned object does **not** write
        back (use :meth:`record_measurements` for accounting).
        """
        return [self._sensor_view(i) for i in range(self.n_sensors)]

    def sensor(self, sensor_id: int) -> Sensor:
        """One sensor's read-only object view (list-style indexing)."""
        n = self.n_sensors
        index = sensor_id.__index__()
        if index < 0:
            index += n
        if not (0 <= index < n):
            raise IndexError(f"sensor id {sensor_id} out of range for fleet of {n}")
        return self._sensor_view(index)

    def _sensor_view(self, index: int) -> Sensor:
        state = self._state
        base = float(state.base_price[index])
        if state.linear_energy:
            energy_model = LinearEnergyCost(base, float(state.energy_beta[index]))
        else:
            energy_model = FixedEnergyCost(base)
        privacy_model = PrivacyCostModel(
            sensitivity=state.sensitivity_level(index),
            base_price=base,
            window=state.privacy_window,
        )
        return Sensor(
            sensor_id=index,
            inaccuracy=float(state.gamma[index]),
            trust=float(state.trust[index]),
            lifetime=int(state.lifetime[index]),
            energy_model=energy_model,
            privacy_model=privacy_model,
            readings_taken=int(state.readings_taken[index]),
            report_history=state.history_of(index, self._clock),
        )

    # ------------------------------------------------------------------
    # the slot protocol
    # ------------------------------------------------------------------
    def _refresh_positions(self) -> None:
        self._state.set_positions(self._mobility.locations_xy())

    def announcements(self) -> AnnouncementBatch:
        """The slot's announcement batch: usable sensors, stacked arrays.

        "At the beginning of each time slot [sensors] announce their
        location and price of providing a measurement at that location"
        (Section 2.1).  Exhausted sensors stay silent (Section 4.1's
        lifetime rule).  One vectorized pass builds the in-region +
        non-exhausted mask, the eq.-8 prices and the announcement arrays;
        the returned :class:`AnnouncementBatch` is also a lazy
        ``Sequence[SensorSnapshot]`` for object-path consumers and carries
        the O(1) identity token kernels use for reuse checks.
        """
        self._refresh_positions()
        return self._state.announce(self._clock, self._working_region)

    def announcements_with_delta(self):
        """Differential :meth:`announcements`: ``(batch, SlotDelta | None)``.

        The batch is bit-identical to :meth:`announcements`; the delta
        (``None`` on the first call) tells announcement-derived structures
        which rows moved, exhausted, or repriced since the previous call so
        they can patch instead of rebuild.
        """
        self._refresh_positions()
        return self._state.announce_update(self._clock, self._working_region)

    def record_measurements(self, sensor_ids: Sequence[int]) -> None:
        """Book one reading for each selected sensor at the current slot.

        Duplicates are collapsed and ids are processed in deterministic
        ascending order (one reading per distinct sensor per slot).

        Raises:
            ValueError: on ids outside the fleet.
            RuntimeError: on exhausted sensors — the allocator must never
                select a worn-out sensor.
        """
        ids = np.unique(np.fromiter(sensor_ids, dtype=np.int64))
        if ids.size == 0:
            return
        if ids[0] < 0 or ids[-1] >= self.n_sensors:
            unknown = ids[(ids < 0) | (ids >= self.n_sensors)]
            raise ValueError(
                f"unknown sensor ids {unknown.tolist()} (fleet has "
                f"{self.n_sensors} sensors)"
            )
        state = self._state
        worn = ids[state.readings_taken[ids] >= state.lifetime[ids]]
        if worn.size:
            raise RuntimeError(f"sensors {worn.tolist()} are exhausted")
        state.record(ids, self._clock)

    def advance(self) -> None:
        """End the slot: move every sensor and tick the clock."""
        self._mobility.advance()
        self._clock += 1
        self._state.clear_slot(self._clock)

    # ------------------------------------------------------------------
    # instrumentation
    # ------------------------------------------------------------------
    def exhausted_count(self) -> int:
        state = self._state
        return int(np.count_nonzero(state.readings_taken >= state.lifetime))

    def total_readings(self) -> int:
        return int(self._state.readings_taken.sum())

    def apply(self, fn: Callable[[Sensor], None]) -> None:
        """Run ``fn`` on every sensor view (testing/instrumentation hook).

        The views are read-only materializations of the array state;
        mutations made by ``fn`` do not write back.
        """
        for sensor in self.sensors:
            fn(sensor)
