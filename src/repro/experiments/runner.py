"""Sweep plumbing shared by every figure reproduction."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "FigureResult",
    "SeriesCollector",
    "summary_metric",
    "compare_scenarios",
]


@dataclass
class FigureResult:
    """One reproduced figure: an x-sweep of metrics per algorithm.

    ``series[algorithm][metric]`` is a list aligned with ``x_values`` —
    exactly the rows the paper plots.
    """

    figure_id: str
    title: str
    x_label: str
    x_values: list[float] = field(default_factory=list)
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    notes: str = ""

    def add(self, algorithm: str, metric: str, value: float) -> None:
        self.series.setdefault(algorithm, {}).setdefault(metric, []).append(
            float(value)
        )

    def metric(self, algorithm: str, metric: str) -> list[float]:
        return self.series[algorithm][metric]

    # ------------------------------------------------------------------
    # shape checks used by benches and EXPERIMENTS.md
    # ------------------------------------------------------------------
    def dominates(
        self,
        winner: str,
        loser: str,
        metric: str,
        slack: float = 0.0,
    ) -> bool:
        """``winner``'s series is >= ``loser``'s at every x (minus slack)."""
        w = self.metric(winner, metric)
        l = self.metric(loser, metric)
        return all(a >= b - slack for a, b in zip(w, l))

    def mean_advantage(self, winner: str, loser: str, metric: str) -> float:
        """Average (winner - loser) across the sweep."""
        w = self.metric(winner, metric)
        l = self.metric(loser, metric)
        return float(sum(a - b for a, b in zip(w, l)) / len(w))


class SeriesCollector:
    """Context helper timing a figure run."""

    def __init__(self, figure: FigureResult) -> None:
        self.figure = figure
        self._start = 0.0

    def __enter__(self) -> FigureResult:
        self._start = time.perf_counter()
        return self.figure

    def __exit__(self, *exc) -> None:
        self.figure.elapsed_seconds = time.perf_counter() - self._start


def summary_metric(summary, name: str) -> float:
    """Resolve a metric name against a :class:`SimulationSummary`.

    Recognized: ``avg_utility``, ``total_utility``, ``satisfaction_ratio``,
    ``egalitarian_ratio`` and ``quality:<label>`` (e.g. ``quality:point``).
    """
    if name == "avg_utility":
        return summary.average_utility
    if name == "total_utility":
        return summary.total_utility
    if name == "satisfaction_ratio":
        return summary.satisfaction_ratio
    if name == "egalitarian_ratio":
        return summary.egalitarian_ratio
    if name.startswith("quality:"):
        return summary.average_quality(name.split(":", 1)[1])
    raise ValueError(f"unknown summary metric {name!r}")


def compare_scenarios(
    specs: Sequence,
    n_slots: int | None = None,
    metrics: Sequence[str] = ("avg_utility", "satisfaction_ratio"),
) -> FigureResult:
    """Run a batch of :class:`~repro.datasets.ScenarioSpec` and tabulate.

    Each spec becomes one series (keyed by its ``name``) with a single x
    point per run — the declarative counterpart of the hand-written figure
    sweeps, usable straight from the CLI or a notebook.
    """
    figure = FigureResult(
        "scenarios", "Declared scenario comparison", "run"
    )
    with SeriesCollector(figure) as fig:
        fig.x_values = [0]
        for spec in specs:
            summary = spec.run(n_slots)
            for metric in metrics:
                fig.add(spec.name, metric, summary_metric(summary, metric))
    return fig
