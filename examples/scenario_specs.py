#!/usr/bin/env python
"""Declarative scenarios: the SlotEngine behind a JSON-shaped spec.

The paper evaluates four fixed experiment families; the unified engine
makes that a configuration space.  This example declares three scenarios —
a pure point workload, the same world under the sequential baseline, and a
full mixed workload — as :class:`repro.datasets.ScenarioSpec` objects (the
exact shape the ``repro scenario`` CLI reads from JSON), then runs and
tabulates them with :func:`repro.experiments.compare_scenarios`.

Run:  python examples/scenario_specs.py
"""

from __future__ import annotations

import json

from repro.datasets import ScenarioSpec, StreamSpec
from repro.experiments import compare_scenarios

SPECS = [
    ScenarioSpec(
        name="points-greedy",
        dataset="rwm",
        seed=2013,
        n_sensors=80,
        n_slots=8,
        allocator="greedy",
        streams=(StreamSpec("point", params={"n_queries": 50, "budget": 15.0}),),
    ),
    ScenarioSpec(
        name="points-baseline-seq",
        dataset="rwm",
        seed=2013,
        n_sensors=80,
        n_slots=8,
        allocator="baseline",
        allocation="sequential",
        streams=(
            StreamSpec("point", params={"n_queries": 50, "budget": 15.0}),
            StreamSpec("aggregate", params={"mean_queries": 4, "count_spread": 2}),
        ),
    ),
    ScenarioSpec(
        name="mixed-city",
        dataset="rwm",
        seed=2013,
        n_sensors=80,
        n_slots=8,
        allocator="greedy",
        streams=(
            StreamSpec("point", params={"n_queries": 30, "budget": 15.0}),
            StreamSpec("aggregate", params={"mean_queries": 4, "count_spread": 2}),
            StreamSpec(
                "location_monitoring",
                params={"max_live": 10, "arrivals_per_slot": 3},
            ),
        ),
    ),
]


def main() -> None:
    print("One spec as the CLI would read it (repro scenario spec.json):\n")
    print(json.dumps(SPECS[-1].to_dict(), indent=2))
    print()

    figure = compare_scenarios(
        SPECS, metrics=("avg_utility", "satisfaction_ratio", "egalitarian_ratio")
    )
    print(f"{'scenario':<22} {'utility/slot':>13} {'satisfied':>10} {'egalitarian':>12}")
    for name, series in figure.series.items():
        print(
            f"{name:<22} {series['avg_utility'][0]:>13.1f} "
            f"{series['satisfaction_ratio'][0]:>9.1%} "
            f"{series['egalitarian_ratio'][0]:>11.1%}"
        )
    print(
        "\nEvery row ran through the same SlotEngine — only the declared"
        " streams and allocation strategy differ."
    )


if __name__ == "__main__":
    main()
