"""Vectorized point-query valuation — the slot's shared hot path.

Every point-query consumer — the BILP/local-search value matrix (eq. 9/12),
the greedy/baseline relevance prefilter (the paper's ``Q_{l_s}``), and the
monitoring controllers' derived queries — ultimately evaluates eq. (3)/(4)
for query×sensor pairs.  The seed implementation rebuilt those values with a
per-location Python loop inside every allocator call; at paper scale
(hundreds of queries × hundreds of sensors, every slot, every algorithm in
a sweep) that loop dominates the profile.

:class:`ValuationKernel` stacks one slot's announcements once (coordinates,
inaccuracy ``gamma``, trust ``tau``) and computes the full query×sensor
value matrix in a single broadcasted pass.  The engine builds one kernel
per slot and hands it to whatever allocator runs, so the stacked arrays are
shared across :class:`~repro.core.point_problem.PointProblem`, the query-mix
pipeline and the monitoring controllers instead of being reassembled per
call.

Two numerical paths coexist in the codebase and the kernel reproduces each
bit-for-bit so that refactored callers keep their exact seed behavior:

* the *matrix* path (``value_rows``) mirrors the dense-matrix construction
  historically inlined in ``PointProblem.build``: distances via
  ``sqrt(dx^2 + dy^2)`` and quality ``((1-gamma)*tau) * (1 - d/dmax)``;
* the *scalar* path (``single_values`` / ``relevance``) mirrors
  :func:`repro.queries.point.reading_quality`: distances via ``hypot`` and
  quality ``((1-gamma) * (1 - d/dmax)) * tau``.  (``np.hypot`` delegates to
  libm while ``math.hypot`` uses CPython's own algorithm, so this path can
  differ from the scalar original in the final ulp — irrelevant unless an
  instance is engineered to sit within one rounding step of a threshold.)

The paths differ from each other only in the last ulps, but allocators
compare against sharp thresholds (``theta_min``, ``> 0``), so each consumer
keeps its historical formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..backend import xp
from ..queries import PointQuery, SensorRoster
from ..sensors import SensorSnapshot
from ..sensors.state import SnapshotColumnView, as_announcement_sequence
from ..spatial.raster import WorldRaster, get_raster

__all__ = ["ValuationKernel", "announcement_token", "delta_old_to_new"]


def delta_old_to_new(delta, n_old: int) -> np.ndarray:
    """Previous-batch-column → new-batch-column map of a
    :class:`~repro.sensors.SlotDelta` (``-1`` = no longer announced)."""
    old_to_new = xp.full(n_old, -1, dtype=xp.int64_dtype)
    valid = delta.kept_src >= 0
    old_to_new[delta.kept_src[valid]] = np.flatnonzero(valid)
    return old_to_new


def announcement_token(sensors: Sequence[SensorSnapshot]) -> tuple:
    """Identity token of an announcement batch.

    Two batches with equal tokens are interchangeable for every value
    matrix the kernel produces: same sensor ids, positions, inaccuracies
    and trusts in the same column order.  Announced *costs* are excluded
    on purpose — value matrices never depend on them (see
    :class:`ValuationKernel`), which is what lets a kernel survive
    re-announcements that change prices only.

    :class:`~repro.sensors.AnnouncementBatch` producers carry the same
    identity as an O(1) version stamp (``batch.token``); kernels compare
    stamps first and fall back to this per-sensor tuple only for
    non-batch announcement lists.
    """
    return tuple(
        (s.sensor_id, s.location.x, s.location.y, s.inaccuracy, s.trust)
        for s in sensors
    )




def _stack_queries(
    queries: Sequence[PointQuery],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    q = len(queries)
    xy = xp.empty((q, 2), dtype=xp.float_dtype)
    budgets = xp.empty(q, dtype=xp.float_dtype)
    theta_mins = xp.empty(q, dtype=xp.float_dtype)
    dmaxes = xp.empty(q, dtype=xp.float_dtype)
    for i, query in enumerate(queries):
        xy[i, 0] = query.location.x
        xy[i, 1] = query.location.y
        budgets[i] = query.budget
        theta_mins[i] = query.theta_min
        dmaxes[i] = query.dmax
    return xy, budgets, theta_mins, dmaxes


@dataclass
class ValuationKernel:
    """One slot's announcements, stacked for broadcasted valuation.

    Attributes:
        sensors: the announcements, defining the column order of every
            matrix the kernel produces — a plain snapshot list, or an
            :class:`~repro.sensors.AnnouncementBatch` (lazy snapshot
            sequence) when the kernel was built zero-copy from a batch.
        sensor_xy: ``(n, 2)`` sensor coordinates.
        gamma: per-sensor inaccuracy ``gamma_s``.
        trust: per-sensor trust ``tau_s``.
        costs: announced costs ``c_s`` (snapshot convenience only — value
            matrices never depend on cost, which is what lets a kernel be
            reused across re-announcements that change prices only, e.g.
            the sequential baseline's zero-cost buffering stage).
    """

    sensors: Sequence[SensorSnapshot]
    sensor_xy: np.ndarray
    gamma: np.ndarray
    trust: np.ndarray
    costs: np.ndarray
    #: precomputed :func:`announcement_token` of ``sensors`` (lazy).
    _token: tuple | None = field(default=None, repr=False, compare=False)
    #: the producing batch's O(1) version stamp, when built from one.
    _stamp: tuple | None = field(default=None, repr=False, compare=False)
    #: the slot's shared world raster over ``sensor_xy`` (lazy).
    _raster: WorldRaster | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sensors(cls, sensors: Sequence[SensorSnapshot]) -> "ValuationKernel":
        # Keep the caller's list object when possible: allocators that
        # receive the same announcement list the kernel was built from get
        # an O(1) identity fast path in :meth:`matches`.  The kernel treats
        # the list as frozen — replacing its *elements* after construction
        # is a caller bug the fast path cannot detect (snapshots themselves
        # are frozen dataclasses, so the only mutable surface is the list
        # slots), exactly as mutating the stacked arrays would be.  Every
        # in-repo producer builds a fresh list per slot.
        #
        # An AnnouncementBatch producer takes the zero-copy path: its
        # stacked arrays are adopted as-is (same values the per-snapshot
        # loop would stack — each snapshot is materialized *from* them)
        # and its version stamp replaces the O(n) token build.
        arrays = getattr(sensors, "kernel_arrays", None)
        if arrays is not None:
            xy, gamma, trust, costs = arrays()
            kernel = cls(sensors, xy, gamma, trust, costs)
            kernel._stamp = sensors.token
            return kernel
        sensors = sensors if type(sensors) is list else list(sensors)
        n = len(sensors)
        xy = xp.empty((n, 2), dtype=xp.float_dtype)
        gamma = xp.empty(n, dtype=xp.float_dtype)
        trust = xp.empty(n, dtype=xp.float_dtype)
        costs = xp.empty(n, dtype=xp.float_dtype)
        # reprolint: disable=hot-loop(object-path fallback for plain snapshot lists; batches take kernel_arrays above)
        for j, snapshot in enumerate(sensors):
            xy[j, 0] = snapshot.location.x
            xy[j, 1] = snapshot.location.y
            gamma[j] = snapshot.inaccuracy
            trust[j] = snapshot.trust
            costs[j] = snapshot.cost
        return cls(sensors, xy, gamma, trust, costs)

    @classmethod
    def from_batch(cls, batch) -> "ValuationKernel":
        """Zero-copy kernel over an :class:`~repro.sensors.AnnouncementBatch`.

        The batch's stacked arrays become the kernel's arrays (array
        slices, no per-sensor loop) and its O(1) token becomes the reuse
        stamp.  Equivalent to ``from_sensors(batch)`` — this spelling
        exists for callers that want to require the batch protocol.
        """
        if getattr(batch, "kernel_arrays", None) is None:
            raise TypeError(
                "from_batch needs an AnnouncementBatch-like producer "
                "(kernel_arrays/token); use from_sensors for snapshot lists"
            )
        return cls.from_sensors(batch)

    @classmethod
    def ensure(
        cls,
        kernel: "ValuationKernel | None",
        sensors: Sequence[SensorSnapshot],
    ) -> "ValuationKernel":
        """Reuse ``kernel`` when it covers exactly ``sensors``, else build.

        Compatibility means identical sensor ids, positions, inaccuracy and
        trust in identical column order; announced costs may differ (the
        sequential mix baseline re-announces stage-1 sensors at zero cost,
        and slot-to-slot reuse survives pure price moves) — consumers must
        treat :attr:`costs` as a build-time snapshot, never as settlement
        truth.
        """
        if kernel is not None and kernel.matches(sensors):
            # Rebind to the current announcements: identity attributes are
            # equal by the match, and rebinding restores the O(1) ``is``
            # fast path for every later check this slot (the kernel
            # otherwise stays pinned to the *previous* slot's batch after a
            # cross-slot reuse and pays a stamp/token compare per consumer).
            if sensors is not kernel.sensors:
                kernel.sensors = as_announcement_sequence(sensors)
                # A token-less newcomer (plain snapshot list) proved equal
                # identity via matches(), so any existing stamp still
                # describes this kernel — keep it rather than degrading
                # future batch comparisons to the O(n) token walk.
                stamp = getattr(sensors, "token", None)
                if stamp is not None:
                    kernel._stamp = stamp
            return kernel
        return cls.from_sensors(sensors)

    @classmethod
    def ensure_delta(
        cls,
        kernel: "ValuationKernel | None",
        batch,
        delta,
    ) -> "ValuationKernel":
        """Differential :meth:`ensure`: patch forward instead of rebuilding.

        ``batch``/``delta`` come from
        :meth:`~repro.sensors.FleetState.announce_update`.  Equal stamps
        reuse ``kernel`` outright (as :meth:`ensure`).  Otherwise a new
        kernel adopts the new batch's arrays zero-copy — they were already
        spliced churn-proportionally by the announce layer — and, when the
        delta chains from exactly the batch ``kernel`` was built over, the
        old kernel's world raster is carried forward as a patched raster
        (containment and coverage-CSR caches refill by splicing, see
        :meth:`~repro.spatial.WorldRaster.patched`).  Allocations computed
        through the result are bit-identical to the full-rebuild path's.
        """
        if kernel is not None and kernel.matches(batch):
            if batch is not kernel.sensors:
                kernel.sensors = as_announcement_sequence(batch)
                stamp = getattr(batch, "token", None)
                if stamp is not None:
                    kernel._stamp = stamp
            return kernel
        new = cls.from_batch(batch)
        if kernel is not None and delta is not None and delta.prev_token == kernel._stamp:
            raster = kernel._carry_raster(batch, delta)
            if raster is not None:
                new._raster = raster
        return new

    def _carry_raster(self, batch, delta) -> WorldRaster | None:
        """Patch this kernel's raster onto the next batch's coordinates."""
        raster = self._raster
        if raster is None or raster.xy is not self.sensor_xy:
            raster = getattr(self.sensors, "_world_raster", None)
            if raster is None or raster.xy is not self.sensor_xy:
                return None
        patched = raster.patched(
            batch.xy, delta_old_to_new(delta, len(self.sensor_xy)), delta.fresh_cols
        )
        try:
            setattr(batch, "_world_raster", patched)
        except (AttributeError, TypeError):
            pass
        return patched

    @property
    def token(self) -> tuple:
        """Cached :func:`announcement_token` of this kernel's batch."""
        if self._token is None:
            self._token = announcement_token(self.sensors)
        return self._token

    def matches(self, sensors: Sequence[SensorSnapshot]) -> bool:
        """O(1) reuse check for the common cases, token compare otherwise.

        Allocators call this on every ``allocate``; when they are handed
        the very batch/list the slot kernel was built from (the engine's
        normal path) the identity check answers immediately.  When both
        sides carry batch version stamps the stamps decide in O(1): equal
        stamps guarantee identical announcement identity, and unequal
        stamps mean the producing fleet state actually changed (stamps are
        bumped only on real position/exhaustion changes) or the producers
        are different fleets — either way a rebuild is the correct, cheap
        answer.  Only mixed list/batch comparisons fall back to the
        per-sensor token walk, which exits on the first mismatch.
        """
        if sensors is self.sensors:
            return True
        stamp = getattr(sensors, "token", None)
        if stamp is not None and self._stamp is not None:
            return stamp == self._stamp
        if len(sensors) != len(self.sensors):
            return False
        for cached, snapshot in zip(self.token, sensors):
            if (
                cached[0] != snapshot.sensor_id
                or cached[1] != snapshot.location.x
                or cached[2] != snapshot.location.y
                or cached[3] != snapshot.inaccuracy
                or cached[4] != snapshot.trust
            ):
                return False
        return True

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def n_sensors(self) -> int:
        return len(self.sensors)

    @property
    def raster(self) -> WorldRaster:
        """The slot's shared :class:`~repro.spatial.WorldRaster`.

        Attached to the announcement batch when possible (see
        :func:`~repro.spatial.raster.get_raster`), so a kernel built
        zero-copy from a batch shares one raster — and its cached
        containment/coverage geometry — with every other consumer of that
        batch this slot (monitoring controllers, sharded kernels).
        Revalidated against :attr:`sensor_xy` by object identity, which
        survives :meth:`ensure` rebinds (those keep the stacked arrays).
        """
        raster = self._raster
        if raster is None or raster.xy is not self.sensor_xy:
            raster = get_raster(self.sensors, self.sensor_xy)
            self._raster = raster
        return raster

    def roster(
        self,
        indices: np.ndarray | None = None,
        snapshots: Sequence[SensorSnapshot] | None = None,
    ) -> SensorRoster:
        """A :class:`~repro.queries.SensorRoster` over (a subset of) the
        kernel's columns, sharing its stacked arrays.

        ``indices`` selects candidate columns in order (default: all).
        ``snapshots`` supplies the snapshot objects the roster should carry
        — pass the slot's *current* announcement list whenever the kernel
        may be a reused one (cross-slot reuse, the sequential baseline's
        zero-cost re-announcements): the identity attributes are guaranteed
        equal by :meth:`matches`, but announced costs live only on the
        current snapshots.

        Column subsets are carried as a lazy
        :class:`~repro.sensors.state.SnapshotColumnView`, so building a
        roster over a candidate subset of an ``AnnouncementBatch`` never
        materializes a snapshot — only the columns a consumer actually
        indexes (the committed winners) are built.
        """
        source = self.sensors if snapshots is None else as_announcement_sequence(snapshots)
        if indices is None:
            roster = SensorRoster(source, self.sensor_xy, self.gamma, self.trust)
        else:
            picked = SnapshotColumnView(source, indices)
            roster = SensorRoster(
                picked,
                self.sensor_xy[indices],
                self.gamma[indices],
                self.trust[indices],
            )
            roster.kernel_columns = np.asarray(indices, dtype=np.intp)
        roster.raster = self.raster
        return roster

    # ------------------------------------------------------------------
    # the matrix path (eq. 9/12 consumers: PointProblem, BILP, local search)
    # ------------------------------------------------------------------
    def value_rows(self, queries: Sequence[PointQuery]) -> np.ndarray:
        """Per-query value rows ``V[i, j] = v_{q_i}(s_j)`` in one pass.

        Replicates the historical ``PointProblem.build`` arithmetic exactly
        (including operation order, for bit-stable refactoring): distance by
        ``sqrt(dx^2+dy^2)``, quality ``((1-gamma)*tau) * (1 - d/dmax)``,
        zeroed beyond ``dmax`` and below ``theta_min``, scaled by budget.
        """
        xy, budgets, theta_mins, dmaxes = _stack_queries(queries)
        return self.value_matrix(xy, budgets, theta_mins, dmaxes)

    def value_matrix(
        self,
        query_xy: np.ndarray,
        budgets: np.ndarray,
        theta_mins: np.ndarray,
        dmaxes: np.ndarray,
    ) -> np.ndarray:
        """Raw-array form of :meth:`value_rows` for pre-stacked workloads.

        Written with explicit per-component temporaries and in-place ops:
        the naive ``(q, n, 2)`` difference tensor triples the memory
        traffic of this (memory-bound) pass.  Every element still goes
        through exactly the historical operation sequence
        ``sqrt(dx^2 + dy^2)`` then ``((1-gamma)*tau) * (1 - d/dmax)``, so
        results stay bit-identical to the seed loop.
        """
        q = len(query_xy)
        n = self.n_sensors
        if q == 0 or n == 0:
            return xp.zeros((q, n), dtype=xp.float_dtype)
        dx = self.sensor_xy[:, 0][None, :] - query_xy[:, 0][:, None]
        np.multiply(dx, dx, out=dx)
        dy = self.sensor_xy[:, 1][None, :] - query_xy[:, 1][:, None]
        np.multiply(dy, dy, out=dy)
        dist = dx
        dist += dy
        np.sqrt(dist, out=dist)
        dmax_col = dmaxes[:, None]
        quality = dist / dmax_col
        np.subtract(1.0, quality, out=quality)
        np.multiply(((1.0 - self.gamma) * self.trust)[None, :], quality, out=quality)
        quality[dist > dmax_col] = 0.0
        quality[quality < theta_mins[:, None]] = 0.0
        np.multiply(budgets[:, None], quality, out=quality)
        return quality

    # ------------------------------------------------------------------
    # the scalar-compatible path (eq. 3 consumers: greedy/baseline prefilter)
    # ------------------------------------------------------------------
    def single_values(self, queries: Sequence[PointQuery]) -> np.ndarray:
        """``V[i, j] = PointQuery.value_single`` for every pair, vectorized.

        Bit-compatible with :func:`repro.queries.point.reading_quality`:
        distance via ``hypot`` and multiplication order
        ``((1-gamma) * (1 - d/dmax)) * tau``, then the ``theta >= theta_min``
        cutoff and the budget scaling of eq. (3).
        """
        xy, budgets, theta_mins, dmaxes = _stack_queries(queries)
        q, n = len(xy), self.n_sensors
        if q == 0 or n == 0:
            return xp.zeros((q, n), dtype=xp.float_dtype)
        dist = np.hypot(
            self.sensor_xy[None, :, 0] - xy[:, None, 0],
            self.sensor_xy[None, :, 1] - xy[:, None, 1],
        )
        theta = (1.0 - self.gamma)[None, :] * (1.0 - dist / dmaxes[:, None])
        theta *= self.trust[None, :]
        theta[dist > dmaxes[:, None]] = 0.0
        values = budgets[:, None] * theta
        values[theta < theta_mins[:, None]] = 0.0
        return values

    def relevance(self, queries: Sequence[PointQuery]) -> np.ndarray:
        """Boolean ``(q, n)`` matrix of ``PointQuery.relevant`` (value > 0)."""
        return self.single_values(queries) > 0.0
