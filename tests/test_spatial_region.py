"""Tests for repro.spatial.region."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.spatial import Location, Region


class TestConstruction:
    def test_from_origin(self):
        r = Region.from_origin(10, 5)
        assert (r.x_min, r.y_min, r.x_max, r.y_max) == (0, 0, 10, 5)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Region(0, 0, -1, 5)
        with pytest.raises(ValueError):
            Region(0, 3, 5, 2)

    def test_zero_area_region_is_allowed(self):
        r = Region(1, 1, 1, 1)
        assert r.area == 0.0
        assert r.contains(Location(1, 1))

    def test_centered_in_matches_paper_hotspot(self):
        outer = Region.from_origin(80, 80)
        hotspot = Region.centered_in(outer, 50, 50)
        assert hotspot == Region(15, 15, 65, 65)

    def test_centered_in_too_big_raises(self):
        with pytest.raises(ValueError):
            Region.centered_in(Region.from_origin(10, 10), 20, 5)

    def test_random_subregion_is_contained(self):
        rng = np.random.default_rng(0)
        outer = Region.from_origin(100, 100)
        for _ in range(50):
            sub = Region.random_subregion(outer, rng, min_side=2, max_side=30)
            assert outer.contains_region(sub)
            assert 2 <= sub.width <= 30
            assert 2 <= sub.height <= 30

    def test_random_subregion_min_side_too_big(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Region.random_subregion(Region.from_origin(5, 5), rng, min_side=10)


class TestPredicates:
    def test_contains_boundary(self):
        r = Region.from_origin(10, 10)
        assert r.contains(Location(0, 0))
        assert r.contains(Location(10, 10))
        assert not r.contains(Location(10.01, 5))

    def test_overlaps(self):
        a = Region(0, 0, 10, 10)
        assert a.overlaps(Region(5, 5, 15, 15))
        assert a.overlaps(Region(10, 10, 20, 20))  # shared corner
        assert not a.overlaps(Region(11, 0, 20, 10))

    def test_intersection(self):
        a = Region(0, 0, 10, 10)
        b = Region(5, 5, 15, 15)
        assert a.intersection(b) == Region(5, 5, 10, 10)
        assert a.intersection(Region(20, 20, 30, 30)) is None

    def test_contains_region(self):
        outer = Region(0, 0, 10, 10)
        assert outer.contains_region(Region(1, 1, 9, 9))
        assert outer.contains_region(outer)
        assert not outer.contains_region(Region(5, 5, 11, 9))


class TestGeometry:
    def test_area_and_center(self):
        r = Region(1, 2, 5, 10)
        assert r.area == pytest.approx(32.0)
        assert r.center == Location(3.0, 6.0)

    def test_clamp(self):
        r = Region.from_origin(10, 10)
        assert r.clamp(Location(-5, 5)) == Location(0, 5)
        assert r.clamp(Location(11, 12)) == Location(10, 10)
        assert r.clamp(Location(3, 4)) == Location(3, 4)

    def test_sample_location_inside(self):
        rng = np.random.default_rng(7)
        r = Region(2, 3, 8, 9)
        for _ in range(100):
            assert r.contains(r.sample_location(rng))

    def test_sample_locations_count(self):
        rng = np.random.default_rng(7)
        r = Region.from_origin(10, 10)
        locs = r.sample_locations(25, rng)
        assert len(locs) == 25
        assert all(r.contains(p) for p in locs)

    def test_grid_cells_count_and_centers(self):
        r = Region.from_origin(4, 3)
        cells = list(r.grid_cells(1.0))
        assert len(cells) == 12
        assert Location(0.5, 0.5) in cells
        assert Location(3.5, 2.5) in cells
        assert all(r.contains(c) for c in cells)

    def test_grid_cells_with_coarser_cell(self):
        r = Region.from_origin(4, 4)
        cells = list(r.grid_cells(2.0))
        assert len(cells) == 4

    @given(st.floats(1, 50), st.floats(1, 50))
    def test_area_matches_width_times_height(self, w, h):
        r = Region.from_origin(w, h)
        assert r.area == pytest.approx(w * h)
