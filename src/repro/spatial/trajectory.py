"""Trajectories: polylines through the sensing plane.

Queries over trajectories (Section 2.2.3) ask for an aggregate of a
phenomenon along a path, e.g. "max CO2 on my commute".  The paper treats
them as spatial aggregate queries whose region of interest is the corridor
around the path; :meth:`Trajectory.sample_points` and
:meth:`Trajectory.distance_to` provide the geometry for that reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .geometry import Location, as_xy
from .region import Region

__all__ = ["Trajectory"]


def _point_segment_distance(p: Location, a: Location, b: Location) -> float:
    """Distance from point ``p`` to the closed segment ``a``-``b``."""
    ax, ay, bx, by = a.x, a.y, b.x, b.y
    dx, dy = bx - ax, by - ay
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return p.distance_to(a)
    t = ((p.x - ax) * dx + (p.y - ay) * dy) / seg_len_sq
    t = min(max(t, 0.0), 1.0)
    # reprolint: disable=ulp-mixed-math(scalar parity path pinned bit-identical to the seed; np.hypot differs in the last ulp)
    return math.hypot(p.x - (ax + t * dx), p.y - (ay + t * dy))


@dataclass(frozen=True)
class Trajectory:
    """An ordered polyline of at least two waypoints."""

    waypoints: tuple[Location, ...]

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a trajectory needs at least two waypoints")

    @classmethod
    def from_points(cls, points: Sequence[Location]) -> "Trajectory":
        return cls(tuple(points))

    @classmethod
    def random(
        cls,
        region: Region,
        rng: np.random.Generator,
        n_waypoints: int = 4,
    ) -> "Trajectory":
        """Random polyline inside ``region`` (workload generation)."""
        if n_waypoints < 2:
            raise ValueError("n_waypoints must be >= 2")
        return cls(tuple(region.sample_locations(n_waypoints, rng)))

    @property
    def length(self) -> float:
        """Total polyline length."""
        return sum(
            self.waypoints[i].distance_to(self.waypoints[i + 1])
            for i in range(len(self.waypoints) - 1)
        )

    def distance_to(self, point: Location) -> float:
        """Distance from ``point`` to the nearest point of the polyline."""
        return min(
            _point_segment_distance(point, self.waypoints[i], self.waypoints[i + 1])
            for i in range(len(self.waypoints) - 1)
        )

    def distance_to_many(self, xy) -> np.ndarray:
        """Vectorized :meth:`distance_to` over ``(n, 2)`` coordinates.

        One broadcasted pass per polyline segment (waypoint counts are
        small), replicating :func:`_point_segment_distance`'s projection
        and clamping arithmetic per element.  Distances go through
        ``np.hypot`` where the scalar path uses ``math.hypot``; the two can
        differ in the final ulp, which is why consumers that need batch and
        scalar decisions to agree (``TrajectoryQuery.relevant``) route the
        scalar case through this method with ``n = 1``.
        """
        pts = as_xy(xy)
        if len(pts) == 0:
            return np.zeros(0)
        px, py = pts[:, 0], pts[:, 1]
        best: np.ndarray | None = None
        for i in range(len(self.waypoints) - 1):
            a, b = self.waypoints[i], self.waypoints[i + 1]
            dx, dy = b.x - a.x, b.y - a.y
            seg_len_sq = dx * dx + dy * dy
            if seg_len_sq == 0.0:
                d = np.hypot(px - a.x, py - a.y)
            else:
                t = ((px - a.x) * dx + (py - a.y) * dy) / seg_len_sq
                np.clip(t, 0.0, 1.0, out=t)
                d = np.hypot(px - (a.x + t * dx), py - (a.y + t * dy))
            best = d if best is None else np.minimum(best, d)
        return best

    def covers(self, point: Location, corridor: float) -> bool:
        """Whether ``point`` lies in the corridor of half-width ``corridor``."""
        return self.distance_to(point) <= corridor

    def sample_points(self, spacing: float) -> list[Location]:
        """Points spaced ``spacing`` apart along the polyline (inclusive ends).

        These act as the "cells of interest" when a trajectory query is
        reduced to a spatial aggregate query: the coverage function counts
        how many of these points are within sensing range of a selected
        sensor.
        """
        if spacing <= 0:
            raise ValueError("spacing must be positive")
        points: list[Location] = [self.waypoints[0]]
        carried = 0.0
        for i in range(len(self.waypoints) - 1):
            a, b = self.waypoints[i], self.waypoints[i + 1]
            seg_len = a.distance_to(b)
            if seg_len == 0.0:
                continue
            ux, uy = (b.x - a.x) / seg_len, (b.y - a.y) / seg_len
            pos = spacing - carried
            while pos <= seg_len:
                points.append(Location(a.x + ux * pos, a.y + uy * pos))
                pos += spacing
            carried = seg_len - (pos - spacing)
        if points[-1] != self.waypoints[-1]:
            points.append(self.waypoints[-1])
        return points

    def bounding_region(self, margin: float = 0.0) -> Region:
        """Axis-aligned bounding box, padded by ``margin`` on every side."""
        xs = [w.x for w in self.waypoints]
        ys = [w.y for w in self.waypoints]
        return Region(
            min(xs) - margin, min(ys) - margin, max(xs) + margin, max(ys) + margin
        )
