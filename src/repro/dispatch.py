"""Batch-hook dispatch guards shared across the vectorized protocols.

Several subsystems pair a scalar extension hook with a batched one —
``Query.relevant`` / ``Query.relevant_mask`` (the batch-relevance
protocol) and ``WaypointMobility.sample_target`` / ``sample_targets`` (the
loop-free mobility advance).  A subclass that customizes only the *scalar*
hook must not be silently routed through the inherited batch hook, which
no longer reflects its behaviour.  :func:`batch_hook_trusted` is the one
shared staleness test: the batch hook is trusted only when its defining
class sits at or below every scalar hook's defining class in the MRO —
i.e. whoever last changed the scalar semantics also vouched for the batch
form.

(The third guard of this family,
:func:`repro.spatial.coverage.masks_for_xy`, deliberately uses a different
mechanism — module identity — because its hazard is the *input signature*
of an override, not staleness: a batch hook overridden out-of-tree against
the historical ``Sequence[Location]`` contract is fresh but cannot accept
coordinate arrays.)
"""

from __future__ import annotations

__all__ = ["batch_hook_trusted"]


def batch_hook_trusted(cls: type, batch_hook: str, scalar_hooks: tuple[str, ...]) -> bool:
    """Whether ``cls``'s ``batch_hook`` still speaks for its scalar hooks.

    Returns ``False`` when any of ``scalar_hooks`` is (re)defined strictly
    below the class providing the effective ``batch_hook`` — the caller
    must fall back to the scalar path.  Hooks absent from the whole MRO
    are ignored (not every type defines every delegated hook).
    """
    mro = cls.__mro__
    batch_owner = next(c for c in mro if batch_hook in c.__dict__)
    for hook in scalar_hooks:
        owner = next((c for c in mro if hook in c.__dict__), None)
        if owner is not None and not issubclass(batch_owner, owner):
            return False
    return True
