"""Service liveness under bursty load at fleet scale.

A 20k-sensor sharded world is driven open-loop with a bursty arrival
profile that outruns the admission budget by design.  The service must
stay *live*: the queue stays at its declared bound and overflow turns
into explicit ``queue_full`` rejections, while per-slot latency stays
flat (work per tick is capped by admission, never by the backlog).  The
suite asserts those properties and emits ``BENCH_service.json`` — p50 /
p99 slot latency, per-phase latencies, and the admission ledger — so
future changes to the service or the engine underneath have SLO numbers
to compare against.  Set ``REPRO_BENCH_SERVICE_JSON`` to choose the
output path.

Run:  pytest benchmarks/bench_service.py -s
"""

from __future__ import annotations

import json
import os
import statistics

import pytest

from repro.datasets import ScenarioSpec, StreamSpec
from repro.service import BurstyProfile, LoadGenerator, MarketplaceService

_RESULTS: dict[str, dict] = {}

N_TICKS = 12
QUEUE_DEPTH = 96
ADMIT_CAP = 24


@pytest.fixture(scope="session", autouse=True)
def bench_service_json():
    """Write the SLO table after the whole bench session."""
    yield
    if not _RESULTS:
        return
    path = os.environ.get("REPRO_BENCH_SERVICE_JSON", "BENCH_service.json")
    with open(path, "w") as fh:
        json.dump(_RESULTS, fh, indent=2, sort_keys=True)
    print(f"\nwrote {len(_RESULTS)} service bench cases to {path}")


def burst_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="bench-service-burst",
        dataset="rwm",
        seed=2013,
        n_sensors=20_000,
        n_slots=N_TICKS,
        allocator="greedy",
        sharding="auto",
        fused="auto",
        streams=[
            StreamSpec("point", {"n_queries": 64, "budget": 15.0, "dmax": 2.0}),
            StreamSpec(
                "aggregate",
                {"mean_queries": 16, "count_spread": 0, "min_side": 24.0,
                 "max_side": 48.0, "coverage_radius": 5.0,
                 "sensing_range": 10.0},
            ),
        ],
    )


def run_burst() -> MarketplaceService:
    spec = burst_spec()
    service = MarketplaceService.from_spec(
        spec, max_queue_depth=QUEUE_DEPTH, max_admitted_per_tick=ADMIT_CAP
    )
    generator = LoadGenerator(
        BurstyProfile(rate=8.0, burst_rate=160.0, period=4, burst_length=1),
        service.workloads,
        seed=7,
    )
    generator.drive(service, N_TICKS)
    return service


@pytest.fixture(scope="module")
def burst_service():
    return run_burst()


def test_bursty_load_stays_live_at_20k_sensors(burst_service):
    metrics = burst_service.metrics
    # The bursts outran the admission budget: backpressure engaged...
    assert metrics.submitted > N_TICKS * ADMIT_CAP
    assert metrics.rejected.get("queue_full", 0) > 0
    # ...as bounded queue + rejections, never unbounded growth.
    assert metrics.max_queue_depth <= QUEUE_DEPTH
    assert all(s.admitted <= ADMIT_CAP for s in metrics.slots)
    assert metrics.admitted == sum(s.admitted for s in metrics.slots)
    assert len(metrics.slots) == N_TICKS


def test_latency_stays_flat_not_collapsing(burst_service):
    """Backlog must not leak into slot latency: with admission capped,
    the ticks after a burst cost about what the ticks before it did."""
    seconds = [s.slot_seconds for s in burst_service.metrics.slots]
    median = statistics.median(seconds)
    assert median > 0
    # Generous bound: no slot (burst ticks included) an order of
    # magnitude beyond the median — a backlog-driven collapse shows up
    # as monotonically growing slot times, far past this.
    assert max(seconds) <= 10 * median
    tail = statistics.mean(seconds[-3:])
    assert tail <= 5 * median


def test_record_service_slo(burst_service):
    metrics = burst_service.metrics
    _RESULTS["bursty_20k"] = {
        "config": {
            "n_sensors": 20_000,
            "n_ticks": N_TICKS,
            "max_queue_depth": QUEUE_DEPTH,
            "max_admitted_per_tick": ADMIT_CAP,
            "profile": repr(
                BurstyProfile(rate=8.0, burst_rate=160.0, period=4,
                              burst_length=1)
            ),
        },
        "slot_latency": metrics.slot_latency.snapshot(),
        "phase_latency": {
            phase: hist.snapshot()
            for phase, hist in metrics.phase_latency.items()
        },
        "admission": {
            "submitted": metrics.submitted,
            "admitted": metrics.admitted,
            "rejected": dict(sorted(metrics.rejected.items())),
            "settled": metrics.settled,
            "answered": metrics.answered,
            "max_queue_depth": metrics.max_queue_depth,
            "mean_queue_depth": metrics.queue_depth.mean,
            "max_admission_wait_ticks": metrics.max_admission_wait,
        },
    }
