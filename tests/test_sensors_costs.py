"""Tests for the cost models of Section 2.4 (eqs. 8, 14, 15)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sensors import (
    FixedEnergyCost,
    LinearEnergyCost,
    PrivacyCostModel,
    PrivacySensitivity,
    privacy_loss,
    total_cost,
)


class TestEnergyCosts:
    def test_fixed_is_constant(self):
        model = FixedEnergyCost(base_price=10.0)
        assert model(1.0) == 10.0
        assert model(0.0) == 10.0

    def test_linear_at_full_energy_equals_base(self):
        model = LinearEnergyCost(base_price=10.0, beta=3.0)
        assert model(1.0) == pytest.approx(10.0)

    def test_linear_at_zero_energy(self):
        model = LinearEnergyCost(base_price=10.0, beta=3.0)
        assert model(0.0) == pytest.approx(40.0)  # C * (1 + beta)

    def test_linear_monotone_in_depletion(self):
        model = LinearEnergyCost(base_price=10.0, beta=2.0)
        assert model(0.2) > model(0.8)

    def test_energy_out_of_range_rejected(self):
        model = FixedEnergyCost()
        with pytest.raises(ValueError):
            model(1.5)
        with pytest.raises(ValueError):
            LinearEnergyCost()( -0.1)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            FixedEnergyCost(base_price=-1.0)
        with pytest.raises(ValueError):
            LinearEnergyCost(beta=-0.5)

    @given(st.floats(0, 1), st.floats(0, 4))
    def test_linear_never_below_base(self, energy, beta):
        model = LinearEnergyCost(base_price=10.0, beta=beta)
        assert model(energy) >= 10.0 - 1e-12


class TestPrivacyLoss:
    def test_no_history_gives_baseline_loss(self):
        # Only the current report's weight w remains: p = w / (w(w+1)/2).
        w = 5
        assert privacy_loss([], now=10, window=w) == pytest.approx(2.0 / (w + 1))

    def test_reporting_every_slot_gives_full_loss(self):
        w = 5
        history = [10 - k for k in range(1, w + 1)]  # slots 5..9
        assert privacy_loss(history, now=10, window=w) == pytest.approx(1.0)

    def test_recent_reports_weigh_more(self):
        w = 5
        recent = privacy_loss([9], now=10, window=w)
        old = privacy_loss([6], now=10, window=w)
        assert recent > old

    def test_reports_older_than_window_ignored(self):
        w = 5
        base = privacy_loss([], now=100, window=w)
        assert privacy_loss([10], now=100, window=w) == pytest.approx(base)

    def test_future_report_rejected(self):
        with pytest.raises(ValueError):
            privacy_loss([11], now=10, window=5)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            privacy_loss([], now=0, window=0)

    @given(
        st.lists(st.integers(0, 49), max_size=10),
        st.integers(50, 60),
        st.integers(1, 10),
    )
    def test_loss_bounded(self, history, now, window):
        loss = privacy_loss(history, now, window)
        assert 0.0 < loss
        # Max loss: all window slots reported, each counted once.  With
        # duplicate history entries the formula can exceed 1; dedupe first
        # as the sensor history does.
        loss_dedup = privacy_loss(sorted(set(history)), now, window)
        assert loss_dedup <= 1.0 + 1e-9


class TestPrivacyCostModel:
    def test_zero_sensitivity_is_free(self):
        model = PrivacyCostModel(PrivacySensitivity.ZERO, base_price=10.0)
        assert model([9, 8], now=10) == 0.0

    def test_eq15_scaling(self):
        w = 5
        model = PrivacyCostModel(PrivacySensitivity.MODERATE, base_price=10.0, window=w)
        expected = 0.5 * privacy_loss([9], 10, w) * 10.0
        assert model([9], now=10) == pytest.approx(expected)

    def test_levels_are_ordered(self):
        history, now = [9, 8], 10
        costs = [
            PrivacyCostModel(level, base_price=10.0)(history, now)
            for level in PrivacySensitivity
        ]
        assert costs == sorted(costs)

    def test_from_value(self):
        assert PrivacySensitivity.from_value(0.75) is PrivacySensitivity.HIGH
        with pytest.raises(ValueError):
            PrivacySensitivity.from_value(0.3)

    def test_total_cost_composes(self):
        energy = LinearEnergyCost(base_price=10.0, beta=1.0)
        privacy = PrivacyCostModel(PrivacySensitivity.VERY_HIGH, base_price=10.0, window=5)
        cost = total_cost(energy, privacy, remaining_energy=0.5, history=[9], now=10)
        assert cost == pytest.approx(energy(0.5) + privacy([9], 10))
