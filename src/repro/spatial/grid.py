"""Grid discretization of a region.

The paper griditizes every dataset (80x80 RWM cells, 100 m cells for the
Lausanne campaign, 20x15 cells for the Intel-Lab replay).  A :class:`Grid`
maps continuous locations to integer cells and back and offers the
neighbourhood queries the allocators need (which sensors lie within
``dmax`` of a queried location).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

from .geometry import Location
from .region import Region

__all__ = ["Grid", "GridIndex"]


@dataclass(frozen=True)
class Grid:
    """Uniform grid over ``region`` with square cells of side ``cell_size``."""

    region: Region
    cell_size: float = 1.0

    def __post_init__(self) -> None:
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")

    @property
    def n_cols(self) -> int:
        return max(1, int(round(self.region.width / self.cell_size)))

    @property
    def n_rows(self) -> int:
        return max(1, int(round(self.region.height / self.cell_size)))

    @property
    def n_cells(self) -> int:
        return self.n_cols * self.n_rows

    def cell_of(self, location: Location) -> tuple[int, int]:
        """Integer cell ``(col, row)`` containing ``location`` (clamped)."""
        col = int((location.x - self.region.x_min) // self.cell_size)
        row = int((location.y - self.region.y_min) // self.cell_size)
        col = min(max(col, 0), self.n_cols - 1)
        row = min(max(row, 0), self.n_rows - 1)
        return (col, row)

    def center_of(self, cell: tuple[int, int]) -> Location:
        """Centre of integer cell ``(col, row)``."""
        col, row = cell
        if not (0 <= col < self.n_cols and 0 <= row < self.n_rows):
            raise ValueError(f"cell {cell} outside grid {self.n_cols}x{self.n_rows}")
        return Location(
            self.region.x_min + (col + 0.5) * self.cell_size,
            self.region.y_min + (row + 0.5) * self.cell_size,
        )

    def cells(self) -> Iterator[tuple[int, int]]:
        for col in range(self.n_cols):
            for row in range(self.n_rows):
                yield (col, row)

    def centers(self) -> Iterator[Location]:
        for cell in self.cells():
            yield self.center_of(cell)


@dataclass
class GridIndex:
    """Bucketed spatial index for radius queries over point sets.

    The point-query allocators repeatedly ask "which sensors are within
    ``dmax`` of location l?".  With hundreds of sensors and hundreds of
    queried locations per slot, a bucket index turns the O(|S| * |L|) scan
    into a handful of bucket lookups per location.
    """

    cell_size: float = 5.0
    _buckets: dict[tuple[int, int], list[tuple[Location, Hashable]]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def insert(self, location: Location, item: Hashable) -> None:
        """Index ``item`` at ``location``."""
        self._buckets[self._key(location)].append((location, item))

    def extend(self, entries: Iterable[tuple[Location, Hashable]]) -> None:
        for location, item in entries:
            self.insert(location, item)

    def within(self, center: Location, radius: float) -> list[tuple[Location, Hashable]]:
        """All indexed entries with Euclidean distance <= ``radius``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        reach = int(radius // self.cell_size) + 1
        kx, ky = self._key(center)
        hits: list[tuple[Location, Hashable]] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                for location, item in self._buckets.get((kx + dx, ky + dy), ()):
                    if center.distance_to(location) <= radius:
                        hits.append((location, item))
        return hits

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def _key(self, location: Location) -> tuple[int, int]:
        return (int(location.x // self.cell_size), int(location.y // self.cell_size))
