"""Periodic time series + linear regression model — the ozone-trace substitute.

Section 4.5 drives location-monitoring experiments with an ozone trace from
the OpenSense Zürich deployment and models it with linear regression; the
sampling times for a query are chosen so that "the residuals of the model
based on the values at the sampling times and the model given all the
historical data is minimized" (the OptiMoS technique [19]).

We synthesize an equivalent series — daily periodic structure, mild trend,
AR(1) noise — and provide the regression/residual machinery that both the
sampling-time selector (:mod:`.sampling_times`) and the eq. 16/17 valuation
need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["OzoneTraceSynthesizer", "HarmonicRegressionModel", "residual_sum_of_squares"]


@dataclass
class OzoneTraceSynthesizer:
    """Daily-periodic ozone-like signal with trend and AR(1) noise.

    ``period`` is expressed in slots; the paper discretizes a day into
    slots, and our default of 50 matches the simulation period so one
    simulated "day" spans the experiment.
    """

    period: int = 50
    base_level: float = 40.0
    amplitude: float = 15.0
    trend_per_slot: float = 0.02
    noise_std: float = 2.0
    ar_coefficient: float = 0.6

    def __post_init__(self) -> None:
        if self.period < 2:
            raise ValueError("period must be >= 2")
        if not (0.0 <= self.ar_coefficient < 1.0):
            raise ValueError("ar_coefficient must be in [0, 1)")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")

    def generate(self, n_slots: int, rng: np.random.Generator) -> np.ndarray:
        """A series of ``n_slots`` values."""
        if n_slots <= 0:
            raise ValueError("n_slots must be positive")
        t = np.arange(n_slots)
        phase = 2.0 * np.pi * t / self.period
        signal = (
            self.base_level
            + self.amplitude * np.sin(phase - np.pi / 2.0)  # morning low, afternoon peak
            + 0.3 * self.amplitude * np.sin(2.0 * phase)
            + self.trend_per_slot * t
        )
        noise = np.zeros(n_slots)
        innovations = rng.normal(0.0, self.noise_std, size=n_slots)
        for i in range(1, n_slots):
            noise[i] = self.ar_coefficient * noise[i - 1] + innovations[i]
        return signal + noise


class HarmonicRegressionModel:
    """Linear regression on [1, t, sin/cos harmonics] — the paper's model.

    The paper says "a linear regression model is used to model the data";
    for a periodic phenomenon the standard linear model is harmonic
    regression (linear in its coefficients).  ``n_harmonics = 0`` degrades
    to plain intercept+slope linear regression.

    ``ridge`` adds Tikhonov regularization to the fit.  Without it, a fit on
    fewer samples than features is under-determined and the minimum-norm
    interpolant produces spuriously tiny residuals — which would let the
    eq. 17 gain ratio explode after a single sample.  The same ``ridge``
    applies to both sides of the eq. 17 ratio, so ``G(T) = 1`` still holds
    by construction.
    """

    def __init__(self, period: int, n_harmonics: int = 2, ridge: float = 0.3) -> None:
        if period < 2:
            raise ValueError("period must be >= 2")
        if n_harmonics < 0:
            raise ValueError("n_harmonics must be non-negative")
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.period = period
        self.n_harmonics = n_harmonics
        self.ridge = ridge

    @property
    def n_features(self) -> int:
        return 2 + 2 * self.n_harmonics

    def design_matrix(self, timestamps: Sequence[int]) -> np.ndarray:
        t = np.asarray(timestamps, dtype=float)
        columns = [np.ones_like(t), t]
        for k in range(1, self.n_harmonics + 1):
            phase = 2.0 * np.pi * k * t / self.period
            columns.append(np.sin(phase))
            columns.append(np.cos(phase))
        return np.column_stack(columns)

    def fit(self, timestamps: Sequence[int], values: Sequence[float]) -> np.ndarray:
        """Least-squares coefficients from observations at ``timestamps``.

        Uses :func:`numpy.linalg.lstsq`, which also handles the under-
        determined case (fewer samples than features) that occurs early in
        the greedy sampling-time selection.
        """
        if len(timestamps) != len(values):
            raise ValueError("timestamps and values must align")
        if len(timestamps) == 0:
            raise ValueError("cannot fit a model on zero samples")
        design = self.design_matrix(timestamps)
        target = np.asarray(values, dtype=float)
        if self.ridge > 0:
            # Ridge via the augmented system [X; sqrt(l) P] beta ~ [y; 0],
            # with the intercept left unpenalized so the fit can always
            # absorb the series mean.
            penalty = np.sqrt(self.ridge) * np.eye(self.n_features)
            penalty[0, 0] = 0.0
            design = np.vstack([design, penalty])
            target = np.concatenate([target, np.zeros(self.n_features)])
        coef, *_ = np.linalg.lstsq(design, target, rcond=None)
        return coef

    def predict(self, coefficients: np.ndarray, timestamps: Sequence[int]) -> np.ndarray:
        return self.design_matrix(timestamps) @ coefficients

    def residuals(
        self,
        series: np.ndarray,
        sample_timestamps: Sequence[int],
    ) -> np.ndarray:
        """Residuals ``r_i | T`` of eq. (17).

        Fits the model on the series values at ``sample_timestamps`` only,
        then returns the residual of *every* historical item against that
        fit — exactly the quantity the eq. 17 gain ratio is built from.
        """
        series = np.asarray(series, dtype=float)
        samples = [t for t in sample_timestamps if 0 <= t < len(series)]
        if not samples:
            # With no samples at all the best constant model is the zero
            # model; residuals are the centred series (worst case).
            return series - series.mean() if len(series) else series
        coef = self.fit(samples, series[samples])
        return series - self.predict(coef, np.arange(len(series)))


def residual_sum_of_squares(
    model: HarmonicRegressionModel, series: np.ndarray, sample_timestamps: Sequence[int]
) -> float:
    """``sum_i r_i^2 | T`` — the denominator/numerator pieces of eq. (17)."""
    residuals = model.residuals(series, sample_timestamps)
    return float((residuals**2).sum())
