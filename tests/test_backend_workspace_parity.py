"""Backend-seam + slot-workspace parity: preallocated scratch arenas must
be invisible in the results.

The contract under test (see ``repro.backend``): workspace-on and
workspace-off runs execute the same acquire/fill/``out=`` statements —
only the buffer's provenance differs — so allocations and payments must
match with exact ``==``, across dense/sharded kernels, fused/batch gain
pipelines, and full-rebuild/incremental slot state.  On top of that the
workspace itself must actually reuse: arena growth goes flat once slots
are warm, and the instrumented backend's per-phase allocation counters
are deterministic run to run (they gate a CI floor).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from repro.backend import (
    InstrumentedNumpyBackend,
    NumpyBackend,
    SlotWorkspace,
    available_backends,
    normalize_backend,
    normalize_workspace,
    resolve_backend,
    use_backend,
    xp,
)
from repro.core.metrics import SimulationSummary
from repro.datasets import ScenarioSpec
from repro.experiments.replay import allocation_signature

SPEC_DIR = Path(__file__).resolve().parent.parent / "examples" / "specs"

#: (sharding, fused, incremental) corners: dense + sharded kernels,
#: fused + per-row batch pipelines, full-rebuild + incremental state.
KNOB_CORNERS = [
    (None, False, False),
    (None, "auto", False),
    ("auto", False, "auto"),
    ("auto", "auto", "auto"),
]


def scaled_spec(name: str, **overrides) -> ScenarioSpec:
    """A CI-sized variant of a curated example spec."""
    spec = ScenarioSpec.from_json(SPEC_DIR / f"{name}.json")
    defaults = {"n_sensors": 320, "n_slots": 3}
    return dataclasses.replace(spec, **{**defaults, **overrides})


def slot_signatures(spec: ScenarioSpec, n_slots: int | None = None):
    """Per-slot exact allocation signatures (selected/assignments/values/
    payments) from a fresh engine build of ``spec``."""
    engine = spec.build()
    summary = SimulationSummary()
    sigs = []
    for _ in range(n_slots if n_slots is not None else spec.n_slots):
        engine.step(summary)
        sigs.append(allocation_signature(engine.last_result))
    return sigs


# ----------------------------------------------------------------------
# the hard contract: workspace on/off is bit-identical
# ----------------------------------------------------------------------
@pytest.mark.parametrize("spec_name", ["region_storm", "stationary_churn"])
@pytest.mark.parametrize("sharding,fused,incremental", KNOB_CORNERS)
def test_workspace_on_off_bit_identical(spec_name, sharding, fused, incremental):
    # the per-row batch path (fused=False) is the slow fallback; keep its
    # corners small so the matrix stays CI-friendly
    spec = scaled_spec(
        spec_name,
        sharding=sharding,
        fused=fused,
        incremental=incremental,
        n_sensors=160 if fused is False else 320,
    )
    on = slot_signatures(dataclasses.replace(spec, workspace="auto"))
    off = slot_signatures(dataclasses.replace(spec, workspace=False))
    assert all(sig is not None for sig in on)
    assert on == off  # exact: selected, assignments, values, payments


def test_backend_knob_default_is_bit_identical():
    """``backend="numpy"`` (and the instrumented backend) must not perturb
    allocations relative to the implicit default."""
    spec = scaled_spec("region_storm")
    default = slot_signatures(spec)
    named = slot_signatures(dataclasses.replace(spec, backend="numpy"))
    metered = slot_signatures(dataclasses.replace(spec, backend="instrumented"))
    assert default == named == metered


# ----------------------------------------------------------------------
# workspace mechanics: growth, reuse, pass-through, tags
# ----------------------------------------------------------------------
def test_workspace_growth_is_geometric_and_reuses():
    ws = SlotWorkspace()
    a = ws.empty("x", 10, dtype=np.float64)
    assert a.shape == (10,) and ws.grown == 1 and ws.n_arenas == 1
    b = ws.empty("x", 8, dtype=np.float64)
    assert ws.grown == 1  # shrink within the arena: no allocation
    assert b.base is a.base or b.base is a  # same arena memory
    c = ws.empty("x", 12, dtype=np.float64)
    assert ws.grown == 2  # growth at least doubles capacity
    assert ws._arenas[("x", np.dtype(np.float64))].size >= 20
    d = ws.empty("x", 20, dtype=np.float64)
    assert ws.grown == 2 and d.shape == (20,)
    # distinct dtype = distinct arena, no aliasing
    e = ws.empty("x", 10, dtype=np.int64)
    assert ws.n_arenas == 2 and e.dtype == np.int64


def test_workspace_fill_values_match_numpy_constructors():
    ws = SlotWorkspace()
    ws.empty("z", 6, dtype=np.float64).fill(np.nan)  # poison the arena
    np.testing.assert_array_equal(ws.zeros("z", 6), np.zeros(6))
    np.testing.assert_array_equal(ws.ones("z", 6), np.ones(6))
    np.testing.assert_array_equal(
        ws.full("z", 6, -np.inf), np.full(6, -np.inf)
    )
    assert ws.zeros("m", (2, 3), dtype=bool).shape == (2, 3)


def test_workspace_pass_through_mode_allocates_fresh():
    ws = SlotWorkspace(reuse=False)
    a = ws.empty("x", 10)
    b = ws.empty("x", 10)
    assert a is not b and a.base is None and b.base is None
    assert ws.grown == 0 and ws.n_arenas == 0


def test_workspace_tags_reset_per_call():
    ws = SlotWorkspace()
    first = [ws.tag("covblock"), ws.tag("covblock")]
    assert first == ["covblock#0", "covblock#1"]
    ws.begin_call()
    assert ws.tag("covblock") == "covblock#0"  # same arenas re-hit


def test_warm_slots_keep_arena_growth_flat():
    """The PR-7 incremental path's warm slots must re-hit the same arenas:
    once every arena has seen its high-water shape (geometric growth gets
    there in a handful of slots), further slots add zero growth."""
    spec = scaled_spec(
        "stationary_churn", n_slots=10, workspace="auto", incremental="auto"
    )
    engine = spec.build()
    summary = SimulationSummary()
    for _ in range(6):
        engine.step(summary)
    allocator = engine.allocation.allocator
    ws = allocator._ws
    assert ws is not None and ws.grown > 0 and ws.n_arenas > 0
    # growth events stay amortized: a handful over the whole warm-up, not
    # per-round (a pass-through run re-allocates every acquire)
    assert ws.grown <= 2 * ws.n_arenas
    grown_after_warmup = ws.grown
    for _ in range(4):
        engine.step(summary)
    assert allocator._ws is ws  # same workspace survives across slots
    assert ws.grown == grown_after_warmup


# ----------------------------------------------------------------------
# instrumented backend: deterministic, phase-attributed counters
# ----------------------------------------------------------------------
def test_instrumented_counters_are_deterministic():
    spec = scaled_spec(
        "stationary_churn", backend="instrumented", incremental="auto"
    )

    def alloc_history(s):
        engine = s.build()
        summary = SimulationSummary()
        history = []
        for _ in range(s.n_slots):
            engine.step(summary)
            history.append(dict(engine.last_allocs))
        return history

    first, second = alloc_history(spec), alloc_history(spec)
    assert first == second
    assert any(counts[0] > 0 for allocs in first for counts in allocs.values())


def test_instrumented_backend_counts_and_phases():
    bk = InstrumentedNumpyBackend()
    bk.set_phase("kernel")
    bk.zeros(10, dtype=np.float64)
    bk.empty((2, 5), dtype=np.float64)
    bk.set_phase("allocate")
    a = bk.empty(8, dtype=np.float64)
    bk.cumsum(np.ones(8), out=a)  # out= routed: not an allocation
    bk.cumsum(np.ones(8))  # fresh result: counted
    snap = bk.snapshot()
    assert snap["kernel"] == (2, 160)
    assert snap["allocate"][0] == 2  # the empty + the out-less cumsum
    bk.reset()
    assert bk.snapshot() == {}


def test_workspace_off_allocates_more_than_workspace_on():
    """The knob the CI floor gates: pass-through mode pays per-round
    allocations that arena reuse amortizes away."""
    spec = scaled_spec("region_storm", backend="instrumented")

    def total_allocs(s):
        engine = s.build()
        summary = SimulationSummary()
        total = 0
        for _ in range(s.n_slots):
            engine.step(summary)
            total += sum(c for c, _ in engine.last_allocs.values())
        return total

    on = total_allocs(dataclasses.replace(spec, workspace="auto"))
    off = total_allocs(dataclasses.replace(spec, workspace=False))
    assert on < off


# ----------------------------------------------------------------------
# the seam itself: normalization, resolution, the xp proxy
# ----------------------------------------------------------------------
def test_normalize_backend_and_workspace_knobs():
    assert normalize_backend(None) is None
    assert normalize_backend("NumPy") == "numpy"
    assert normalize_backend("instrumented") == "instrumented"
    with pytest.raises(ValueError):
        normalize_backend("tpu")
    assert normalize_workspace(None) == "auto"
    assert normalize_workspace(True) == "auto"
    assert normalize_workspace(False) is False
    with pytest.raises(ValueError):
        normalize_workspace("sometimes")


def test_resolve_backend_sharing_and_freshness():
    assert resolve_backend(None) is resolve_backend("numpy")
    a, b = resolve_backend("instrumented"), resolve_backend("instrumented")
    assert a is not b  # metered backends get private counters


def test_xp_proxy_follows_use_backend_scope():
    assert xp.float_dtype == np.float64
    bk = InstrumentedNumpyBackend()
    with use_backend(bk):
        xp.zeros(4)
        assert xp.asarray([1.0, 2.0]).dtype == np.float64
    assert bk.snapshot() != {}
    # back outside the scope: the default numpy backend, unmetered
    before = bk.snapshot()
    xp.zeros(4)
    assert bk.snapshot() == before


def test_available_backends_shape():
    avail = available_backends()
    assert avail["numpy"] is True and avail["instrumented"] is True
    assert set(avail) == {"numpy", "instrumented", "cupy", "jax"}


def test_scenario_spec_round_trips_backend_and_workspace():
    spec = scaled_spec("region_storm", backend="instrumented", workspace=False)
    payload = spec.to_dict()
    assert payload["backend"] == "instrumented"
    assert payload["workspace"] is False
    assert ScenarioSpec.from_dict(payload) == spec
    with pytest.raises(ValueError):
        dataclasses.replace(spec, backend="tpu")


# ----------------------------------------------------------------------
# optional GPU backends: parity at tolerance, skipped when not installed
# (CI's junit skip-gate runs this file with ``-k "not gpu"``)
# ----------------------------------------------------------------------
def _op_parity(backend, rtol):
    """Elementwise-op parity between a backend and default numpy."""
    ref = NumpyBackend()
    data = np.linspace(-3.0, 5.0, 64)
    got = backend.asarray(np.cumsum(data))
    want = ref.cumsum(ref.asarray(data))
    np.testing.assert_allclose(np.asarray(got), np.asarray(want), rtol=rtol)
    z = backend.zeros((4, 4), dtype=backend.float_dtype)
    np.testing.assert_array_equal(np.asarray(z), np.zeros((4, 4)))


@pytest.mark.skipif(not available_backends()["cupy"], reason="cupy not installed")
def test_gpu_cupy_backend_parity_at_tolerance():
    from repro.backend import CupyBackend

    _op_parity(CupyBackend(), rtol=1e-12)


@pytest.mark.skipif(not available_backends()["jax"], reason="jax not installed")
def test_gpu_jax_backend_parity_at_tolerance():
    from repro.backend import JaxBackend

    backend = JaxBackend()
    assert backend.float_dtype == np.float32  # accelerator-native width
    _op_parity(backend, rtol=1e-6)


def test_gpu_backends_unavailable_raise_clear_import_error():
    """Without the package, constructing the guard raises ImportError with
    an install hint — not an AttributeError from deep inside."""
    for name in ("cupy", "jax"):
        if available_backends()[name]:
            continue
        from repro.backend import CupyBackend, JaxBackend

        cls = {"cupy": CupyBackend, "jax": JaxBackend}[name]
        with pytest.raises(ImportError, match=name):
            cls()
