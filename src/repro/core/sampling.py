"""Sampling-point selection for region monitoring — Algorithm 4 (Section 3.3).

Given the sensors currently inside a region-monitoring query's region, the
remaining budget and the GP value function ``F``, the algorithm greedily
fills per-time-slot sampling sets ``S_t`` for ``t = t_now .. q.t2``,
maximizing at each step::

    delta_{s,t} = (F(S_t + s) - F(S_t)) * theta_s * time_factor(t)

under the assumption that "the current location of sensors will not change
in the future".  Only ``S_{t_now}`` is executed; the future sets exist to
spread the budget over the query's lifetime.  The time factor down-weights
future slots so the current slot wins ties — the paper uses
``(t2 - t) / (t2 - t1)``, which zeroes the final slot and would starve a
query on its last day; we use the strictly positive
``(t2 - t + 1) / (t2 - t1 + 1)`` (documented deviation, same intent).

Cost weighting: the greedy accumulates *weighted* costs (eq. 18's ``w(k)``
sharing discount applied by the caller), so a sensor inside many monitored
regions looks cheaper and gets planned more aggressively — the actual
payment happens later in the joint allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..phenomena import VarianceReductionState
from ..queries import RegionMonitoringQuery, sensor_quality
from ..sensors import SensorSnapshot

__all__ = ["SamplingPlan", "plan_sampling", "paper_weight_function"]


def paper_weight_function(k: int) -> float:
    """Eq. (18) cost-sharing weight, normalized into (0, 1].

    The printed formula (``11 - k`` for ``k < 10``, else 0.1) contradicts
    the surrounding text ("w ... returns a real value between 0 and 1");
    dividing by 10 reconciles them exactly: 1.0 at k = 1 down to 0.2 at
    k = 9, and the printed 0.1 floor for k >= 10.  ``k = 0`` (sensor in no
    monitored region) keeps its full cost.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k == 0:
        return 1.0
    if k < 10:
        return (11 - k) / 10.0
    return 0.1


@dataclass
class SamplingPlan:
    """Output of Algorithm 4 for one query at one slot."""

    query_id: str
    current: list[SensorSnapshot] = field(default_factory=list)  # S_{t_now}
    future: dict[int, list[int]] = field(default_factory=dict)  # t -> sensor ids
    expected_cost: float = 0.0  # C_t: actual (unweighted) cost of `current`
    planned_value: float = 0.0  # eq. 7 slot value of `current`
    marginal_values: dict[int, float] = field(default_factory=dict)  # sensor -> delta v

    @property
    def is_empty(self) -> bool:
        return not self.current


def plan_sampling(
    query: RegionMonitoringQuery,
    snapshots: list[SensorSnapshot],
    t_now: int,
    weighted_costs: dict[int, float] | None = None,
    budget: float | None = None,
    max_additions: int = 256,
) -> SamplingPlan:
    """Run Algorithm 4; returns the plan whose ``current`` set is executed.

    Args:
        query: the region-monitoring query.
        snapshots: sensors currently inside ``query.region``.
        t_now: the current slot (must satisfy ``query.active(t_now)``).
        weighted_costs: optional eq.-18-discounted cost per sensor id;
            defaults to announced costs.
        budget: spending cap ``B``; defaults to the query's remaining budget.
        max_additions: safety valve on greedy iterations.
    """
    if not query.active(t_now):
        raise ValueError(f"query {query.query_id} is not active at slot {t_now}")
    plan = SamplingPlan(query_id=query.query_id)
    if not snapshots:
        return plan
    budget = query.remaining_budget if budget is None else budget
    if budget <= 0:
        return plan
    costs = (
        {s.sensor_id: s.cost for s in snapshots}
        if weighted_costs is None
        else weighted_costs
    )

    horizon = range(t_now, query.t2 + 1)
    states: dict[int, VarianceReductionState] = {
        t: query.reduction_state() for t in horizon
    }
    chosen: dict[int, list[SensorSnapshot]] = {t: [] for t in horizon}
    chosen_ids: dict[int, set[int]] = {t: set() for t in horizon}
    span = query.t2 - query.t1 + 1

    # Cache delta_{s,t}; only the slot whose state grew goes stale.
    gains: dict[int, dict[int, float]] = {}

    def refresh(t: int) -> None:
        time_factor = (query.t2 - t + 1) / span
        slot_gains: dict[int, float] = {}
        # reprolint: disable=hot-loop(CDQS planner over one location's in-region candidates, not the announcement axis)
        for snapshot in snapshots:
            if snapshot.sensor_id in chosen_ids[t]:
                continue
            raw = states[t].gain(snapshot.location)
            slot_gains[snapshot.sensor_id] = (
                raw * sensor_quality(snapshot) * time_factor
            )
        gains[t] = slot_gains

    for t in horizon:
        refresh(t)
    by_id = {s.sensor_id: s for s in snapshots}

    spent = 0.0
    for _ in range(max_additions):
        if spent >= budget:
            break
        best_delta, best_sid, best_t = 0.0, None, None
        for t in horizon:
            for sid, delta in gains[t].items():
                if delta > best_delta:
                    best_delta, best_sid, best_t = delta, sid, t
        if best_sid is None:
            break
        snapshot = by_id[best_sid]
        states[best_t].add(snapshot.location)
        chosen[best_t].append(snapshot)
        chosen_ids[best_t].add(best_sid)
        spent += costs.get(best_sid, snapshot.cost)
        refresh(best_t)

    plan.current = chosen[t_now]
    plan.future = {
        t: [s.sensor_id for s in members]
        for t, members in chosen.items()
        if t != t_now and members
    }
    plan.expected_cost = float(sum(s.cost for s in plan.current))
    plan.planned_value = query.slot_value(plan.current)
    for i, snapshot in enumerate(plan.current):
        without = plan.current[:i] + plan.current[i + 1 :]
        marginal = plan.planned_value - query.slot_value(without)
        plan.marginal_values[snapshot.sensor_id] = max(0.0, marginal)
    return plan
