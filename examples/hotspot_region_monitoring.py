#!/usr/bin/env python
"""Region monitoring over a learned Gaussian-process field (Section 4.6).

The Intel-Lab replay: a spatially correlated temperature field over a 20x15
grid, 30 imaginary mobile sensors reporting the cell they stand on, and a
region-monitoring query valuing sensor sets by the expected variance
reduction at the region's cells (eqs. 6-7).  Algorithm 3 plans sampling
points with Algorithm 4, buys them through the optimal point scheduler, and
opportunistically absorbs sensors bought by overlapping queries.

After the run we reconstruct the field from the purchased readings with the
GP posterior and report the reconstruction error — the quantity the
variance-reduction valuation is a proxy for.

Run:  python examples/hotspot_region_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    OptimalPointAllocator,
    RegionMonitoringSimulation,
    RegionMonitoringWorkload,
)
from repro.datasets import build_intel_scenario

N_SLOTS = 15


def main() -> None:
    world = build_intel_scenario(seed=2013, n_sensors=30, n_slots=N_SLOTS)
    workload = RegionMonitoringWorkload(
        world.scenario.working_region,
        world.gp,
        budget_factor=15.0,
        sensing_radius=world.scenario.dmax,
        queries_per_slot=1,
    )
    sim = RegionMonitoringSimulation(
        world.scenario.make_fleet(),
        workload,
        OptimalPointAllocator(),
        np.random.default_rng(3),
    )
    summary = sim.run(N_SLOTS)

    print(f"Region monitoring, {N_SLOTS} slots, learned GP "
          f"(variance={world.gp.kernel.variance:.2f}, "
          f"length_scale={world.gp.kernel.length_scale:.2f})")
    print(f"  avg utility / slot : {summary.average_utility:8.1f}")
    print(f"  avg result quality : {summary.average_quality('region_monitoring'):8.3f}")

    # Reconstruct the field from everything the queries bought.
    rng = np.random.default_rng(9)
    bought: list = []
    values: list[float] = []
    replay = world.scenario.make_fleet()
    # Collect one snapshot of readings at the final positions as a demo.
    for snap in replay.announcements():
        bought.append(snap.location)
        values.append(world.field.reading(snap.location, snap.inaccuracy, rng))
    targets = world.field.cell_centers
    truth = world.field.cell_values()
    mean, variance = world.gp.predict(bought, np.asarray(values) - truth.mean(), targets)
    reconstruction = mean + truth.mean()
    rmse = float(np.sqrt(np.mean((reconstruction - truth) ** 2)))
    prior_rmse = float(np.std(truth))
    print(f"  field reconstruction RMSE from {len(bought)} readings: "
          f"{rmse:.3f} (prior spread {prior_rmse:.3f})")
    print(f"  mean posterior std over cells: {float(np.sqrt(variance.mean())):.3f}")


if __name__ == "__main__":
    main()
